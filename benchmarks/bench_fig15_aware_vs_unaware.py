"""Figure 15: power savings of network-aware vs. unaware management.

Paper shape: network-aware management reduces network-wide power by a
further 11 % (small) / 19 % (big) on average over network-unaware
management, positive across topologies and mechanisms.
"""

from repro.harness.figures import fig15_aware_vs_unaware
from repro.harness.report import format_table


def test_fig15_aware_vs_unaware(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig15_aware_vs_unaware, args=(runner, settings), rounds=1, iterations=1
    )
    table = [
        [scale, topology, mech, f"{alpha * 100:.1f}%", f"{red * 100:.1f}%"]
        for scale, topology, mech, alpha, red in rows
    ]
    emit_result(
        "fig15_aware_vs_unaware",
        format_table(
            ["scale", "topology", "mechanism", "alpha", "power reduction"],
            table,
            title="Figure 15 -- network-aware vs. network-unaware power savings",
        ),
    )

    small = [r for s, _t, _m, _a, r in rows if s == "small"]
    big = [r for s, _t, _m, _a, r in rows if s == "big"]
    small_avg = sum(small) / len(small)
    big_avg = sum(big) / len(big)
    # Aware management wins on average at both scales.
    assert small_avg > 0.02, f"small average {small_avg:.1%}"
    assert big_avg > 0.02, f"big average {big_avg:.1%}"
    # The overwhelming majority of cells favour aware management.
    positive = sum(1 for *_x, r in rows if r > -0.02)
    assert positive >= 0.8 * len(rows)
