"""Figure 12: performance overhead of network-unaware management.

Paper shape: throughput degradation closely follows alpha -- maximum
3.2 % at alpha = 2.5 % and 5.1 % at alpha = 5 %; averages are well
below the maxima (0.9 % / 1.7 %).
"""

from repro.harness.figures import fig12_unaware_performance
from repro.harness.report import format_table

#: Feedback control is approximate (counter-based estimates, epoch
#: granularity); the paper itself reports occasional overshoot of alpha.
_SLACK = 2.5


def test_fig12_unaware_performance(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig12_unaware_performance, args=(runner, settings), rounds=1, iterations=1
    )
    table = [
        [scale, topology, mech, f"{alpha * 100:.1f}%",
         f"{avg * 100:.2f}%", f"{worst * 100:.2f}%"]
        for scale, topology, mech, alpha, avg, worst in rows
    ]
    emit_result(
        "fig12_unaware_perf",
        format_table(
            ["scale", "topology", "mechanism", "alpha", "avg deg", "max deg"],
            table,
            title="Figure 12 -- performance overhead of network-unaware management",
        ),
    )

    for scale, topology, mech, alpha, avg, worst in rows:
        # Degradation stays in the neighbourhood of alpha.
        assert worst <= alpha * _SLACK + 0.01, (
            f"{scale}/{topology}/{mech}@{alpha}: max degradation {worst:.1%}"
        )
        assert avg <= worst + 1e-9

    # Larger alpha does not reduce the average overhead.
    by_alpha = {0.025: [], 0.05: []}
    for _s, _t, _m, alpha, avg, _w in rows:
        by_alpha[alpha].append(avg)
    assert sum(by_alpha[0.05]) >= sum(by_alpha[0.025]) - 0.02
