"""Figure 9: average channel and link bandwidth utilization.

Paper shape: channel utilization spans ~8 % (sp.D) to ~75 % (mixB) and
averages ~43 %; average *link* utilization sits well below channel
utilization because traffic attenuates across the network.
"""

from collections import defaultdict

from repro.harness.figures import fig9_utilization
from repro.harness.report import format_table
from repro.workloads import get_profile


def test_fig9_utilization(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig9_utilization, args=(runner, settings), rounds=1, iterations=1
    )
    table = [
        [scale, topology, workload, f"{chan * 100:.0f}%", f"{link * 100:.0f}%"]
        for scale, topology, workload, chan, link in rows
    ]
    emit_result(
        "fig9_utilization",
        format_table(
            ["scale", "topology", "workload", "channel util", "link util"],
            table,
            title="Figure 9 -- channel and average link utilization",
        ),
    )

    # Traffic attenuation: link utilization below channel utilization.
    for _s, _t, _w, chan, link in rows:
        if chan > 0.05:
            assert link < chan

    # Channel utilization roughly tracks each profile's target.
    per_workload = defaultdict(list)
    for _s, _t, w, chan, _l in rows:
        per_workload[w].append(chan)
    for workload, values in per_workload.items():
        target = get_profile(workload).channel_util
        measured = sum(values) / len(values)
        assert abs(measured - target) < max(0.20, 0.5 * target), (
            f"{workload}: measured {measured:.2f}, target {target:.2f}"
        )
