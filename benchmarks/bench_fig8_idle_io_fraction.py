"""Figure 8: idle I/O power as a fraction of total network power.

Paper shape: idle I/O accounts for 53 % (small) / 67 % (big) of total
network power on average, stays near or above 50 % even for the busiest
workload (mixB), and peaks for the least utilized one (sp.D).
"""

from collections import defaultdict

from repro.harness.figures import fig8_idle_io_fraction
from repro.harness.report import format_table


def test_fig8_idle_io_fraction(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig8_idle_io_fraction, args=(runner, settings), rounds=1, iterations=1
    )
    headers = ["scale", "topology"] + list(settings.workloads) + ["avg"]
    by_cell = defaultdict(dict)
    for scale, topology, workload, frac in rows:
        by_cell[(scale, topology)][workload] = frac
    table = []
    for (scale, topology), per_wl in by_cell.items():
        avg = sum(per_wl.values()) / len(per_wl)
        table.append(
            [scale, topology]
            + [f"{per_wl[w] * 100:.0f}%" for w in settings.workloads]
            + [f"{avg * 100:.0f}%"]
        )
    emit_result(
        "fig8_idle_io_fraction",
        format_table(headers, table, title="Figure 8 -- idle I/O power / total network power"),
    )

    small = [f for s, _t, _w, f in rows if s == "small"]
    big = [f for s, _t, _w, f in rows if s == "big"]
    small_avg = sum(small) / len(small)
    big_avg = sum(big) / len(big)
    # Idle I/O is the top power contributor in both studies and grows
    # with network size (53 % -> 67 % in the paper).
    assert small_avg > 0.40
    assert big_avg > small_avg

    if "sp.D" in settings.workloads and "mixB" in settings.workloads:
        sp = [f for _s, _t, w, f in rows if w == "sp.D"]
        mixb = [f for _s, _t, w, f in rows if w == "mixB"]
        # The least-utilized workload shows the highest idle fraction.
        assert sum(sp) / len(sp) > sum(mixb) / len(mixb)
        # Even the busiest workload stays near 50 %.
        assert sum(mixb) / len(mixb) > 0.35
