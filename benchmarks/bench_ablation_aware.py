"""Ablation: which network-aware ingredient buys what?

DESIGN.md calls out the three Section VI ideas; this benchmark removes
them one at a time from the full network-aware scheme on a big-network
VWL+ROO configuration:

* ``no-wakeup-hiding``  -- response-path wakeup chaining off (Section VI-B);
* ``no-discount``       -- QD/QF congestion discount off (Section VI-C);
* ``no-grant-pool``     -- leftover-AMS violation grants off (Section VI-A3);
* ``isp-1-iter``        -- a single scatter/gather round instead of three.

Expected shape: the full scheme saves the most power; each ablation
costs savings (or performance); one ISP iteration already captures much
of the benefit, consistent with the paper capping iterations at three.
"""

from repro.core.aware import NetworkAwarePolicy
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.report import format_table

_VARIANTS = {
    "full-aware": {},
    "no-wakeup-hiding": {"enable_wakeup_hiding": False},
    "no-discount": {"enable_congestion_discount": False},
    "no-grant-pool": {"enable_grant_pool": False},
    "isp-1-iter": {"isp_iterations": 1},
}


def _run_ablation(settings):
    base = settings.base_config(
        workload="is.D",
        topology="ddrx_like",
        scale="big",
        mechanism="VWL+ROO",
        alpha=0.05,
    )
    fp = run_experiment(base)
    unaware = run_experiment(base.replace(policy="unaware"))
    out = {
        "FP": (fp.network_power_w, fp.throughput_per_s),
        "unaware": (unaware.network_power_w, unaware.throughput_per_s),
    }
    for name, kwargs in _VARIANTS.items():
        factory = lambda net, alpha, epoch, kw=kwargs: NetworkAwarePolicy(
            net, alpha, epoch, **kw
        )
        res = run_experiment(base.replace(policy="aware"), policy_factory=factory)
        out[name] = (res.network_power_w, res.throughput_per_s)
    return out


def test_ablation_aware(benchmark, settings, emit_result):
    results = benchmark.pedantic(_run_ablation, args=(settings,), rounds=1, iterations=1)
    fp_power, fp_thr = results["FP"]
    rows = []
    for name, (power, thr) in results.items():
        rows.append([
            name,
            f"{power:.2f}",
            f"{1 - power / fp_power:.1%}",
            f"{1 - thr / fp_thr:.2%}",
        ])
    emit_result(
        "ablation_aware",
        format_table(
            ["variant", "network W", "power saved vs FP", "throughput cost"],
            rows,
            title="Ablation -- network-aware ingredients (is.D, big ddrx_like, VWL+ROO, alpha=5%)",
        ),
    )

    full_power = results["full-aware"][0]
    # The full scheme beats network-unaware management.
    assert full_power < results["unaware"][0]
    # Every ablated variant still beats full power...
    for name in _VARIANTS:
        assert results[name][0] < fp_power
    # ...and removing wakeup hiding costs savings on a ROO-bearing
    # mechanism (response links must then burn full idle power longer).
    assert results["no-wakeup-hiding"][0] >= full_power - 0.05 * fp_power
