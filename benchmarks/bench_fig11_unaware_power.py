"""Figure 11: per-HMC power under network-unaware management.

Paper shape: all managed variants sit below the full-power bar; the
combined VWL+ROO saves the most; increasing alpha from 2.5 % to 5 %
buys only a modest extra reduction (~3 % in the paper); savings are
larger for big networks than small ones.
"""

from repro.harness.figures import fig11_unaware_power
from repro.harness.report import format_table


def test_fig11_unaware_power(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig11_unaware_power, args=(runner, settings), rounds=1, iterations=1
    )
    table = [
        [scale, topology, label, f"{alpha * 100:.1f}%" if alpha else "-", f"{watts:.2f}"]
        for scale, topology, label, alpha, watts in rows
    ]
    emit_result(
        "fig11_unaware_power",
        format_table(
            ["scale", "topology", "mechanism", "alpha", "W/HMC"],
            table,
            title="Figure 11 -- per-HMC power under network-unaware management",
        ),
    )

    cells = {(s, t, l, a): w for s, t, l, a, w in rows}
    savings = {"small": [], "big": []}
    for scale in ("small", "big"):
        for topology in settings.topologies:
            fp = cells[(scale, topology, "FP", 0.0)]
            for mech in ("VWL", "ROO", "VWL+ROO"):
                for alpha in (0.025, 0.05):
                    managed = cells[(scale, topology, mech, alpha)]
                    assert managed <= fp * 1.02, (
                        f"{scale}/{topology}/{mech}@{alpha}: {managed:.2f} > FP {fp:.2f}"
                    )
                    savings[scale].append(1 - managed / fp)
            # The combined mechanism beats either alone on average.
            combo = cells[(scale, topology, "VWL+ROO", 0.05)]
            assert combo <= cells[(scale, topology, "VWL", 0.05)] + 0.05
            assert combo <= cells[(scale, topology, "ROO", 0.05)] + 0.05

    small_avg = sum(savings["small"]) / len(savings["small"])
    big_avg = sum(savings["big"]) / len(savings["big"])
    # Paper: 14 % (small) and 24 % (big) average overall power reduction.
    assert big_avg > small_avg
    assert big_avg > 0.05
