"""Figure 13: distribution of link hours over utilization and VWL mode.

Paper shape: under network-unaware management a noticeable share of
0-1 % utilization link hours is spent at full width (the counter-
intuitive behaviour), while network-aware management pushes
low-utilization links into narrow modes and keeps high-utilization
links wide.
"""

from repro.harness.figures import fig13_link_hours
from repro.harness.metrics import UTILIZATION_BUCKETS
from repro.harness.report import format_table

_LANES = {0: "16-lane", 1: "8-lane", 2: "4-lane", 3: "1-lane"}


def _table(dist):
    headers = ["utilization"] + list(_LANES.values()) + ["total"]
    rows = []
    for label, _lo, _hi in UTILIZATION_BUCKETS:
        per_mode = dist.get(label, {})
        total = sum(per_mode.values())
        rows.append(
            [label]
            + [f"{per_mode.get(i, 0.0) * 100:.1f}%" for i in _LANES]
            + [f"{total * 100:.1f}%"]
        )
    return headers, rows


def test_fig13_link_hours(benchmark, runner, settings, emit_result):
    def both():
        return (
            fig13_link_hours(runner, settings, policy="unaware"),
            fig13_link_hours(runner, settings, policy="aware"),
        )

    unaware, aware = benchmark.pedantic(both, rounds=1, iterations=1)
    parts = []
    for name, dist in (("network-unaware", unaware), ("network-aware", aware)):
        headers, rows = _table(dist)
        from repro.harness.report import format_table as ft

        parts.append(ft(headers, rows, title=f"Figure 13 -- link hours, {name} (big, VWL)"))
    emit_result("fig13_link_hours", "\n\n".join(parts))

    def frac(dist, bucket, mode):
        return dist.get(bucket, {}).get(mode, 0.0)

    def narrow_share(dist, bucket):
        per_mode = dist.get(bucket, {})
        total = sum(per_mode.values())
        if total == 0:
            return 0.0
        return sum(v for m, v in per_mode.items() if m >= 2) / total

    # Aware management moves more 0-1% utilization hours into narrow
    # modes than unaware management does.
    assert narrow_share(aware, "0-1%") >= narrow_share(unaware, "0-1%") - 0.05
    # High-utilization links stay at full/8-lane width under aware mgmt.
    high = aware.get("20-100%", {})
    if high:
        wide = high.get(0, 0.0) + high.get(1, 0.0)
        assert wide / sum(high.values()) > 0.6
