"""Figure 17: performance overheads of network-aware management.

Paper shape: vs. network-unaware management, aware management costs
only ~0.2-0.3 % average throughput (it spends AMS that unaware left
unused); vs. full power the maximum overhead over all comparisons is
5.9 %.
"""

from repro.harness.figures import fig17_aware_performance
from repro.harness.report import format_table


def test_fig17_aware_performance(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig17_aware_performance, args=(runner, settings), rounds=1, iterations=1
    )
    table = [
        [scale, topology, mech, f"{alpha * 100:.1f}%",
         f"{avg_rel * 100:.2f}%", f"{max_fp * 100:.2f}%"]
        for scale, topology, mech, alpha, avg_rel, max_fp in rows
    ]
    emit_result(
        "fig17_aware_perf",
        format_table(
            ["scale", "topology", "mechanism", "alpha",
             "avg deg vs unaware", "max deg vs FP"],
            table,
            title="Figure 17 -- performance overhead of network-aware management",
        ),
    )

    rel = [avg_rel for *_x, avg_rel, _m in rows]
    avg_rel_overall = sum(rel) / len(rel)
    # Small average cost vs. unaware (paper: 0.2-0.3 %).
    assert avg_rel_overall < 0.04, f"avg degradation vs unaware {avg_rel_overall:.1%}"
    # Bounded worst case vs. full power (paper max: 5.9 %).
    worst = max(max_fp for *_x, max_fp in rows)
    assert worst < 0.15, f"worst-case degradation vs FP {worst:.1%}"
