"""Figure 5: average power breakdown of an HMC in a full-power network.

Paper shape: ~1.9 W/HMC (small) and ~2.5 W/HMC (big) totals with I/O
(idle + active) consuming ~73 % of memory network power, idle I/O being
the single largest contributor.
"""

from repro.harness.figures import fig5_power_breakdown
from repro.harness.report import format_table
from repro.power.accounting import PowerBreakdown


def test_fig5_power_breakdown(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig5_power_breakdown, args=(runner, settings), rounds=1, iterations=1
    )
    headers = ["scale", "topology"] + PowerBreakdown.categories() + ["total", "io%"]
    table = []
    for scale, topology, watts in rows:
        total = sum(watts.values())
        io = watts["idle_io"] + watts["active_io"]
        table.append(
            [scale, topology]
            + [f"{watts[c]:.3f}" for c in PowerBreakdown.categories()]
            + [f"{total:.2f}", f"{io / total * 100:.0f}%"]
        )
    emit_result(
        "fig5_power_breakdown",
        format_table(headers, table, title="Figure 5 -- average power (W) per HMC, full-power networks"),
    )

    avg_rows = {scale: watts for scale, topo, watts in rows if topo == "avg"}
    for scale, watts in avg_rows.items():
        total = sum(watts.values())
        io = watts["idle_io"] + watts["active_io"]
        # I/O dominates: the paper reports 73 % on average.
        assert io / total > 0.55, f"{scale}: I/O fraction {io / total:.2f}"
        # Idle I/O is the single biggest bucket.
        assert watts["idle_io"] == max(watts.values())
        # Sane absolute scale (paper: ~1.9-2.5 W per HMC).
        assert 1.0 < total < 4.5
