"""Table I: HMC DRAM array parameters and derived timing.

Validates that the vault model reproduces the latencies the paper's
slowdown accounting relies on (30 ns close-page reads) and prints the
configured Table I row.
"""

import pytest

from repro.dram import DEFAULT_TIMING, VaultSet
from repro.harness.report import format_table


def _measure_unloaded_read_latency() -> float:
    vaults = VaultSet(DEFAULT_TIMING)
    access = vaults.access(1000.0, address=0, is_read=True)
    return access.data_ready - access.start


def test_table1_dram_timing(benchmark, emit_result):
    latency = benchmark(_measure_unloaded_read_latency)
    t = DEFAULT_TIMING
    rows = [
        ["Capacity per HMC / vaults", f"{t.capacity_bytes // 1024**3} GB / {t.vaults}"],
        ["Vault data rate / IO width / buffers",
         f"{t.vault_data_rate_gbps} Gbps / x{t.vault_io_width} / {t.vault_buffer_entries}"],
        ["Page policy / mapping", f"{t.page_policy} / line-interleaved"],
        ["tCL/tRCD/tRAS/tRP/tRRD/tWR (ns)",
         f"{t.tCL:.0f}/{t.tRCD:.0f}/{t.tRAS:.0f}/{t.tRP:.0f}/{t.tRRD:.0f}/{t.tWR:.0f}"],
        ["Derived burst time", f"{t.burst_ns:.1f} ns"],
        ["Derived close-page read latency", f"{t.read_latency_ns:.1f} ns (paper: ~30 ns)"],
        ["Measured unloaded read latency", f"{latency:.1f} ns"],
    ]
    emit_result(
        "table1_dram_timing",
        format_table(["parameter", "value"], rows, title="Table I -- HMC DRAM array parameters"),
    )
    assert latency == pytest.approx(30.0)
