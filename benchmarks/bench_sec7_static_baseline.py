"""Section VII-A: static fat/tapered-tree selection vs. network-aware.

Paper shape: static selection with page interleaving is a single,
untunable design point with large unpredictable overheads (13 % average
and 43 % worst case in the paper); network-aware management at a
matching alpha offers lower worst-case overhead while reducing power
(15 % less than static in the paper) by consolidating accesses onto few
active HMCs.
"""

from repro.harness.figures import sec7_static_comparison
from repro.harness.report import format_table


def test_sec7_static_comparison(benchmark, runner, settings, emit_result):
    stats = benchmark.pedantic(
        sec7_static_comparison, args=(runner, settings), rounds=1, iterations=1
    )
    rows = [[k, f"{v * 100:.1f}%"] for k, v in stats.items()]
    emit_result(
        "sec7_static_baseline",
        format_table(
            ["metric", "value"], rows,
            title="Section VII-A -- static fat/tapered selection vs. network-aware (alpha=30%)",
        ),
    )

    # Static selection's worst case far exceeds its average: the
    # unpredictability the paper criticizes.
    assert stats["static_max_degradation"] > stats["static_avg_degradation"]
    # Alpha-controlled management is the better-behaved point: lower
    # average and lower worst-case overhead than the static scheme.
    assert stats["aware_avg_degradation"] < stats["static_avg_degradation"]
    assert (
        stats["aware_max_degradation"]
        <= stats["static_max_degradation"] + 0.05
    )
    # Power: the paper reports aware@30% beating static by 15 %; our
    # model has no module-level power-down, which flatters static's
    # fully tapered widths, so we only require aware to land within
    # reach of static's savings (EXPERIMENTS.md discusses the gap).
    assert stats["aware_power_reduction_vs_static"] > -0.35
