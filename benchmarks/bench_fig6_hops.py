"""Figure 6: average number of modules traversed per memory access.

Paper shape: daisychain traverses the most modules (every access walks
the chain), ternary tree / star the fewest; big networks traverse more
than small ones.
"""

from collections import defaultdict

from repro.harness.figures import fig6_modules_traversed
from repro.harness.report import format_table


def test_fig6_modules_traversed(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig6_modules_traversed, args=(runner, settings), rounds=1, iterations=1
    )
    headers = ["scale", "topology"] + list(settings.workloads) + ["avg"]
    by_cell = defaultdict(dict)
    for scale, topology, workload, hops in rows:
        by_cell[(scale, topology)][workload] = hops
    table = []
    averages = {}
    for (scale, topology), per_wl in by_cell.items():
        avg = sum(per_wl.values()) / len(per_wl)
        averages[(scale, topology)] = avg
        table.append(
            [scale, topology]
            + [f"{per_wl[w]:.1f}" for w in settings.workloads]
            + [f"{avg:.1f}"]
        )
    emit_result(
        "fig6_hops",
        format_table(headers, table, title="Figure 6 -- avg modules traversed per memory access"),
    )

    for scale in ("small", "big"):
        chain = averages[(scale, "daisychain")]
        tree = averages[(scale, "ternary_tree")]
        assert chain >= tree, f"{scale}: daisychain should traverse most"
    # Big networks traverse more modules than small ones.
    for topology in settings.topologies:
        assert averages[("big", topology)] > averages[("small", topology)]
    # Every access touches at least one module (and twice for reads).
    assert all(hops >= 1.0 for *_ignore, hops in rows)
