"""Figure 4: cumulative memory accesses by address range, per workload.

No simulation needed -- the workload profiles *are* the stylized CDFs;
this regenerates the plotted series and checks the headline properties
(footprints average ~17 GB, cold flat segments exist).
"""

from repro.harness.figures import fig4_workload_cdfs
from repro.harness.report import format_table
from repro.workloads import WORKLOAD_NAMES, get_profile


def test_fig4_workload_cdfs(benchmark, emit_result):
    series = benchmark(fig4_workload_cdfs, WORKLOAD_NAMES, 4.0)
    headers = ["workload"] + [f"{gb:g}GB" for gb in range(0, 40, 4)]
    rows = []
    for name, points in series:
        profile = get_profile(name)
        row = [name]
        for gb in range(0, 40, 4):
            if gb > profile.footprint_gb + 3.99:
                row.append("-")
            else:
                row.append(f"{profile.access_fraction_below(min(gb, profile.footprint_gb)):.2f}")
        rows.append(row)
    emit_result(
        "fig4_workload_cdf",
        format_table(headers, rows, title="Figure 4 -- cumulative access fraction by address range"),
    )

    assert len(series) == 14
    footprints = [get_profile(n).footprint_gb for n, _ in series]
    assert 14 <= sum(footprints) / len(footprints) <= 19
    # is.D spans the widest address range, as in the paper's x-axis.
    assert max(footprints) == get_profile("is.D").footprint_gb
    # CDFs are monotone and complete.
    for _name, points in series:
        ys = [y for _x, y in points]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert ys[-1] == 1.0
