"""Shared fixtures for the figure-reproduction benchmarks.

A single session-scoped :class:`SweepRunner` caches every simulation so
runs shared between figures (full-power baselines, the unaware grid)
simulate exactly once per pytest session.  It is additionally backed by
the shared persistent :class:`DiskCache`, so baselines survive *across*
sessions -- re-running the suite (or mixing it with ``repro-mnet
figure`` invocations) only simulates what the cache has never seen.

Environment knobs:

* ``REPRO_BENCH_NO_CACHE=1`` -- in-memory caching only (every session
  starts cold);
* ``REPRO_CACHE_DIR=...`` -- relocate the persistent cache;
* ``REPRO_BENCH_JOBS=N`` -- run cache misses over N worker processes.

Each benchmark prints its table/series and also writes it to
``results/<artifact>.txt`` so the output survives pytest's capture.

Scale: the default settings simulate a 4-workload subset over 500 us
windows; set ``REPRO_BENCH_FULL=1`` for all 14 workloads over 1 ms
(slower, closer to the paper's grids).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.diskcache import DiskCache
from repro.harness.executor import make_executor
from repro.harness.figures import RunSettings
from repro.harness.sweep import SweepRunner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> SweepRunner:
    disk = None
    if os.environ.get("REPRO_BENCH_NO_CACHE", "0") != "1":
        disk = DiskCache()  # $REPRO_CACHE_DIR or ~/.cache/repro-mnet
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return SweepRunner(executor=make_executor(jobs), disk_cache=disk)


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    return RunSettings.from_env()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def emit_result(results_dir):
    def _emit(name: str, text: str) -> None:
        emit(results_dir, name, text)

    return _emit
