"""Shared fixtures for the figure-reproduction benchmarks.

A single session-scoped :class:`SweepRunner` caches every simulation so
runs shared between figures (full-power baselines, the unaware grid)
simulate exactly once per pytest session.

Each benchmark prints its table/series and also writes it to
``results/<artifact>.txt`` so the output survives pytest's capture.

Scale: the default settings simulate a 4-workload subset over 500 us
windows; set ``REPRO_BENCH_FULL=1`` for all 14 workloads over 1 ms
(slower, closer to the paper's grids).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.figures import RunSettings
from repro.harness.sweep import SweepRunner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> SweepRunner:
    return SweepRunner()


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    return RunSettings.from_env()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def emit_result(results_dir):
    def _emit(name: str, text: str) -> None:
        emit(results_dir, name, text)

    return _emit
