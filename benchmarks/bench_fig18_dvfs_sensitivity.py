"""Figure 18: sensitivity -- DVFS links and 20 ns-wakeup ROO links.

Paper shape: for the same alpha, DVFS saves less than VWL (its long
SERDES latency at low voltage eats the budget); 20 ns ROO saves
slightly less than 14 ns ROO; network-aware still beats unaware
(21 % / 12 % further reduction for big / small in the paper).
"""

from repro.harness.figures import fig18_dvfs_sensitivity
from repro.harness.report import format_table


def test_fig18_dvfs_sensitivity(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig18_dvfs_sensitivity, args=(runner, settings), rounds=1, iterations=1
    )
    table = [
        [scale, label, policy, f"{red * 100:.1f}%", f"{deg * 100:.2f}%"]
        for scale, label, policy, red, deg in rows
    ]
    emit_result(
        "fig18_dvfs_sensitivity",
        format_table(
            ["scale", "mechanism", "policy", "power reduction vs FP", "avg deg vs FP"],
            table,
            title="Figure 18 -- DVFS and 20 ns ROO sensitivity (alpha=5%)",
        ),
    )

    cell = {(s, l, p): (red, deg) for s, l, p, red, deg in rows}
    for scale in ("small", "big"):
        for label in ("DVFS", "ROO@20ns", "DVFS+ROO@20ns"):
            unaware_red, unaware_deg = cell[(scale, label, "unaware")]
            aware_red, aware_deg = cell[(scale, label, "aware")]
            # Aware continues to win under the sensitivity parameters.
            assert aware_red >= unaware_red - 0.02, (
                f"{scale}/{label}: aware {aware_red:.1%} < unaware {unaware_red:.1%}"
            )
            # Overheads stay bounded near alpha.
            assert unaware_deg < 0.13 and aware_deg < 0.13
            # Some saving materializes for the aware scheme.
            assert aware_red > 0.0
