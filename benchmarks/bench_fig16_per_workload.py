"""Figure 16: power saving by workload for big networks (alpha = 5 %).

Paper shape: network-aware management yields higher power reduction
than network-unaware management for *every* workload; combined VWL+ROO
dominates the single mechanisms.
"""

from collections import defaultdict

from repro.harness.figures import fig16_per_workload_savings
from repro.harness.report import format_table


def test_fig16_per_workload_savings(benchmark, runner, settings, emit_result):
    rows = benchmark.pedantic(
        fig16_per_workload_savings, args=(runner, settings), rounds=1, iterations=1
    )
    cell = {(w, m, p): r for w, m, p, r in rows}
    mechs = ("VWL", "ROO", "VWL+ROO")
    headers = ["workload"] + [f"{m}:{p}" for m in mechs for p in ("unaware", "aware")]
    table = []
    for workload in settings.workloads:
        table.append(
            [workload]
            + [
                f"{cell[(workload, m, p)] * 100:.1f}%"
                for m in mechs
                for p in ("unaware", "aware")
            ]
        )
    emit_result(
        "fig16_per_workload",
        format_table(
            headers, table,
            title="Figure 16 -- network power reduction vs. full power (big, alpha=5%)",
        ),
    )

    # Aware consistently beats unaware per workload and mechanism
    # (small tolerance for simulation noise at bench scale).
    wins = 0
    total = 0
    for workload in settings.workloads:
        for mech in mechs:
            total += 1
            if cell[(workload, mech, "aware")] >= cell[(workload, mech, "unaware")] - 0.02:
                wins += 1
    assert wins >= 0.85 * total, f"aware won only {wins}/{total} cells"

    # Savings are positive for aware management everywhere.
    for workload in settings.workloads:
        assert cell[(workload, "VWL+ROO", "aware")] > 0.0
