# Developer entry points mirroring the CI jobs (.github/workflows/ci.yml).
#
# `lint` requires ruff and mypy (installed with `pip install -e .[dev]`);
# `bench-gate` is the same command the CI perf job runs.

PYTHON ?= python
LINT_PATHS = src/repro/sim src/repro/network src/repro/perf
# Typed surface is wider than the ruff-formatted one: core (policies,
# mechanisms, overrides) and harness (builder, experiment, caches) are
# mypy-checked too.
MYPY_PATHS = src/repro/sim src/repro/network src/repro/core src/repro/harness src/repro/perf

.PHONY: test lint bench bench-quick bench-gate baseline serve-smoke selfheal-smoke store-migrate-smoke

test:
	$(PYTHON) -m pytest -x -q

# The CI serve job: end-to-end smoke of `repro-mnet serve` (dedup,
# tiering, backpressure, SIGTERM drain); see docs/serving.md.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# The CI serve job's store step: seed a JSON cache with real runs,
# `repro-mnet store migrate` it into results.sqlite, and prove repeat
# runs are served byte-identically from the migrated store.
store-migrate-smoke:
	$(PYTHON) scripts/store_migrate_smoke.py

# The CI serve job's chaos step: SIGKILL a pool worker mid-batch,
# saturate the queue under --degrade analytical, trip a circuit
# breaker; see docs/resilience.md.
selfheal-smoke:
	$(PYTHON) scripts/selfheal_smoke.py

lint:
	ruff check $(LINT_PATHS)
	ruff format --check $(LINT_PATHS)
	mypy $(MYPY_PATHS)

bench:
	$(PYTHON) -m repro.cli bench

bench-quick:
	$(PYTHON) -m repro.cli bench --quick

bench-gate:
	$(PYTHON) -m repro.cli bench --quick --baseline benchmarks/baseline_ci.json --max-regress 25

# Refresh the committed CI baseline (run on an otherwise idle machine;
# see docs/benchmarking.md for when this is legitimate).
baseline:
	$(PYTHON) -m repro.cli bench --quick --out benchmarks/baseline_ci.json
