"""Tests for the repro-mnet command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "mixB"
        assert args.mechanism == "FP"
        assert args.alpha == 0.05
        assert not args.baseline

    def test_run_full_flags(self):
        args = build_parser().parse_args([
            "run", "--workload", "is.D", "--topology", "ddrx_like",
            "--scale", "big", "--mechanism", "VWL+ROO", "--policy", "aware",
            "--alpha", "0.1", "--window-us", "200", "--epoch-us", "20",
            "--seed", "9", "--wake-ns", "20", "--mapping", "interleaved",
            "--baseline",
        ])
        assert args.workload == "is.D"
        assert args.mechanism == "VWL+ROO"
        assert args.wake_ns == 20.0
        assert args.baseline

    def test_invalid_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])

    def test_run_observability_flags(self):
        args = build_parser().parse_args([
            "run", "--trace", "out.jsonl", "--trace-format", "chrome",
            "--trace-categories", "all", "--metrics-out", "m.json",
        ])
        assert args.trace == "out.jsonl"
        assert args.trace_format == "chrome"
        assert args.trace_categories == "all"
        assert args.metrics_out == "m.json"

    def test_run_observability_defaults_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace is None
        assert args.metrics_out is None

    def test_trace_kind_flag(self):
        args = build_parser().parse_args(["trace", "out.jsonl"])
        assert args.kind == "accesses"
        args = build_parser().parse_args(
            ["trace", "out.jsonl", "--kind", "events", "--format", "csv"])
        assert args.kind == "events"
        assert args.format == "csv"

    def test_figure_names(self):
        args = build_parser().parse_args(["figure", "fig5"])
        assert args.name == "fig5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_prints_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mixB" in out and "daisychain" in out and "VWL+ROO" in out

    def test_run_small_experiment(self, capsys):
        rc = main([
            "run", "--workload", "sp.D", "--window-us", "50",
            "--epoch-us", "15",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "power per HMC" in out
        assert "channel utilization" in out

    def test_run_with_baseline_compares(self, capsys):
        rc = main([
            "run", "--workload", "sp.D", "--mechanism", "VWL",
            "--policy", "unaware", "--window-us", "50", "--epoch-us", "15",
            "--baseline",
        ])
        assert rc == 0
        assert "vs full power" in capsys.readouterr().out

    def test_figure_fig4_runs_without_simulation(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "ua.D" in out and "mixG" in out

    def test_trace_command_writes_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.trace")
        rc = main([
            "trace", path, "--workload", "sp.D", "--window-us", "30",
        ])
        assert rc == 0
        from repro.workloads.traces import load_trace

        assert len(load_trace(path)) > 0

    def test_run_with_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        rc = main([
            "run", "--workload", "sp.D", "--mechanism", "VWL+ROO",
            "--policy", "aware", "--window-us", "50", "--epoch-us", "15",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace events" in out and "per-epoch metrics" in out
        events = [json.loads(l) for l in trace.read_text().splitlines()]
        kinds = {e["ev"] for e in events}
        assert "trace.begin" in kinds and "link.state" in kinds
        assert "epoch.boundary" in kinds
        assert json.loads(metrics.read_text())["counters"]["epochs"] > 0

    def test_trace_events_kind(self, tmp_path, capsys):
        path = tmp_path / "ev.jsonl"
        rc = main([
            "trace", str(path), "--kind", "events", "--workload", "sp.D",
            "--window-us", "50", "--epoch-us", "15",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link power-state residency" in out
        assert path.exists()

    def test_batch_command(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "base": {"workload": "sp.D", "window_ns": 40_000.0,
                     "epoch_ns": 15_000.0},
            "grid": {"mechanism": ["FP", "VWL"],
                     "policy": ["none"]},
        }))
        out_csv = str(tmp_path / "res.csv")
        rc = main(["batch", str(spec), "--out-csv", out_csv])
        assert rc == 0
        import csv as _csv

        rows = list(_csv.DictReader(open(out_csv)))
        assert len(rows) == 2

    def test_sweep_alpha_command(self, capsys):
        rc = main([
            "sweep-alpha", "--workload", "sp.D", "--scale", "small",
            "--window-us", "40", "--epoch-us", "15",
            "--alphas", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "power saved" in out and "Pareto" in out
