"""Smoke tests for the figure-reproduction functions at tiny scale.

The benchmarks exercise these at paper scale; here we verify the API
contracts (shapes, keys, ranges) with a minimal grid so the tests stay
fast.
"""

import pytest

from repro.harness import figures as F
from repro.harness.sweep import SweepRunner

TINY = F.RunSettings(
    workloads=("sp.D",),
    topologies=("daisychain", "star"),
    window_ns=60_000.0,
    epoch_ns=15_000.0,
)


@pytest.fixture(scope="module")
def runner():
    return SweepRunner()


class TestRunSettings:
    def test_defaults(self):
        s = F.RunSettings()
        assert len(s.workloads) == 4
        assert len(s.topologies) == 4

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        s = F.RunSettings.from_env()
        assert s.workloads == F._FAST_WORKLOADS

    def test_from_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        s = F.RunSettings.from_env()
        assert len(s.workloads) == 14

    def test_base_config_carries_settings(self):
        cfg = TINY.base_config(workload="sp.D", mechanism="VWL")
        assert cfg.window_ns == 60_000.0
        assert cfg.epoch_ns == 15_000.0


class TestFig4:
    def test_series_for_all_workloads(self):
        series = F.fig4_workload_cdfs()
        assert len(series) == 14
        for _name, points in series:
            assert points[0][1] == 0.0
            assert points[-1][1] == 1.0


class TestCharacterizationFigures:
    def test_fig5_rows_shape(self, runner):
        rows = F.fig5_power_breakdown(runner, TINY)
        # 2 scales x (2 topologies + avg row).
        assert len(rows) == 6
        for _scale, _topo, watts in rows:
            assert set(watts) == {
                "idle_io", "active_io", "logic_leak", "logic_dyn",
                "dram_leak", "dram_dyn",
            }
            assert all(v >= 0 for v in watts.values())

    def test_fig6_positive_hops(self, runner):
        rows = F.fig6_modules_traversed(runner, TINY)
        assert len(rows) == 4
        assert all(h >= 1.0 for *_x, h in rows)

    def test_fig8_fractions_in_range(self, runner):
        rows = F.fig8_idle_io_fraction(runner, TINY)
        assert all(0.0 < f < 1.0 for *_x, f in rows)

    def test_fig9_link_below_channel(self, runner):
        rows = F.fig9_utilization(runner, TINY)
        for *_x, chan, link in rows:
            assert 0.0 <= link <= chan + 0.01


class TestManagementFigures:
    def test_fig11_has_fp_and_managed_rows(self, runner):
        rows = F.fig11_unaware_power(runner, TINY)
        labels = {label for _s, _t, label, _a, _w in rows}
        assert labels == {"FP", "VWL", "ROO", "VWL+ROO"}
        assert all(w > 0 for *_x, w in rows)

    def test_fig12_degradations_bounded(self, runner):
        rows = F.fig12_unaware_performance(runner, TINY)
        for *_x, avg, worst in rows:
            assert avg <= worst + 1e-12
            assert worst < 0.5

    def test_fig15_rows_cover_grid(self, runner):
        rows = F.fig15_aware_vs_unaware(runner, TINY)
        assert len(rows) == 2 * 3 * 2 * 2  # scales x mechs x alphas x topos

    def test_fig16_rows(self, runner):
        rows = F.fig16_per_workload_savings(runner, TINY)
        assert len(rows) == 1 * 3 * 2  # workloads x mechs x policies
        for _w, _m, policy, reduction in rows:
            assert policy in ("unaware", "aware")
            assert -0.5 < reduction < 1.0

    def test_fig13_bucket_structure(self, runner):
        dist = F.fig13_link_hours(runner, TINY, policy="unaware", scale="small")
        assert set(dist) == {"0-1%", "1-5%", "5-10%", "10-20%", "20-100%"}
        total = sum(v for per_mode in dist.values() for v in per_mode.values())
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_fig17_rows_structure(self, runner):
        rows = F.fig17_aware_performance(runner, TINY)
        assert len(rows) == 2 * 3 * 2 * 2
        for *_x, avg_rel, max_fp in rows:
            assert max_fp < 0.5

    def test_fig18_labels(self, runner):
        rows = F.fig18_dvfs_sensitivity(runner, TINY)
        labels = {label for _s, label, _p, _r, _d in rows}
        assert labels == {"DVFS", "ROO@20ns", "DVFS+ROO@20ns"}

    def test_sec7_keys(self, runner):
        stats = F.sec7_static_comparison(runner, TINY, scale="small")
        assert {
            "static_avg_degradation",
            "static_max_degradation",
            "static_top_quarter_degradation",
            "aware_avg_degradation",
            "aware_max_degradation",
            "aware_top_quarter_degradation",
            "aware_power_reduction_vs_static",
        } == set(stats)
