"""Golden-result determinism pin for the full experiment pipeline.

``tests/golden/experiment_results.json`` holds the complete
``result_to_cache_dict`` payload (minus wall time) of four experiment
configurations spanning the mechanism/policy/topology space.  Re-running
them must reproduce every field bit-for-bit -- including the power
breakdown floats and ``events_processed``, which pins the exact event
count and ordering of the discrete-event core.

Any optimization that changes floating-point evaluation order, event
scheduling order, or RNG consumption shows up here as a diff.  The file
must only be regenerated for an *intentional* semantic change, never to
paper over an accidental one.
"""

import json
import os

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.io import result_to_cache_dict

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "experiment_results.json"
)

with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)


def _case_id(entry):
    cfg = entry["config"]
    return "-".join(
        str(cfg[k]) for k in ("workload", "topology", "mechanism", "policy", "seed")
    )


@pytest.mark.parametrize("entry", GOLDEN, ids=[_case_id(e) for e in GOLDEN])
def test_experiment_results_match_golden(entry):
    config = ExperimentConfig(**entry["config"])
    payload = result_to_cache_dict(run_experiment(config))
    payload.pop("wall_time_s", None)
    expected = dict(entry)
    expected.pop("wall_time_s", None)
    # Field-by-field first for a readable diff on failure.
    assert set(payload) == set(expected)
    for key in sorted(expected):
        assert payload[key] == expected[key], f"field {key!r} diverged"
