"""Tests for the analytical queueing and power models, including
cross-checks against the event-driven simulator."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    LinkLoadModel,
    link_service_time_ns,
    link_utilization,
    md1_latency_ns,
    md1_wait_ns,
    predict_full_power_breakdown,
    predict_idle_io_fraction,
)
from repro.network.topology import daisychain, ternary_tree


class TestMd1:
    def test_zero_load_zero_wait(self):
        assert md1_wait_ns(3.2, 0.0) == 0.0

    def test_wait_grows_with_load(self):
        waits = [md1_wait_ns(3.2, rho) for rho in (0.1, 0.5, 0.9)]
        assert waits[0] < waits[1] < waits[2]

    def test_half_load_half_service(self):
        # rho = 0.5: W = 0.5 * S / (2 * 0.5) = S / 2.
        assert md1_wait_ns(10.0, 0.5) == pytest.approx(5.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            md1_wait_ns(3.2, 1.0)

    def test_latency_adds_pipeline(self):
        assert md1_latency_ns(2.0, 0.0, pipeline_ns=3.2) == pytest.approx(5.2)


class TestLinkHelpers:
    def test_service_time_full_width(self):
        # 5-flit response packet at full width: 3.2 ns.
        assert link_service_time_ns(5) == pytest.approx(3.2)

    def test_service_time_narrowed(self):
        assert link_service_time_ns(5, 0.5) == pytest.approx(6.4)

    def test_utilization(self):
        # One 5-flit packet every 32 ns at full width: rho = 0.1.
        assert link_utilization(1 / 32, 5) == pytest.approx(0.1)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            link_service_time_ns(5, 0.0)


class TestLinkLoadModel:
    def test_narrowing_cost_grows(self):
        model = LinkLoadModel(packets_per_ns=0.05, flits=5)
        assert model.stable
        cost_half = model.narrowing_cost_ns(0.5)
        cost_quarter = model.narrowing_cost_ns(0.25)
        assert 0 < cost_half < cost_quarter

    def test_unstable_narrowing_infinite(self):
        model = LinkLoadModel(packets_per_ns=0.2, flits=5)  # rho=0.64
        assert model.narrowing_cost_ns(1 / 16) == math.inf

    def test_unstable_latency_infinite(self):
        model = LinkLoadModel(packets_per_ns=1.0, flits=5)
        assert not model.stable
        assert model.mean_latency_ns() == math.inf


class TestSimulatorCrossCheck:
    def test_md1_predicts_simulated_link_latency(self):
        """Drive one link with Poisson arrivals; the measured mean
        latency should sit near the M/D/1 prediction."""
        from repro.core.mechanisms import make_mechanism
        from repro.network.links import LinkController, LinkDir
        from repro.network.packets import Packet, PacketKind
        from repro.power.accounting import EnergyLedger
        from repro.sim import Simulator

        rate = 0.1  # packets per ns, rho = 0.32
        sim = Simulator()
        link = LinkController(
            sim, "x", LinkDir.RESPONSE, 0, -1, make_mechanism("FP"),
            0.58625, EnergyLedger(), EnergyLedger(),
        )
        link.deliver = lambda pkt, now: None
        link.start(0.0)
        rng = random.Random(9)
        t = 0.0
        for _ in range(4000):
            t += rng.expovariate(rate)
            pkt = Packet(kind=PacketKind.READ_RESP, address=0, dest=-1)
            sim.schedule_at(t, lambda p=pkt: link.enqueue(p, sim.now))
        sim.run()
        measured = link.ep_actual_read_lat / link.ep_reads
        predicted = md1_latency_ns(3.2, rate * 3.2, pipeline_ns=3.2)
        assert measured == pytest.approx(predicted, rel=0.15)


class TestPowerPrediction:
    def test_prediction_matches_simulated_full_power(self):
        """The closed-form Figure 5 predictor lands near the simulator."""
        from repro.harness.experiment import ExperimentConfig, run_experiment

        res = run_experiment(ExperimentConfig(
            workload="lu.D", topology="daisychain",
            window_ns=100_000.0,
        ))
        rate = (res.completed_reads + res.completed_writes) / 100_000.0
        predicted = predict_full_power_breakdown(
            daisychain(res.num_modules),
            avg_link_utilization=res.link_utilization,
            accesses_per_ns=rate,
        )
        for category in ("idle_io", "dram_leak", "logic_leak"):
            assert predicted[category] == pytest.approx(
                res.breakdown.watts[category], rel=0.2
            ), category

    def test_idle_fraction_above_half_for_low_util(self):
        frac = predict_idle_io_fraction(ternary_tree(13), 0.05, 0.1)
        assert frac > 0.5

    def test_higher_util_lower_idle_fraction(self):
        low = predict_idle_io_fraction(daisychain(5), 0.05, 0.05)
        high = predict_idle_io_fraction(daisychain(5), 0.5, 0.4)
        assert high < low

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            predict_full_power_breakdown(daisychain(2), avg_link_utilization=1.5)


@settings(max_examples=40, deadline=None)
@given(
    service=st.floats(min_value=0.1, max_value=100),
    rho=st.floats(min_value=0.0, max_value=0.99),
)
def test_md1_wait_nonnegative_and_monotone(service, rho):
    wait = md1_wait_ns(service, rho)
    assert wait >= 0.0
    if rho < 0.98:
        assert md1_wait_ns(service, rho + 0.01) >= wait
