"""Experiment service tests: tiering, single-flight dedup, batching,
backpressure/admission codes, graceful drain, and the HTTP API
(endpoints, error mapping, /stats accounting)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.harness.diskcache import DiskCache
from repro.harness.executor import Executor, FailedResult
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.journal import SweepJournal
from repro.harness.report import render_run_summary
from repro.power.accounting import PowerBreakdown
from repro.serve import (
    DrainingError,
    ExperimentServer,
    ExperimentService,
    LruResultCache,
    QueueFullError,
    ServiceSettings,
)

FAST = dict(window_ns=20_000.0, epoch_ns=5_000.0)

WATTS = {
    "idle_io": 2.0, "active_io": 1.0, "logic_leak": 0.5,
    "logic_dyn": 0.5, "dram_leak": 0.5, "dram_dyn": 0.5,
}


def fake_result(config: ExperimentConfig) -> ExperimentResult:
    """A structurally valid result without running a simulation."""
    return ExperimentResult(
        config=config,
        num_modules=16,
        breakdown=PowerBreakdown(watts=dict(WATTS)),
        throughput_per_s=1e9 + config.seed,
        avg_read_latency_ns=100.0,
        max_read_latency_ns=500.0,
        channel_utilization=0.5,
        link_utilization=0.1,
        avg_modules_traversed=2.0,
        completed_reads=1000,
        completed_writes=500,
        events_processed=1234,
        wall_time_s=0.01,
    )


class GateExecutor(Executor):
    """Fake executor: blocks each batch on a gate, counts calls."""

    jobs = 1

    def __init__(self, hold: bool = False, fail: bool = False) -> None:
        self.gate = threading.Event()
        if not hold:
            self.gate.set()
        self.fail = fail
        self.batches = []
        self.simulated = 0

    def run_many(self, configs, on_result=None):
        """Resolve every config with a fake result (or failure)."""
        configs = list(configs)
        self.batches.append(len(configs))
        assert self.gate.wait(20), "gate never opened"
        out = []
        for i, config in enumerate(configs):
            self.simulated += 1
            if self.fail:
                outcome = FailedResult(
                    config=config, error_type="error", message="boom"
                )
            else:
                outcome = fake_result(config)
            if on_result is not None:
                on_result(i, config, outcome)
            out.append(outcome)
        return out


def make_service(tmp_path=None, executor=None, **settings) -> ExperimentService:
    settings.setdefault("batch_window_s", 0.005)
    return ExperimentService(
        executor=executor or GateExecutor(),
        disk_cache=DiskCache(tmp_path) if tmp_path is not None else None,
        settings=ServiceSettings(**settings),
    ).start()


@pytest.fixture()
def cfg():
    return ExperimentConfig(workload="mixB", **FAST)


class TestLruResultCache:
    def test_hit_miss_and_eviction_accounting(self, cfg):
        lru = LruResultCache(capacity=2)
        assert lru.get("a") is None and lru.misses == 1
        ra, rb, rc = (fake_result(cfg.replace(seed=i)) for i in (1, 2, 3))
        lru.put("a", ra)
        lru.put("b", rb)
        assert lru.get("a") is ra  # refreshes recency: b is now LRU
        lru.put("c", rc)
        assert lru.evictions == 1
        assert lru.get("b") is None  # b was evicted, not a
        assert lru.get("a") is ra and lru.get("c") is rc
        assert lru.stats()["size"] == 2

    def test_capacity_zero_disables_the_tier(self, cfg):
        lru = LruResultCache(capacity=0)
        lru.put("a", fake_result(cfg))
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruResultCache(capacity=-1)


class TestSingleFlight:
    def test_n_concurrent_identical_requests_one_simulation(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor)
        tickets = [service.submit(cfg) for _ in range(6)]
        assert len({id(t) for t in tickets}) == 1  # one shared flight
        executor.gate.set()
        assert tickets[0].wait(10)
        assert executor.simulated == 1
        stats = service.stats()
        assert stats["tiers"]["simulated"] == 1
        assert stats["dedup_coalesced"] == 5
        assert stats["requests_total"] == 6
        assert service.drain(timeout=5)

    def test_distinct_configs_do_not_coalesce(self, cfg):
        executor = GateExecutor()
        service = make_service(executor=executor)
        a = service.execute(cfg, timeout=10)
        b = service.execute(cfg.replace(seed=2), timeout=10)
        assert a is not b
        assert executor.simulated == 2
        assert service.stats()["dedup_coalesced"] == 0
        assert service.drain(timeout=5)


class TestTiering:
    def test_simulate_then_memory_hit(self, cfg):
        service = make_service()
        first = service.execute(cfg, timeout=10)
        again = service.execute(cfg, timeout=10)
        assert first.tier == "simulated"
        assert again.tier == "memory"
        assert again.result is first.result
        stats = service.stats()
        assert stats["tiers"]["memory"] == 1
        assert stats["tiers"]["hit_ratio"]["memory"] == 0.5
        assert service.drain(timeout=5)

    def test_disk_hit_populates_memory(self, tmp_path, cfg):
        disk = DiskCache(tmp_path)
        disk.put(cfg, fake_result(cfg))
        executor = GateExecutor()
        service = ExperimentService(
            executor=executor, disk_cache=disk,
            settings=ServiceSettings(batch_window_s=0.005),
        ).start()
        first = service.execute(cfg, timeout=10)
        assert first.tier == "disk"
        assert executor.simulated == 0
        assert service.execute(cfg, timeout=10).tier == "memory"
        assert service.stats()["disk_cache"]["hits"] == 1
        assert service.drain(timeout=5)

    def test_simulated_result_written_to_disk(self, tmp_path, cfg):
        service = make_service(tmp_path=tmp_path)
        service.execute(cfg, timeout=10)
        assert service.disk_cache.writes == 1
        assert len(service.disk_cache) == 1
        assert service.drain(timeout=5)

    def test_lru_eviction_visible_in_stats(self, cfg):
        service = make_service(memory_entries=1)
        service.execute(cfg, timeout=10)
        service.execute(cfg.replace(seed=2), timeout=10)
        stats = service.stats()
        assert stats["memory_cache"]["evictions"] == 1
        assert stats["memory_cache"]["size"] == 1
        # The evicted config re-simulates; the resident one is a hit.
        assert service.execute(cfg.replace(seed=2), timeout=10).tier == "memory"
        assert service.execute(cfg, timeout=10).tier == "simulated"
        assert service.drain(timeout=5)


class TestBatching:
    def test_queued_misses_coalesce_into_one_executor_batch(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor, batch_window_s=0.05)
        tickets = [service.submit(cfg.replace(seed=i)) for i in range(4)]
        executor.gate.set()
        for t in tickets:
            assert t.wait(10)
        # One linger window collected all four distinct misses.
        assert executor.batches and max(executor.batches) >= 2
        assert sum(executor.batches) == 4
        assert service.stats()["batches"] == len(executor.batches)
        assert service.drain(timeout=5)

    def test_batch_max_splits_oversized_batches(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor, batch_max=2,
                               batch_window_s=0.05)
        tickets = [service.submit(cfg.replace(seed=i)) for i in range(5)]
        executor.gate.set()
        for t in tickets:
            assert t.wait(10)
        assert max(executor.batches) <= 2
        assert service.drain(timeout=5)


class TestBackpressure:
    def test_queue_full_rejects_with_429_semantics(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor, queue_limit=1)
        admitted = service.submit(cfg)
        deadline = time.monotonic() + 5
        while service.stats()["in_flight"] == 0 and time.monotonic() < deadline:
            time.sleep(0.005)  # wait for dispatch so outstanding == 1
        with pytest.raises(QueueFullError) as exc_info:
            service.submit(cfg.replace(seed=2))
        assert exc_info.value.http_status == 429
        assert exc_info.value.retry_after_s is not None
        stats = service.stats()
        assert stats["rejected_queue_full"] == 1
        # Duplicates of the in-flight config still coalesce (no slot).
        joined = service.submit(cfg)
        assert joined is admitted
        executor.gate.set()
        assert admitted.wait(10)
        assert service.drain(timeout=5)

    def test_hits_are_admitted_even_at_capacity(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor, queue_limit=1)
        warm = cfg.replace(seed=50)
        service.memory.put(warm.cache_key(), fake_result(warm))
        service.submit(cfg)
        ticket = service.submit(warm)  # memory hit: no queue slot needed
        assert ticket.done and ticket.tier == "memory"
        executor.gate.set()
        assert service.drain(timeout=5)

    def test_execute_timeout(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor)
        with pytest.raises(TimeoutError):
            service.execute(cfg, timeout=0.05)
        executor.gate.set()
        assert service.drain(timeout=5)


class TestDrain:
    def test_draining_rejects_new_work_with_503_semantics(self, cfg):
        service = make_service()
        service.begin_drain()
        with pytest.raises(DrainingError) as exc_info:
            service.submit(cfg)
        assert exc_info.value.http_status == 503
        assert service.stats()["rejected_draining"] == 1
        assert service.drain(timeout=5)

    def test_in_flight_work_completes_during_drain(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor)
        ticket = service.submit(cfg)
        service.begin_drain()
        assert not ticket.done
        executor.gate.set()
        assert service.drain(timeout=10)
        assert ticket.done and ticket.result is not None
        assert ticket.tier == "simulated"

    def test_drain_timeout_reports_false(self, cfg):
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor)
        service.submit(cfg)
        assert service.drain(timeout=0.1) is False
        executor.gate.set()
        assert service.wait_idle(timeout=10)

    def test_drain_closes_the_journal(self, tmp_path, cfg):
        journal = SweepJournal(tmp_path / "serve.jsonl")
        service = ExperimentService(
            executor=GateExecutor(), journal=journal,
            settings=ServiceSettings(batch_window_s=0.005),
        ).start()
        service.execute(cfg, timeout=10)
        assert service.drain(timeout=5)
        assert journal._fh is None  # closed
        lines = (tmp_path / "serve.jsonl").read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["kind"] == "done"

    def test_warm_start_seeds_the_memory_tier(self, tmp_path, cfg):
        path = tmp_path / "serve.jsonl"
        journal = SweepJournal(path)
        journal.record_done(cfg.cache_key(), fake_result(cfg))
        journal.close()
        resumed = SweepJournal(path, resume=True)
        service = ExperimentService(
            executor=GateExecutor(),
            settings=ServiceSettings(batch_window_s=0.005),
        )
        assert service.warm_start(resumed) == 1
        service.start()
        assert service.execute(cfg, timeout=10).tier == "memory"
        resumed.close()
        assert service.drain(timeout=5)


class TestFailures:
    def test_failed_simulation_is_not_cached(self, cfg):
        executor = GateExecutor(fail=True)
        service = make_service(executor=executor)
        ticket = service.execute(cfg, timeout=10)
        assert ticket.failure is not None
        assert ticket.failure.error_type == "error"
        assert service.stats()["failed"] == 1
        assert len(service.memory) == 0
        # The key is live again: a retry re-dispatches.
        executor.fail = False
        assert service.execute(cfg, timeout=10).result is not None
        assert service.drain(timeout=5)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
@pytest.fixture()
def http_server():
    """An ExperimentServer on an ephemeral port over a GateExecutor."""
    executor = GateExecutor()
    service = ExperimentService(
        executor=executor,
        settings=ServiceSettings(batch_window_s=0.005, queue_limit=2,
                                 request_timeout_s=20.0),
    ).start()
    httpd = ExperimentServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{httpd.port}", service, executor
    finally:
        service.begin_drain()
        executor.gate.set()
        service.wait_idle(timeout=10)
        httpd.shutdown()
        thread.join(timeout=10)
        httpd.server_close()


def http_request(url, body=None, timeout=20.0):
    req = urllib.request.Request(
        url,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


CONFIG_BODY = {"config": {"workload": "mixB", **FAST}}


class TestHttpApi:
    def test_healthz_stats_metrics(self, http_server):
        base, service, _ = http_server
        status, _, body = http_request(base + "/healthz")
        assert (status, body["status"]) == (200, "healthy")
        assert body["live"] is True and body["ready"] is True
        status, _, live = http_request(base + "/healthz/live")
        assert (status, live["live"]) == (200, True)
        status, _, ready = http_request(base + "/healthz/ready")
        assert (status, ready["ready"]) == (200, True)
        status, _, stats = http_request(base + "/stats")
        assert status == 200 and stats["queue_limit"] == 2
        assert stats["executor"]["kind"] == "GateExecutor"
        status, _, metrics = http_request(base + "/metrics")
        assert status == 200
        assert "serve.latency_ms" in metrics["quantiles"]
        assert {"p50", "p95"} <= set(metrics["quantiles"]["serve.latency_ms"])

    def test_run_round_trip_summary_and_payload(self, http_server):
        base, service, _ = http_server
        status, _, body = http_request(base + "/v1/run", CONFIG_BODY)
        assert status == 200
        assert body["tier"] == "simulated"
        config = ExperimentConfig(**CONFIG_BODY["config"])
        assert body["key"] == config.cache_key()
        expected = fake_result(config)
        assert body["result"]["watts"] == dict(WATTS)
        assert body["summary"] == render_run_summary(config, expected)
        status, _, body = http_request(base + "/v1/run", CONFIG_BODY)
        assert status == 200 and body["tier"] == "memory"

    def test_bad_config_is_400(self, http_server):
        base, _, _ = http_server
        for bad in (
            {"config": {"workload": "mixB", "no_such_field": 1}},
            {"config": {"workload": "mixB", "scale": "enormous"}},
            {"config": {"workload": "mixB", "trace_path": "/tmp/x.jsonl"}},
            ["not", "an", "object"],
        ):
            status, _, body = http_request(base + "/v1/run", bad)
            assert status == 400, bad
            assert "error" in body

    def test_unknown_path_is_404(self, http_server):
        base, _, _ = http_server
        assert http_request(base + "/nope")[0] == 404
        assert http_request(base + "/v1/nope", {"x": 1})[0] == 404

    def test_queue_full_is_429_with_retry_after(self, http_server):
        base, service, executor = http_server
        executor.gate.clear()
        threads = []
        for seed in (11, 12):
            body = {"config": dict(CONFIG_BODY["config"], seed=seed)}
            t = threading.Thread(
                target=http_request, args=(base + "/v1/run", body)
            )
            t.start()
            threads.append(t)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            stats = service.stats()
            if stats["in_flight"] + stats["queue_depth"] >= 2:
                break
            time.sleep(0.005)
        status, headers, body = http_request(
            base + "/v1/run", {"config": dict(CONFIG_BODY["config"], seed=13)}
        )
        assert status == 429
        assert headers.get("Retry-After")
        assert body["error"]["kind"] == "rejected"
        executor.gate.set()
        for t in threads:
            t.join(timeout=10)

    def test_draining_is_503_on_health_and_run(self, http_server):
        base, service, _ = http_server
        service.begin_drain()
        assert http_request(base + "/healthz")[0] == 503
        status, _, body = http_request(base + "/v1/run", CONFIG_BODY)
        assert status == 503
        assert body["error"]["kind"] == "rejected"

    def test_batch_endpoint_mixed_outcomes(self, http_server):
        base, _, _ = http_server
        payload = {
            "configs": [
                {"workload": "mixB", **FAST},
                {"workload": "mixB", "seed": 2, **FAST},
                {"workload": "mixB", **FAST},  # duplicate of the first
            ]
        }
        status, _, body = http_request(base + "/v1/batch", payload)
        assert status == 200
        results = body["results"]
        assert [r["status"] for r in results] == [200, 200, 200]
        assert results[0]["key"] == results[2]["key"]
        status, _, body = http_request(base + "/v1/batch", {"configs": "x"})
        assert status == 400

    def test_simulation_failure_maps_to_500(self):
        executor = GateExecutor(fail=True)
        service = ExperimentService(
            executor=executor,
            settings=ServiceSettings(batch_window_s=0.005),
        ).start()
        httpd = ExperimentServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, body = http_request(
                f"http://127.0.0.1:{httpd.port}/v1/run", CONFIG_BODY
            )
            assert status == 500
            assert body["error"]["kind"] == "error"
            assert body["error"]["message"] == "boom"
        finally:
            service.drain(timeout=5)
            httpd.shutdown()
            thread.join(timeout=10)
            httpd.server_close()


class TestRealSimulationThroughService:
    """One real (tiny) simulation through the full service stack."""

    def test_served_result_matches_direct_run(self, tmp_path):
        from repro.harness.experiment import run_experiment
        from repro.harness.io import result_to_cache_dict

        config = ExperimentConfig(workload="mixB", **FAST)
        service = ExperimentService(
            disk_cache=DiskCache(tmp_path),
            settings=ServiceSettings(batch_window_s=0.005),
        ).start()
        ticket = service.execute(config, timeout=120)
        assert ticket.tier == "simulated"
        direct = run_experiment(config)
        served = result_to_cache_dict(ticket.result)
        expected = result_to_cache_dict(direct)
        # Wall time is machine-dependent; everything else is
        # deterministic and must match exactly.
        served.pop("wall_time_s")
        expected.pop("wall_time_s")
        assert served == expected
        assert service.drain(timeout=10)


# ----------------------------------------------------------------------
# API versioning: /v1/ is canonical, unversioned paths are aliases
# ----------------------------------------------------------------------
class TestApiVersioning:
    GET_PATHS = ("/healthz", "/healthz/live", "/healthz/ready",
                 "/stats", "/metrics")

    def test_aliases_answer_like_v1(self, http_server):
        base, _, _ = http_server
        for path in self.GET_PATHS:
            s_v1, _, b_v1 = http_request(base + "/v1" + path)
            s_old, _, b_old = http_request(base + path)
            # Bodies can carry time-varying values (heartbeat ages);
            # the alias contract is same status and same shape.
            assert s_old == s_v1, path
            assert sorted(b_old) == sorted(b_v1), path

    def test_alias_carries_deprecation_and_successor_link(self, http_server):
        base, _, _ = http_server
        for path in self.GET_PATHS:
            _, h_old, _ = http_request(base + path)
            assert h_old.get("Deprecation") == "true", path
            link = h_old.get("Link", "")
            assert f"</v1{path}>" in link and "successor-version" in link, path
            _, h_v1, _ = http_request(base + "/v1" + path)
            assert "Deprecation" not in h_v1, path

    def test_post_run_alias(self, http_server):
        base, _, _ = http_server
        s_v1, h_v1, b_v1 = http_request(base + "/v1/run", CONFIG_BODY)
        s_old, h_old, b_old = http_request(base + "/run", CONFIG_BODY)
        assert (s_v1, s_old) == (200, 200)
        assert b_old["key"] == b_v1["key"]
        assert b_old["result"] == b_v1["result"]
        assert h_old.get("Deprecation") == "true"
        assert "Deprecation" not in h_v1

    def test_unknown_paths_404_without_deprecation(self, http_server):
        base, _, _ = http_server
        status, headers, _ = http_request(base + "/nope")
        assert status == 404
        assert "Deprecation" not in headers
        assert http_request(base + "/v1/nope")[0] == 404


# ----------------------------------------------------------------------
# ServeClient SDK
# ----------------------------------------------------------------------
@pytest.fixture()
def scripted_server():
    """Factory for a stub HTTP server that replays a canned script.

    ``start(script)`` takes a list of ``(status, headers, body)``
    tuples, serves them in order to whatever requests arrive, and
    returns ``(base_url, calls)`` where ``calls`` records request
    paths.  Lets the client's retry/error logic be tested without a
    real service behind it.
    """
    import http.server

    servers = []

    def start(script):
        script = list(script)
        calls = []

        class Handler(http.server.BaseHTTPRequestHandler):
            def _serve(self):
                length = int(self.headers.get("Content-Length") or 0)
                if length:
                    self.rfile.read(length)
                calls.append(self.path)
                status, headers, body = script.pop(0)
                data = json.dumps(body).encode()
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            do_GET = do_POST = _serve

            def log_message(self, *args):
                pass

        httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        servers.append((httpd, thread))
        return f"http://127.0.0.1:{httpd.server_address[1]}", calls

    yield start
    for httpd, thread in servers:
        httpd.shutdown()
        thread.join(timeout=5)
        httpd.server_close()


def run_payload(config):
    """A valid 200 body for ``/v1/run`` built from :func:`fake_result`."""
    from repro.harness.io import result_to_cache_dict

    return {
        "key": config.cache_key(),
        "tier": "simulated",
        "result": result_to_cache_dict(fake_result(config)),
        "summary": "summary-text",
    }


class TestServeClient:
    def test_run_round_trip_against_real_server(self, cfg, http_server):
        from repro.harness.io import result_to_cache_dict
        from repro.serve import ServeClient

        base, _, _ = http_server
        client = ServeClient(base, timeout_s=20.0)
        result = client.run(cfg)
        assert result_to_cache_dict(result) == result_to_cache_dict(
            fake_result(cfg)
        )
        outcome = client.run_detailed(cfg)
        assert outcome.tier == "memory"
        assert outcome.key == cfg.cache_key()
        assert outcome.summary.startswith("mixB on ")
        assert client.stats()["queue_limit"] == 2
        assert client.healthz()["status"] == "healthy"
        assert "quantiles" in client.metrics()

    def test_retry_on_429_honors_retry_after(self, cfg, scripted_server):
        from repro.serve import ServeClient

        base, calls = scripted_server([
            (429, {"Retry-After": "0.123"}, {"error": {"kind": "rejected"}}),
            (429, {}, {"error": {"kind": "rejected"}}),
            (200, {}, run_payload(cfg)),
        ])
        sleeps = []
        client = ServeClient(base, timeout_s=5.0, max_retries=3,
                             sleep=sleeps.append)
        outcome = client.run_detailed(cfg)
        assert outcome.key == cfg.cache_key()
        assert calls == ["/v1/run"] * 3
        # First delay is the server's hint; second falls back to the
        # small default because no Retry-After was sent.
        assert sleeps == [0.123, 0.05]

    def test_retry_after_is_capped(self, cfg, scripted_server):
        from repro.serve import ServeClient

        base, _ = scripted_server([
            (429, {"Retry-After": "3600"}, {"error": {"kind": "rejected"}}),
            (200, {}, run_payload(cfg)),
        ])
        sleeps = []
        client = ServeClient(base, timeout_s=5.0, retry_cap_s=0.2,
                             sleep=sleeps.append)
        client.run(cfg)
        assert sleeps == [0.2]

    def test_429_exhausts_retries(self, cfg, scripted_server):
        from repro.serve import ServeClient, ServeRejectedError

        reject = (429, {"Retry-After": "0.01"}, {"error": {"kind": "rejected"}})
        base, calls = scripted_server([reject] * 3)
        client = ServeClient(base, timeout_s=5.0, max_retries=2,
                             sleep=lambda _s: None)
        with pytest.raises(ServeRejectedError) as err:
            client.run(cfg)
        assert err.value.status == 429
        assert err.value.retry_after_s == 0.01
        assert len(calls) == 3  # initial attempt + 2 retries

    def test_503_is_not_retried(self, cfg, scripted_server):
        from repro.serve import ServeClient, ServeRejectedError

        base, calls = scripted_server([
            (503, {}, {"error": {"kind": "rejected", "message": "draining"}}),
        ])
        sleeps = []
        client = ServeClient(base, timeout_s=5.0, max_retries=5,
                             sleep=sleeps.append)
        with pytest.raises(ServeRejectedError) as err:
            client.run(cfg)
        assert err.value.status == 503
        assert sleeps == [] and len(calls) == 1

    def test_error_mapping(self, cfg, scripted_server):
        from repro.serve import (
            ServeBadRequestError,
            ServeClient,
            ServeSimulationError,
            ServeTimeoutError,
        )

        cases = [
            (400, {}, {"error": {"message": "bad config"}},
             ServeBadRequestError),
            (504, {}, {"error": {"message": "deadline"}}, ServeTimeoutError),
            (500, {}, {"error": {"kind": "crash", "message": "boom",
                                 "attempts": 2}}, ServeSimulationError),
        ]
        for status, headers, body, exc_type in cases:
            base, _ = scripted_server([(status, headers, body)])
            client = ServeClient(base, timeout_s=5.0)
            with pytest.raises(exc_type) as err:
                client.run(cfg)
            assert err.value.status == status
        assert err.value.kind == "crash" and err.value.attempts == 2

    def test_unreachable_server_raises_connection_error(self, cfg):
        from repro.serve import ServeClient, ServeConnectionError

        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        client = ServeClient(f"http://127.0.0.1:{port}", timeout_s=2.0)
        with pytest.raises(ServeConnectionError):
            client.run(cfg)

    def test_malformed_result_payload_raises(self, cfg, scripted_server):
        from repro.serve import ServeClient, ServeError

        base, _ = scripted_server([
            (200, {}, {"key": "k", "tier": "simulated", "result": {"x": 1}}),
        ])
        client = ServeClient(base, timeout_s=5.0)
        with pytest.raises(ServeError, match="malformed run response"):
            client.run(cfg)

    def test_healthz_returns_body_even_when_unhealthy(self, scripted_server):
        from repro.serve import ServeClient

        base, _ = scripted_server([
            (503, {}, {"status": "draining", "live": True, "ready": False}),
        ])
        client = ServeClient(base, timeout_s=5.0)
        assert client.healthz()["status"] == "draining"
