"""Public-API docstring coverage.

Every name exported through ``repro/__init__.py`` or a subpackage
``__all__`` is part of the supported surface, so it must carry a
docstring — as must the public methods and properties of every exported
class. CI runs this file with the rest of the unit suite, so an
undocumented export fails the build.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

#: The documented import surface: every package/module that declares an
#: ``__all__`` meant for users (subpackage ``__init__``s plus the
#: top-level helper modules).
PUBLIC_MODULES = (
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.dram",
    "repro.faults",
    "repro.harness",
    "repro.network",
    "repro.obs",
    "repro.perf",
    "repro.power",
    "repro.serve",
    "repro.sim",
    "repro.store",
    "repro.validation",
    "repro.workloads",
    "repro.registry",
    "repro.units",
    "repro.cli",
)


def _public_members(cls: type):
    """Public methods/properties defined directly on ``cls`` (no dunders,
    no inherited members, no dataclass-generated fields)."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        fn = member
        if isinstance(fn, property):
            fn = fn.fget
        if isinstance(fn, (classmethod, staticmethod)):
            fn = fn.__func__
        if inspect.isfunction(fn):
            yield name, fn


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_module_has_docstring_and_all(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and mod.__doc__.strip(), f"{modname} has no docstring"
    assert getattr(mod, "__all__", None), f"{modname} declares no __all__"


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_exports_resolve_and_are_documented(modname):
    mod = importlib.import_module(modname)
    missing = []
    for name in mod.__all__:
        if name == "__version__":
            continue
        assert hasattr(mod, name), f"{modname}.__all__ lists unresolvable {name!r}"
        obj = getattr(mod, name)
        # Constants and pre-built instances (WORKLOAD_NAMES,
        # DEFAULT_POWER_MODEL, ...) carry their documentation on the
        # defining class or module instead.
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if not getattr(obj, "__module__", "").startswith("repro"):
            continue
        if not inspect.getdoc(obj):
            missing.append(f"{modname}.{name}")
    assert not missing, f"exported names without docstrings: {missing}"


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_exported_class_members_are_documented(modname):
    mod = importlib.import_module(modname)
    missing = []
    for name in mod.__all__:
        obj = getattr(mod, name, None)
        if not inspect.isclass(obj):
            continue
        if not getattr(obj, "__module__", "").startswith("repro"):
            continue
        for mname, fn in _public_members(obj):
            if not inspect.getdoc(fn):
                missing.append(f"{modname}.{name}.{mname}")
    assert not missing, f"public members without docstrings: {missing}"
