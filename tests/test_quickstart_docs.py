"""Executable documentation: the README quickstart snippet works."""

import pytest

from repro import ExperimentConfig, run_experiment


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        # Mirrors README.md's quickstart (scaled down for test speed).
        base = ExperimentConfig(
            workload="mixB", topology="star", scale="small",
            window_ns=60_000.0, epoch_ns=15_000.0,
        )
        full_power = run_experiment(base)
        managed = run_experiment(
            base.replace(mechanism="VWL+ROO", policy="aware", alpha=0.05)
        )
        assert managed.power_per_hmc_w < full_power.power_per_hmc_w
        assert managed.breakdown.watts["idle_io"] < full_power.breakdown.watts["idle_io"]
        cost = 1 - managed.throughput_per_s / full_power.throughput_per_s
        assert cost < 0.15

    def test_package_docstring_example_fields(self):
        import repro

        assert "ExperimentConfig" in repro.__doc__
        assert repro.__version__
