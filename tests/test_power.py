"""Unit tests for the HMC power model and energy accounting."""

import pytest

from repro.network.topology import Radix
from repro.power import (
    DEFAULT_POWER_MODEL,
    EnergyLedger,
    HmcPowerModel,
    PowerBreakdown,
)


class TestHmcPowerModel:
    def test_high_radix_peak(self):
        # Pugsley et al.: 13.4 W peak at 12.5 Gbps lanes.
        assert DEFAULT_POWER_MODEL.peak_w(Radix.HIGH) == pytest.approx(13.4)

    def test_low_radix_is_half_peak(self):
        assert DEFAULT_POWER_MODEL.peak_w(Radix.LOW) == pytest.approx(6.7)

    def test_breakdown_fractions(self):
        m = DEFAULT_POWER_MODEL
        assert m.dram_peak_w(Radix.HIGH) == pytest.approx(13.4 * 0.43)
        assert m.logic_peak_w(Radix.HIGH) == pytest.approx(13.4 * 0.22)
        assert m.io_peak_w(Radix.HIGH) == pytest.approx(13.4 * 0.35)

    def test_idle_fractions(self):
        m = DEFAULT_POWER_MODEL
        # DRAM idles at 10 % of its peak, logic at 25 %.
        assert m.dram_leakage_w(Radix.HIGH) == pytest.approx(13.4 * 0.43 * 0.10)
        assert m.logic_leakage_w(Radix.HIGH) == pytest.approx(13.4 * 0.22 * 0.25)

    def test_link_endpoint_power_radix_independent(self):
        m = DEFAULT_POWER_MODEL
        high = m.link_endpoint_w(Radix.HIGH)
        low = m.link_endpoint_w(Radix.LOW)
        assert high == pytest.approx(low)
        # 13.4 * 0.35 / 8 endpoints = 0.586 W.
        assert high == pytest.approx(0.58625)

    def test_peak_io_consistency(self):
        # All endpoints at full power reconstruct the module's I/O peak.
        m = DEFAULT_POWER_MODEL
        for radix in (Radix.HIGH, Radix.LOW):
            total = m.link_endpoint_w(radix) * radix.full_links * 2
            assert total == pytest.approx(m.io_peak_w(radix))

    def test_dram_energy_per_access_radix_independent(self):
        m = DEFAULT_POWER_MODEL
        assert m.dram_energy_per_access_j(Radix.HIGH) == pytest.approx(
            m.dram_energy_per_access_j(Radix.LOW)
        )
        # ~1.3 nJ per 64 B access with the default parameters.
        assert m.dram_energy_per_access_j(Radix.HIGH) == pytest.approx(
            1.297e-9, rel=1e-2
        )

    def test_logic_energy_per_flit_radix_independent(self):
        m = DEFAULT_POWER_MODEL
        assert m.logic_energy_per_flit_j(Radix.HIGH) == pytest.approx(
            m.logic_energy_per_flit_j(Radix.LOW)
        )

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            HmcPowerModel(dram_fraction=0.5, logic_fraction=0.5, io_fraction=0.5)


class TestEnergyLedger:
    def test_totals(self):
        ledger = EnergyLedger(
            idle_io_j=1.0,
            active_io_j=2.0,
            logic_leak_j=0.5,
            logic_dyn_j=0.25,
            dram_leak_j=0.125,
            dram_dyn_j=0.0625,
        )
        assert ledger.io_j == pytest.approx(3.0)
        assert ledger.total_j == pytest.approx(3.9375)

    def test_add_accumulates(self):
        a = EnergyLedger(idle_io_j=1.0)
        b = EnergyLedger(idle_io_j=2.0, dram_dyn_j=3.0)
        a.add(b)
        assert a.idle_io_j == 3.0
        assert a.dram_dyn_j == 3.0


class TestPowerBreakdown:
    def test_from_ledgers_averages_per_module(self):
        ledgers = [EnergyLedger(idle_io_j=2.0), EnergyLedger(idle_io_j=4.0)]
        # 6 J over 2 modules and 1 second -> 3 W per module.
        bd = PowerBreakdown.from_ledgers(ledgers, window_ns=1e9, num_modules=2)
        assert bd.watts["idle_io"] == pytest.approx(3.0)
        assert bd.total_w == pytest.approx(3.0)

    def test_idle_io_fraction(self):
        bd = PowerBreakdown(watts={
            "idle_io": 1.0, "active_io": 0.5, "logic_leak": 0.25,
            "logic_dyn": 0.0, "dram_leak": 0.25, "dram_dyn": 0.0,
        })
        assert bd.idle_io_fraction == pytest.approx(0.5)
        assert bd.io_fraction == pytest.approx(0.75)

    def test_row_order_matches_categories(self):
        bd = PowerBreakdown.from_ledgers([EnergyLedger()], 1e6, 1)
        assert len(bd.as_row()) == len(PowerBreakdown.categories()) == 6

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            PowerBreakdown.from_ledgers([], 0.0, 1)

    def test_zero_modules_rejected(self):
        with pytest.raises(ValueError):
            PowerBreakdown.from_ledgers([], 1e6, 0)
