"""Self-healing serve layer tests: circuit-breaker state transitions,
supervisor restarts (hung dispatcher, restart budget, deterministic
backoff), analytical graceful degradation (byte-stable JSON, exact
breakdown match, cache isolation), and the satellite hardening
(socket-timeout validation, LRU stat windows)."""

import json
import threading

import pytest

from repro.analysis.power_model import predict_full_power_breakdown
from repro.harness.experiment import ExperimentConfig
from repro.network.topology import build_topology
from repro.obs.metrics import MetricsRegistry, StateGauge
from repro.serve import (
    BreakerBoard,
    BreakerOpenError,
    CircuitBreaker,
    ExperimentService,
    LruResultCache,
    ServiceSettings,
    Supervisor,
    backoff_delay,
    config_family,
    degraded_json,
    make_degraded_result,
)
from tests.test_serve import FAST, GateExecutor, fake_result

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def cfg():
    return ExperimentConfig(workload="mixB", **FAST)


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_closed_to_open_after_threshold(self, clock):
        b = CircuitBreaker("daisychain/FP", threshold=3, cooldown_s=10,
                           clock=clock)
        for _ in range(2):
            b.on_result(failed=True)
            assert b.state == "closed"
        b.on_result(failed=True)
        assert b.state == "open" and b.trips == 1
        decision = b.admit()
        assert not decision.allowed and decision.remaining_s > 0

    def test_success_resets_consecutive_count(self, clock):
        b = CircuitBreaker("f", threshold=2, cooldown_s=10, clock=clock)
        b.on_result(failed=True)
        b.on_result(failed=False)
        b.on_result(failed=True)
        assert b.state == "closed"  # never two *consecutive* failures

    def test_open_half_open_closed_cycle(self, clock):
        b = CircuitBreaker("f", threshold=1, cooldown_s=10, clock=clock)
        b.on_result(failed=True)
        assert b.state == "open"
        clock.advance(9.9)
        assert not b.admit().allowed
        clock.advance(0.2)  # past cooldown
        probe = b.admit()
        assert probe.allowed and probe.probe
        assert b.state == "half_open"
        # Only one probe is admitted while half-open.
        assert not b.admit().allowed
        b.on_result(failed=False, probe=True)
        assert b.state == "closed" and b.recoveries == 1
        assert b.admit().allowed and not b.admit().probe

    def test_half_open_re_trip(self, clock):
        b = CircuitBreaker("f", threshold=1, cooldown_s=10, clock=clock)
        b.on_result(failed=True)
        clock.advance(10.1)
        assert b.admit().probe
        b.on_result(failed=True, probe=True)
        assert b.state == "open" and b.trips == 2
        # A fresh cooldown applies from the re-trip.
        clock.advance(5.0)
        assert not b.admit().allowed
        clock.advance(5.2)
        assert b.admit().probe

    def test_abandoned_probe_frees_the_slot(self, clock):
        b = CircuitBreaker("f", threshold=1, cooldown_s=1, clock=clock)
        b.on_result(failed=True)
        clock.advance(1.1)
        assert b.admit().probe
        b.abandon_probe()
        assert b.admit().probe  # slot reopened, no outcome recorded

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker("f", threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker("f", cooldown_s=0, clock=clock)


class TestBreakerBoard:
    def test_families_are_independent(self, clock):
        board = BreakerBoard(threshold=1, cooldown_s=10, clock=clock)
        board.on_result("daisychain/FP", failed=True)
        assert not board.admit("daisychain/FP").allowed
        assert board.admit("star/VWL").allowed
        assert board.open_families() == ["daisychain/FP"]

    def test_threshold_zero_disables(self, clock):
        board = BreakerBoard(threshold=0, cooldown_s=10, clock=clock)
        for _ in range(50):
            board.on_result("daisychain/FP", failed=True)
        assert board.admit("daisychain/FP").allowed
        assert not board.enabled

    def test_metrics_published(self, clock):
        reg = MetricsRegistry()
        board = BreakerBoard(threshold=1, cooldown_s=10, registry=reg,
                             clock=clock)
        board.on_result("daisychain/FP", failed=True)
        board.admit("daisychain/FP")
        assert reg.counter("serve.breaker.trips").value == 1
        assert reg.counter("serve.breaker.short_circuits").value == 1
        assert reg.gauge("serve.breaker.open").value == 1.0
        gauge = reg.state_gauge(
            "serve.breaker.state.daisychain/FP",
            ("closed", "open", "half_open"),
        )
        assert gauge.state == "open"

    def test_config_family(self, cfg):
        assert config_family(cfg) == f"{cfg.topology}/{cfg.mechanism}"


# ----------------------------------------------------------------------
# Deterministic backoff + supervisor
# ----------------------------------------------------------------------
class TestBackoffDeterminism:
    def test_same_inputs_same_delay(self):
        a = backoff_delay(3, base_s=0.1, cap_s=30, jitter_s=1.0, seed=42,
                          name="dispatcher")
        b = backoff_delay(3, base_s=0.1, cap_s=30, jitter_s=1.0, seed=42,
                          name="dispatcher")
        assert a == b

    def test_jitter_varies_with_seed_and_attempt(self):
        base = dict(base_s=0.1, cap_s=30, jitter_s=1.0, name="dispatcher")
        assert backoff_delay(1, seed=1, **base) != backoff_delay(1, seed=2, **base)
        assert backoff_delay(1, seed=1, **base) != backoff_delay(2, seed=1, **base)

    def test_exponential_and_capped(self):
        delays = [backoff_delay(k, base_s=1.0, cap_s=8.0) for k in range(1, 7)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]
        with pytest.raises(ValueError):
            backoff_delay(0)

    def test_jitter_bounded(self):
        for attempt in range(1, 20):
            d = backoff_delay(attempt, base_s=0.0, cap_s=0.0, jitter_s=0.5,
                              seed=7, name="x")
            assert 0.0 <= d < 0.5


class TestSupervisor:
    def make(self, clock, **kw):
        kw.setdefault("heartbeat_s", 1.0)
        kw.setdefault("stale_after_s", 5.0)
        kw.setdefault("jitter_s", 0.0)
        kw.setdefault("backoff_base_s", 0.0)
        return Supervisor(clock=clock, **kw)

    def test_restarts_dead_component(self, clock):
        sup = self.make(clock)
        alive = {"up": True}
        restarts = []

        def restart():
            restarts.append(clock())
            alive["up"] = True

        sup.register("dispatcher", alive=lambda: alive["up"], restart=restart)
        assert sup.check_now() == []
        alive["up"] = False
        assert sup.check_now() == ["dispatcher"]
        assert restarts and sup.state == "degraded"

    def test_stale_component_restarted_only_when_armed(self, clock):
        sup = self.make(clock)
        sup.register("executor", alive=lambda: True, restart=lambda: None,
                     armed=lambda: False)
        clock.advance(100.0)
        assert sup.check_now() == []  # silent but disarmed: fine
        sup.register("executor", alive=lambda: True, restart=lambda: None,
                     armed=lambda: True)
        clock.advance(100.0)
        assert sup.check_now() == ["executor"]

    def test_restart_budget_exhaustion_goes_unhealthy(self, clock):
        sup = self.make(clock, max_restarts=2)
        sup.register("d", alive=lambda: False, restart=lambda: None)
        for _ in range(2):
            assert sup.check_now() == ["d"]
            clock.advance(0.1)
        assert sup.check_now() == []
        assert sup.state == "unhealthy"
        assert not sup.live and not sup.ready
        assert "restart budget" in sup.snapshot()["reason"]

    def test_raising_restart_goes_unhealthy(self, clock):
        sup = self.make(clock)

        def broken_restart():
            raise RuntimeError("cannot revive")

        sup.register("d", alive=lambda: False, restart=broken_restart)
        sup.check_now()
        assert sup.state == "unhealthy"

    def test_backoff_paces_consecutive_restarts(self, clock):
        sup = self.make(clock, backoff_base_s=2.0)
        sup.register("d", alive=lambda: False, restart=lambda: None)
        assert sup.check_now() == ["d"]
        assert sup.check_now() == []  # inside the 2 s backoff window
        clock.advance(2.1)
        assert sup.check_now() == ["d"]

    def test_degraded_decays_back_to_healthy(self, clock):
        sup = self.make(clock, degraded_hold_s=10.0)
        sup.note_degraded("pool_rebuild")
        assert sup.state == "degraded"
        assert sup.live and sup.ready
        clock.advance(10.1)
        assert sup.state == "healthy"

    def test_draining_and_context_probes(self, clock):
        sup = self.make(clock)
        sup.add_context(lambda: "breaker_open:daisychain/FP")
        assert sup.state == "degraded"
        sup.set_draining(True)
        assert sup.state == "draining"
        assert sup.live and not sup.ready
        sup.set_draining(False)
        assert sup.state == "degraded"
        assert sup.snapshot()["reason"].startswith("breaker_open")


class TestStateGauge:
    def test_states_and_values(self):
        g = StateGauge("s", ("healthy", "degraded"))
        assert (g.state, g.value) == ("healthy", 0.0)
        g.set_state("degraded")
        assert g.value == 1.0
        with pytest.raises(ValueError):
            g.set_state("nope")
        assert g.as_dict()["states"] == ["healthy", "degraded"]

    def test_registry_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.state_gauge("x", ("a", "b"))
        assert reg.state_gauge("x", ("a", "b")) is a
        assert "x" in reg.as_dict()["states"]


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestDegradedResponses:
    def test_json_is_byte_stable(self, cfg):
        a = degraded_json(make_degraded_result(cfg, "k1", "queue_full"))
        b = degraded_json(make_degraded_result(cfg, "k1", "queue_full"))
        assert a == b
        body = json.loads(a)
        assert body["approximate"] is True
        assert body["degraded_reason"] == "queue_full"
        assert body["tier"] == "degraded"
        assert body["tolerance"]["relative"] == 1e-6
        assert body["tolerance"]["logic_dyn_ratio_bounds"] == [0.10, 1.05]

    def test_breakdown_matches_closed_form_exactly(self, cfg):
        degraded = make_degraded_result(cfg, "k1", "breaker_open")
        topology = build_topology(cfg.topology, degraded.result.num_modules)
        assert degraded.result.breakdown.watts == predict_full_power_breakdown(
            topology, 0.0, 0.0
        )

    def test_unknown_reason_rejected(self, cfg):
        with pytest.raises(ValueError):
            make_degraded_result(cfg, "k1", "because")


def make_service(tmp_path=None, executor=None, registry=None, breakers=None,
                 supervisor=None, **settings):
    from repro.harness.diskcache import DiskCache

    settings.setdefault("batch_window_s", 0.005)
    settings.setdefault("heartbeat_s", 0.0)  # no supervisor thread in tests
    return ExperimentService(
        executor=executor or GateExecutor(),
        disk_cache=DiskCache(tmp_path) if tmp_path is not None else None,
        settings=ServiceSettings(**settings),
        registry=registry,
        breakers=breakers,
        supervisor=supervisor,
    ).start()


class TestServiceDegradation:
    def test_queue_full_answers_analytically_not_429(self, cfg, tmp_path):
        executor = GateExecutor(hold=True)
        service = make_service(tmp_path=tmp_path, executor=executor,
                               queue_limit=1, degrade="analytical")
        blocker = service.submit(cfg.replace(seed=1))
        overflow_cfg = cfg.replace(seed=2)
        ticket = service.submit(overflow_cfg)  # would be 429 with degrade=off
        assert ticket.done and ticket.degraded is not None
        assert ticket.tier == "degraded"
        assert ticket.degraded.reason == "queue_full"
        assert ticket.rejection is None
        # Never written to any cache tier.
        assert service.disk_cache.get(overflow_cfg) is None
        stats = service.stats()
        assert stats["degraded"]["queue_full"] == 1
        assert stats["rejected_queue_full"] == 0
        executor.gate.set()
        assert blocker.wait(10)
        assert service.drain(timeout=10)
        # Only the simulated blocker landed in the memory tier.
        assert service.memory.stats()["inserts"] == 1
        assert service.memory.get(overflow_cfg.cache_key()) is None

    def test_queue_full_still_rejects_with_degrade_off(self, cfg):
        from repro.serve import QueueFullError

        executor = GateExecutor(hold=True)
        service = make_service(executor=executor, queue_limit=1)
        service.submit(cfg.replace(seed=1))
        with pytest.raises(QueueFullError):
            service.submit(cfg.replace(seed=2))
        executor.gate.set()
        assert service.drain(timeout=10)

    def test_breaker_trips_and_recovers_through_service(self, cfg, clock):
        reg = MetricsRegistry()
        board = BreakerBoard(threshold=2, cooldown_s=5.0, registry=reg,
                             clock=clock)
        executor = GateExecutor(fail=True)
        service = make_service(executor=executor, registry=reg, breakers=board,
                               degrade="analytical")
        family = config_family(cfg)
        # Two structured failures trip the family's breaker.
        for seed in (1, 2):
            ticket = service.execute(cfg.replace(seed=seed), timeout=10)
            assert ticket.failure is not None
        assert board.snapshot()["families"][family]["state"] == "open"
        # Open: short-circuited to the analytical model, not simulated.
        before = executor.simulated
        ticket = service.execute(cfg.replace(seed=3), timeout=10)
        assert ticket.degraded is not None
        assert ticket.degraded.reason == "breaker_open"
        assert executor.simulated == before
        # Half-open probe fails: re-trip.
        clock.advance(5.1)
        ticket = service.execute(cfg.replace(seed=4), timeout=10)
        assert ticket.failure is not None  # the probe really simulated
        assert board.snapshot()["families"][family]["state"] == "open"
        # Half-open probe succeeds: breaker closes, family recovers.
        executor.fail = False
        clock.advance(5.1)
        ticket = service.execute(cfg.replace(seed=5), timeout=10)
        assert ticket.result is not None
        assert board.snapshot()["families"][family]["state"] == "closed"
        ticket = service.execute(cfg.replace(seed=6), timeout=10)
        assert ticket.tier == "simulated"
        assert service.drain(timeout=10)

    def test_open_breaker_rejects_503_with_degrade_off(self, cfg, clock):
        board = BreakerBoard(threshold=1, cooldown_s=30.0, clock=clock)
        executor = GateExecutor(fail=True)
        service = make_service(executor=executor, breakers=board)
        ticket = service.execute(cfg.replace(seed=1), timeout=10)
        assert ticket.failure is not None
        with pytest.raises(BreakerOpenError) as exc_info:
            service.submit(cfg.replace(seed=2))
        assert exc_info.value.http_status == 503
        assert exc_info.value.retry_after_s >= 1.0
        assert service.stats()["rejected_breaker_open"] == 1
        assert service.drain(timeout=10)

    def test_cache_hits_bypass_an_open_breaker(self, cfg, clock):
        board = BreakerBoard(threshold=1, cooldown_s=30.0, clock=clock)
        service = make_service(breakers=board)
        hot = cfg.replace(seed=1)
        service.memory.put(hot.cache_key(), fake_result(hot))
        board.on_result(config_family(cfg), failed=True)  # trip the family
        ticket = service.submit(hot)
        assert ticket.tier == "memory" and ticket.result is not None
        assert service.drain(timeout=10)


class TestSupervisedService:
    def test_hung_dispatcher_restarted_without_dropping_requests(self, cfg, clock):
        sup = Supervisor(heartbeat_s=1000.0, stale_after_s=1.0, jitter_s=0.0,
                         backoff_base_s=0.0, clock=clock)
        service = make_service(supervisor=sup)
        hang = threading.Event()
        service._test_hang = hang  # dispatcher blocks at its next loop top
        deadline = clock  # noqa: F841 - keep the fake clock alive
        # Wait until the dispatcher is actually wedged on the hang gate.
        for _ in range(200):
            if getattr(hang, "_cond", None) and hang._cond._waiters:
                break
            threading.Event().wait(0.01)
        ticket = service.submit(cfg)
        assert not ticket.wait(0.2)  # hung dispatcher: nothing moves
        generation = service._generation
        service._test_hang = None  # only the wedged thread stays trapped
        clock.advance(2.0)  # past stale_after_s
        assert sup.check_now() == ["dispatcher"]
        assert service._generation == generation + 1
        assert ticket.wait(10), "restarted dispatcher must finish the request"
        assert ticket.result is not None and ticket.tier == "simulated"
        assert sup.state == "degraded"  # restart leaves a degraded window
        hang.set()  # release the old thread; it exits on generation mismatch
        assert service.drain(timeout=10)

    def test_health_payload_reflects_supervisor(self, cfg, clock):
        sup = Supervisor(heartbeat_s=1000.0, stale_after_s=1.0, clock=clock)
        service = make_service(supervisor=sup)
        health = service.health()
        assert health["status"] == "healthy"
        assert health["live"] and health["ready"]
        sup.note_degraded("pool_rebuild")
        health = service.health()
        assert health["status"] == "degraded"
        assert health["live"] and health["ready"]
        service.begin_drain()
        health = service.health()
        assert health["status"] == "draining"
        assert health["live"] and not health["ready"]
        assert service.drain(timeout=10)

    def test_executor_beats_count_worker_restarts(self, cfg):
        reg = MetricsRegistry()
        service = make_service(registry=reg)
        service._executor_beat("pool_rebuild")
        service._executor_beat("worker_restart")
        assert reg.counter("serve.supervisor.worker_restarts").value == 2
        assert service.drain(timeout=10)


# ----------------------------------------------------------------------
# Lock ordering between the service condition and the supervisor lock
# ----------------------------------------------------------------------
class TestLockOrdering:
    def test_queue_full_degraded_short_circuit_drops_service_lock(self, cfg):
        """Regression: the queue-full path used to call _short_circuit
        while holding the service condition; note_degraded then took the
        supervisor lock, ABBA-deadlocking against check_now() holding
        the supervisor lock while _restart_dispatcher takes the
        condition."""
        holder = {}
        seen = []

        class CondCheckingSupervisor(Supervisor):
            def note_degraded(self, reason):
                assert not holder["service"]._cond._is_owned(), (
                    "note_degraded must not run while the calling thread "
                    "holds the service condition"
                )
                seen.append(reason)
                super().note_degraded(reason)

        sup = CondCheckingSupervisor(heartbeat_s=1000.0)
        executor = GateExecutor(hold=True)
        service = make_service(executor=executor, supervisor=sup,
                               queue_limit=1, degrade="analytical")
        holder["service"] = service
        blocker = service.submit(cfg.replace(seed=1))
        ticket = service.submit(cfg.replace(seed=2))  # saturates the queue
        assert ticket.degraded is not None and ticket.tier == "degraded"
        assert seen == ["queue_full"]
        executor.gate.set()
        assert blocker.wait(10)
        assert service.drain(timeout=10)

    def test_restart_callbacks_run_without_supervisor_lock(self, clock):
        """check_now must invoke restart callbacks after dropping its
        lock: restarts reach into the service condition, which other
        threads hold while calling beat()/note_degraded()."""
        sup = Supervisor(heartbeat_s=1.0, stale_after_s=5.0, jitter_s=0.0,
                         backoff_base_s=0.0, clock=clock)
        ran = []

        def restart():
            assert not sup._lock._is_owned(), (
                "restart callbacks must run outside the supervisor lock"
            )
            sup.beat("d")  # what a restarted component's threads do
            ran.append(True)

        sup.register("d", alive=lambda: False, restart=restart)
        assert sup.check_now() == ["d"]
        assert ran == [True]
        assert sup.state == "degraded"


class RacingJournal:
    """Journal stub whose failure record fires a dispatcher restart,
    landing exactly in _finish_simulated's unlocked window."""

    def __init__(self, service=None, executor=None):
        self.service = service
        self.executor = executor
        self.fire = True
        self.records_written = 0
        self.path = "racing-journal"

    def record_failed(self, key, outcome):
        if self.fire:
            self.fire = False
            self.executor.fail = False  # the retry will succeed
            self.service._restart_dispatcher()

    def record_done(self, key, outcome):
        self.records_written += 1

    def close(self):
        pass


class TestSupersededGeneration:
    def test_superseded_failure_does_not_stick_to_requeued_ticket(self, cfg):
        """Regression: a failure reported by a superseded dispatcher
        generation must not mutate a ticket the restart re-queued --
        the stale FailedResult would win over the retry's success and
        the waiter would see a 500 for a simulation that passed."""
        from repro.serve.http import _ticket_payload

        executor = GateExecutor(fail=True)
        journal = RacingJournal(executor=executor)
        service = ExperimentService(
            executor=executor,
            settings=ServiceSettings(batch_window_s=0.0, heartbeat_s=0.0),
            journal=journal,
        ).start()
        journal.service = service
        ticket = service.submit(cfg)
        assert ticket.wait(10), "re-queued ticket must resolve"
        assert ticket.failure is None, (
            "stale generation's failure leaked onto the retried ticket"
        )
        assert ticket.result is not None and ticket.tier == "simulated"
        status, _ = _ticket_payload(ticket)
        assert status == 200
        assert executor.simulated == 2  # failed once, retried once
        assert service.registry.counter("serve.failed").value == 0
        assert service.drain(timeout=10)


# ----------------------------------------------------------------------
# Satellites: settings validation + LRU stat windows
# ----------------------------------------------------------------------
class TestServiceSettingsValidation:
    def test_socket_timeout_is_independent_of_request_deadline(self):
        # The socket timeout only bounds the idle read for the *next*
        # keep-alive request -- handlers wait on tickets, not the
        # socket -- so a value below request_timeout_s is fine.
        short = ServiceSettings(request_timeout_s=600.0, socket_timeout_s=5.0)
        assert short.effective_socket_timeout_s == 5.0
        long = ServiceSettings(request_timeout_s=600.0, socket_timeout_s=700.0)
        assert long.effective_socket_timeout_s == 700.0

    def test_default_socket_timeout_is_short_idle_read(self):
        # A long request budget must not pin dead keep-alive
        # connections (and their handler threads) for minutes.
        assert ServiceSettings().effective_socket_timeout_s == 30.0
        assert (
            ServiceSettings(request_timeout_s=5.0).effective_socket_timeout_s
            == 30.0
        )

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            ServiceSettings(degrade="sometimes")
        with pytest.raises(ValueError):
            ServiceSettings(breaker_threshold=-1)
        with pytest.raises(ValueError):
            ServiceSettings(heartbeat_s=-1.0)
        with pytest.raises(ValueError):
            ServiceSettings(socket_timeout_s=0.0)


class TestLruStatWindows:
    def test_inserts_are_monotonic_across_reset(self, cfg):
        lru = LruResultCache(capacity=4)
        for i in range(3):
            lru.put(f"k{i}", fake_result(cfg.replace(seed=i)))
        lru.get("k0")
        lru.get("missing")
        assert lru.stats()["inserts"] == 3
        lru.reset_stats()
        stats = lru.stats()
        assert (stats["hits"], stats["misses"], stats["evictions"]) == (0, 0, 0)
        assert stats["inserts"] == 3  # survives the reset
        lru.put("k9", fake_result(cfg.replace(seed=9)))
        assert lru.stats()["inserts"] == 4

    def test_capacity_is_immutable(self):
        lru = LruResultCache(capacity=4)
        with pytest.raises(AttributeError):
            lru.capacity = 8
        assert lru.capacity == 4
