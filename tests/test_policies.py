"""Tests for the management policies (Sections V and VI)."""

import pytest

from repro.core.aware import NetworkAwarePolicy
from repro.core.mechanisms import LinkModeState, make_mechanism
from repro.core.policy import ordered_candidates, select_lowest_power_mode
from repro.core.unaware import NetworkUnawarePolicy
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.network import MemoryNetwork, build_topology
from repro.network.links import LinkDir
from repro.sim import Simulator
from repro.workloads import ClosedLoopWorkload, contiguous_mapping, get_profile

GB = 1024**3


def build_sim(workload="lu.D", topology="daisychain", mechanism="VWL", scale="small"):
    profile = get_profile(workload)
    mapping = contiguous_mapping(profile.footprint_gb, scale)
    sim = Simulator()
    topo = build_topology(topology, mapping.num_modules)
    net = MemoryNetwork(sim, topo, make_mechanism(mechanism), mapping)
    wl = ClosedLoopWorkload(net, profile, stop_ns=1e9, seed=1)
    return sim, net, wl


class TestModeSelection:
    def test_candidates_sorted_high_to_low_power(self):
        sim, net, _wl = build_sim(mechanism="VWL+ROO")
        link = net.modules[0].req_in
        net.start()
        sim.run(until=1000.0)
        cands = ordered_candidates(link, 100_000.0)
        powers = [p for _s, p, _f in cands]
        assert powers == sorted(powers, reverse=True)
        assert cands[0][0] == LinkModeState(0, 0)

    def test_restrict_roo_lowest(self):
        sim, net, _wl = build_sim(mechanism="VWL+ROO")
        link = net.modules[0].resp_out
        cands = ordered_candidates(link, 100_000.0, restrict_roo_lowest=True)
        assert len(cands) == 4  # width modes only
        assert all(s.roo_index == 3 for s, _p, _f in cands)

    def test_select_lowest_power_within_budget(self):
        cands = [
            (LinkModeState(0, None), 1.0, 0.0),
            (LinkModeState(1, None), 0.5, 100.0),
            (LinkModeState(2, None), 0.3, 500.0),
        ]
        state, flo = select_lowest_power_mode(cands, ams=200.0)
        assert state.width_index == 1 and flo == 100.0

    def test_select_falls_back_to_full_power(self):
        cands = [
            (LinkModeState(0, None), 1.0, 0.0),
            (LinkModeState(1, None), 0.5, 100.0),
        ]
        state, _flo = select_lowest_power_mode(cands, ams=-5.0)
        assert state.width_index == 0

    def test_zero_flo_always_selectable_at_zero_budget(self):
        cands = [
            (LinkModeState(0, None), 1.0, 0.0),
            (LinkModeState(3, None), 0.1, 0.0),
        ]
        state, _ = select_lowest_power_mode(cands, ams=0.0)
        assert state.width_index == 3


class TestUnawarePolicy:
    def test_idle_links_reach_lowest_mode(self):
        # Module 2 of lu.D's 3-module network is nearly cold; its links
        # should descend to narrow widths after a few epochs.
        sim, net, wl = build_sim("cg.D", mechanism="VWL", scale="big")
        policy = NetworkUnawarePolicy(net, alpha=0.05, epoch_ns=10_000.0)
        net.start()
        policy.start()
        wl.start()
        sim.run(until=100_000.0)
        cold = net.modules[-1]
        assert cold.req_in.width_idx > 0

    def test_busy_channel_link_stays_wide(self):
        sim, net, wl = build_sim("mixB", mechanism="VWL")
        policy = NetworkUnawarePolicy(net, alpha=0.025, epoch_ns=10_000.0)
        net.start()
        policy.start()
        wl.start()
        sim.run(until=100_000.0)
        # The channel response link carries ~75 % utilization: wide.
        assert net.channel_resp.width_idx <= 1

    def test_epochs_advance(self):
        sim, net, wl = build_sim()
        policy = NetworkUnawarePolicy(net, alpha=0.05, epoch_ns=10_000.0)
        net.start()
        policy.start()
        wl.start()
        sim.run(until=55_000.0)
        assert policy.epochs_run == 5

    def test_response_wake_mode_is_module(self):
        sim, net, wl = build_sim(mechanism="ROO")
        policy = NetworkUnawarePolicy(net, alpha=0.05)
        net.start()
        policy.start()
        assert net.response_wake_mode == "module"
        assert not net.aware_sleep_gating

    def test_alpha_validation(self):
        sim, net, _ = build_sim()
        with pytest.raises(ValueError):
            NetworkUnawarePolicy(net, alpha=-0.1)

    def test_violation_forces_full_power(self):
        sim, net, wl = build_sim("mixB", mechanism="VWL")
        policy = NetworkUnawarePolicy(net, alpha=0.05, epoch_ns=10_000.0)
        net.start()
        policy.start()
        wl.start()
        link = net.channel_resp
        sim.run(until=15_000.0)
        # Force an artificial tiny budget mid-epoch: next read trips it.
        link.ams = -1.0
        link.violated = False
        sim.run(until=25_000.0)
        assert policy.violations >= 1


class TestAwarePolicy:
    def run_policy(self, workload="cg.D", mechanism="VWL", alpha=0.05,
                   topology="daisychain", scale="big", until=100_000.0):
        sim, net, wl = build_sim(workload, topology, mechanism, scale)
        policy = NetworkAwarePolicy(net, alpha=alpha, epoch_ns=10_000.0)
        net.start()
        policy.start()
        wl.start()
        sim.run(until=until)
        return sim, net, wl, policy

    def test_hooks_configured(self):
        sim, net, wl = build_sim(mechanism="ROO")
        policy = NetworkAwarePolicy(net, alpha=0.05)
        net.start()
        policy.start()
        assert net.response_wake_mode == "path"
        assert net.aware_sleep_gating

    def test_monotone_power_along_chains(self):
        _sim, net, _wl, _policy = self.run_policy()
        topo = net.topology
        for direction in (LinkDir.REQUEST, LinkDir.RESPONSE):
            for m in range(topo.num_modules):
                for c in topo.children[m]:
                    up = net.modules[m].req_in if direction is LinkDir.REQUEST else net.modules[m].resp_out
                    down = net.modules[c].req_in if direction is LinkDir.REQUEST else net.modules[c].resp_out
                    if up.violated or down.violated:
                        continue
                    assert up.isp_sel.width_index <= down.isp_sel.width_index

    def test_saves_more_power_than_unaware(self):
        def network_energy(policy_cls):
            sim, net, wl = build_sim("cg.D", "daisychain", "VWL", "big")
            policy = policy_cls(net, alpha=0.05, epoch_ns=10_000.0)
            net.start()
            policy.start()
            wl.start()
            sim.run(until=150_000.0)
            net.finalize(150_000.0)
            return sum(m.ledger.total_j for m in net.modules)

        aware = network_energy(NetworkAwarePolicy)
        unaware = network_energy(NetworkUnawarePolicy)
        assert aware < unaware

    def test_roo_only_response_links_not_src(self):
        _sim, net, _wl, policy = self.run_policy(mechanism="ROO")
        assert policy._roo_only
        for m in net.modules:
            assert not m.resp_out.isp_src

    def test_roo_only_response_links_sleep_aggressively(self):
        _sim, net, _wl, _policy = self.run_policy(mechanism="ROO")
        for m in net.modules:
            sel = m.resp_out.isp_sel
            assert sel.roo_index == 3  # 32 ns threshold

    def test_grant_pool_caps_per_link(self):
        sim, net, wl, policy = self.run_policy()
        link = net.channel_resp
        policy._grant_pool = 1000.0
        policy._grant_unit = 100.0
        link.grants_used = 0
        before = link.ams
        for _ in range(NetworkAwarePolicy.MAX_GRANTS_PER_LINK):
            policy._on_violation(link)
        assert link.ams == pytest.approx(before + 400.0)
        assert not link.violated
        policy._on_violation(link)  # fifth request: denied
        assert link.violated

    def test_grant_pool_depletes(self):
        sim, net, wl, policy = self.run_policy()
        link = net.channel_resp
        link.violated = False
        link.grants_used = 0
        policy._grant_pool = 50.0
        policy._grant_unit = 100.0
        policy._on_violation(link)
        assert policy._grant_pool == 0.0
        policy._on_violation(link)
        assert link.violated


class TestEndToEnd:
    @pytest.mark.parametrize("mechanism", ["VWL", "ROO", "VWL+ROO", "DVFS"])
    def test_policies_save_power_with_bounded_degradation(self, mechanism):
        base = dict(
            workload="cg.D", topology="star", scale="big",
            window_ns=200_000.0, epoch_ns=20_000.0,
        )
        fp = run_experiment(ExperimentConfig(mechanism="FP", policy="none", **base))
        for policy in ("unaware", "aware"):
            res = run_experiment(
                ExperimentConfig(mechanism=mechanism, policy=policy, alpha=0.05, **base)
            )
            assert res.network_power_w < fp.network_power_w
            deg = 1 - res.throughput_per_s / fp.throughput_per_s
            assert deg < 0.12, f"{mechanism}/{policy} degraded {deg:.1%}"

    def test_aware_beats_unaware_on_average(self):
        base = dict(
            workload="is.D", topology="ddrx_like", scale="big",
            window_ns=200_000.0, epoch_ns=20_000.0, mechanism="VWL+ROO",
            alpha=0.05,
        )
        aware = run_experiment(ExperimentConfig(policy="aware", **base))
        unaware = run_experiment(ExperimentConfig(policy="unaware", **base))
        assert aware.network_power_w < unaware.network_power_w
