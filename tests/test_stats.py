"""Tests for streaming latency statistics."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mechanisms import make_mechanism
from repro.harness.stats import LatencyTracker, summarize
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


def make_tracker(reservoir_size=4096):
    sim = Simulator()
    topo = build_topology("daisychain", 2)
    mapping = AddressMapping(num_modules=2, granularity_bytes=4 * GB)
    net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
    net.start()
    tracker = LatencyTracker(net, reservoir_size=reservoir_size)
    return sim, net, tracker


class TestStreamingMoments:
    def test_exact_mean_and_std(self):
        _sim, _net, tracker = make_tracker()
        values = [10.0, 20.0, 30.0, 40.0]
        for v in values:
            tracker.observe(v)
        assert tracker.mean_ns == pytest.approx(25.0)
        expected_std = math.sqrt(sum((v - 25) ** 2 for v in values) / 4)
        assert tracker.std_ns == pytest.approx(expected_std)
        assert tracker.max_ns == 40.0
        assert tracker.min_ns == 10.0

    def test_empty_tracker(self):
        _sim, _net, tracker = make_tracker()
        assert tracker.mean_ns == 0.0
        assert tracker.std_ns == 0.0
        assert tracker.summary()["count"] == 0.0

    def test_single_sample(self):
        _sim, _net, tracker = make_tracker()
        tracker.observe(42.0)
        assert tracker.percentile(50) == 42.0
        assert tracker.std_ns == 0.0


class TestPercentiles:
    def test_exact_when_under_reservoir(self):
        _sim, _net, tracker = make_tracker()
        for v in range(1, 101):
            tracker.observe(float(v))
        assert tracker.percentile(0) == 1.0
        assert tracker.percentile(100) == 100.0
        assert tracker.percentile(50) == pytest.approx(50.5)

    def test_reservoir_approximation_reasonable(self):
        _sim, _net, tracker = make_tracker(reservoir_size=512)
        rng = random.Random(1)
        for _ in range(20_000):
            tracker.observe(rng.uniform(0, 1000))
        assert tracker.percentile(50) == pytest.approx(500, abs=80)
        assert tracker.percentile(95) == pytest.approx(950, abs=60)

    def test_invalid_percentile(self):
        _sim, _net, tracker = make_tracker()
        with pytest.raises(ValueError):
            tracker.percentile(101)

    def test_invalid_reservoir(self):
        with pytest.raises(ValueError):
            make_tracker(reservoir_size=0)


class TestNetworkIntegration:
    def test_tracks_read_completions(self):
        sim, net, tracker = make_tracker()
        for i in range(10):
            net.inject_read(i * 64, float(i) * 100)
        sim.run()
        assert tracker.count == 10
        assert tracker.mean_ns == pytest.approx(net.avg_read_latency_ns)
        assert tracker.max_ns == pytest.approx(net.max_read_latency_ns)

    def test_coexists_with_workload_callback(self):
        sim, net, tracker = make_tracker()
        seen = []
        net.on_read_complete = lambda pkt, now: seen.append(pkt.pkt_id)
        net.inject_read(0, 0.0)
        sim.run()
        assert len(seen) == 1 and tracker.count == 1

    def test_summary_keys(self):
        _sim, _net, tracker = make_tracker()
        tracker.observe(5.0)
        summary = tracker.summary()
        assert set(summary) == {
            "count", "mean_ns", "std_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns",
        }


class TestSummarize:
    def test_empty(self):
        assert summarize([])["count"] == 0.0

    def test_basic(self):
        s = summarize([1.0, 3.0])
        assert s["mean"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["std"] == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_streaming_mean_matches_batch(values):
    _sim, _net, tracker = make_tracker()
    for v in values:
        tracker.observe(v)
    assert tracker.mean_ns == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)
    assert tracker.max_ns == max(values)
