"""Unit tests for AMS accounting (Equation 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ams import SlowdownAccount


class TestSlowdownAccount:
    def test_no_overhead_accumulates_full_allowance(self):
        acc = SlowdownAccount()
        acc.record_epoch(fel=1000.0, ael=1000.0)
        # AMS = alpha * sum FEL - sum(AEL - FEL).
        assert acc.ams(0.05) == pytest.approx(50.0)

    def test_overhead_spends_allowance(self):
        acc = SlowdownAccount()
        acc.record_epoch(fel=1000.0, ael=1030.0)
        assert acc.ams(0.05) == pytest.approx(50.0 - 30.0)

    def test_overshoot_goes_negative(self):
        acc = SlowdownAccount()
        acc.record_epoch(fel=1000.0, ael=1100.0)
        assert acc.ams(0.05) < 0

    def test_allowance_recovers_over_epochs(self):
        acc = SlowdownAccount()
        acc.record_epoch(fel=1000.0, ael=1100.0)  # 100 over, 50 earned
        assert acc.ams(0.05) == pytest.approx(-50.0)
        acc.record_epoch(fel=1000.0, ael=1000.0)  # earn 50 more
        assert acc.ams(0.05) == pytest.approx(0.0)
        acc.record_epoch(fel=1000.0, ael=1000.0)
        assert acc.ams(0.05) == pytest.approx(50.0)

    def test_alpha_scales_budget(self):
        acc = SlowdownAccount()
        acc.record_epoch(fel=2000.0, ael=2000.0)
        assert acc.ams(0.025) == pytest.approx(50.0)
        assert acc.ams(0.05) == pytest.approx(100.0)

    def test_faster_than_full_power_earns_extra(self):
        # AEL below FEL (e.g. read priority beats the FIFO estimate)
        # credits the account, per the Equation 1 algebra.
        acc = SlowdownAccount()
        acc.record_epoch(fel=1000.0, ael=900.0)
        assert acc.ams(0.05) == pytest.approx(150.0)


@settings(max_examples=50, deadline=None)
@given(
    epochs=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6),
            st.floats(min_value=0, max_value=1e6),
        ),
        min_size=1,
        max_size=20,
    ),
    alpha=st.floats(min_value=0.0, max_value=0.5),
)
def test_equation1_closed_form(epochs, alpha):
    """The incremental account equals Equation 1's closed form."""
    acc = SlowdownAccount()
    for fel, ael in epochs:
        acc.record_epoch(fel, ael)
    total_fel = sum(f for f, _ in epochs)
    total_overhead = sum(a - f for f, a in epochs)
    assert acc.ams(alpha) == pytest.approx(
        alpha * total_fel - total_overhead, rel=1e-9, abs=1e-6
    )
