"""Integration tests: full network assembly, routing, DRAM hand-off."""

import pytest

from repro.core.mechanisms import LinkModeState, make_mechanism
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


def make_network(topology="daisychain", n=3, mechanism="FP", slice_gb=4, **kwargs):
    sim = Simulator()
    topo = build_topology(topology, n)
    mapping = AddressMapping(num_modules=n, granularity_bytes=slice_gb * GB)
    net = MemoryNetwork(sim, topo, make_mechanism(mechanism), mapping, **kwargs)
    return sim, net


class TestReadPath:
    def test_read_to_root_module_completes(self):
        sim, net = make_network()
        done = []
        net.on_read_complete = lambda pkt, now: done.append((pkt, now))
        net.start()
        net.inject_read(0x1000, 0.0)
        sim.run()
        assert len(done) == 1
        assert net.completed_reads == 1

    def test_read_latency_composition_single_hop(self):
        sim, net = make_network(n=1)
        net.start()
        net.inject_read(0, 0.0)
        sim.run()
        # req: 0.64 tx + 3.2 serdes + 2.56 router; DRAM 30;
        # resp: 3.2 tx + 3.2 serdes (no router at the processor side).
        expected = (0.64 + 3.2 + 2.56) + 30.0 + (5 * 0.64 + 3.2)
        assert net.avg_read_latency_ns == pytest.approx(expected, rel=1e-6)

    def test_deeper_modules_take_longer(self):
        sim, net = make_network(n=3)
        latencies = {}

        def complete(pkt, now):
            latencies[pkt.src] = now - pkt.issue_time

        net.on_read_complete = complete
        net.start()
        net.inject_read(0 * 4 * GB, 0.0)
        sim.run()
        net.inject_read(2 * 4 * GB, sim.now)
        sim.run()
        assert latencies[2] > latencies[0]

    def test_per_hop_latency_increment(self):
        # Each extra hop costs router + serdes + tx on both directions.
        sim, net = make_network(n=4)
        latencies = {}
        net.on_read_complete = lambda pkt, now: latencies.setdefault(
            pkt.src, now - pkt.issue_time
        )
        net.start()
        t = 0.0
        for i in range(4):
            net.inject_read(i * 4 * GB, t)
            sim.run()
            t = sim.now + 1000.0
        hop_costs = [latencies[i + 1] - latencies[i] for i in range(3)]
        assert all(c == pytest.approx(hop_costs[0], rel=1e-6) for c in hop_costs)
        req_hop = 0.64 + 3.2 + 2.56
        resp_hop = 5 * 0.64 + 3.2 + 2.56
        assert hop_costs[0] == pytest.approx(req_hop + resp_hop, rel=1e-6)


class TestWritePath:
    def test_write_completes_without_response(self):
        sim, net = make_network()
        net.start()
        net.inject_write(0x40, 0.0)
        sim.run()
        assert net.completed_writes == 1
        assert net.completed_reads == 0
        # No response packet crossed the response link.
        assert net.channel_resp.packets_tx == 0


class TestConservation:
    def test_all_injected_reads_complete(self):
        sim, net = make_network(topology="star", n=7)
        net.start()
        import random

        rng = random.Random(7)
        for i in range(200):
            addr = rng.randrange(0, 7 * 4 * GB, 64)
            net.inject_read(addr, float(i) * 3.0)
        sim.run()
        assert net.completed_reads == 200

    def test_outstanding_counters_return_to_zero(self):
        sim, net = make_network(topology="ternary_tree", n=5)
        net.start()
        for i in range(50):
            net.inject_read((i % 5) * 4 * GB, float(i))
        sim.run()
        assert all(m.outstanding_subtree_reads == 0 for m in net.modules)

    def test_mixed_traffic_conservation(self):
        sim, net = make_network(topology="ddrx_like", n=6)
        net.start()
        import random

        rng = random.Random(3)
        reads = writes = 0
        for i in range(300):
            addr = rng.randrange(0, 6 * 4 * GB, 64)
            if rng.random() < 0.7:
                net.inject_read(addr, float(i) * 2.0)
                reads += 1
            else:
                net.inject_write(addr, float(i) * 2.0)
                writes += 1
        sim.run()
        assert net.completed_reads == reads
        assert net.completed_writes == writes


class TestRouting:
    def test_traffic_only_crosses_path_links(self):
        sim, net = make_network(topology="ternary_tree", n=4)
        net.start()
        net.inject_read(1 * 4 * GB, 0.0)  # module 1, child of root
        sim.run()
        # Links to modules 2 and 3 never transmit.
        assert net.modules[2].req_in.packets_tx == 0
        assert net.modules[3].req_in.packets_tx == 0
        assert net.modules[1].req_in.packets_tx == 1
        assert net.modules[1].resp_out.packets_tx == 1

    def test_traversal_counter(self):
        sim, net = make_network(n=3)
        net.start()
        net.inject_read(2 * 4 * GB, 0.0)  # depth 3: counts 6
        net.inject_write(0, 0.0)  # depth 1: counts 1
        sim.run()
        assert net.sum_traversals == 7


class TestDramIntegration:
    def test_dram_read_counted(self):
        sim, net = make_network()
        net.start()
        net.inject_read(0, 0.0)
        sim.run()
        assert net.modules[0].dram_reads == 1
        assert net.modules[0].ep_dram_reads == 1

    def test_vault_contention_extends_latency(self):
        sim, net = make_network(n=1)
        net.start()
        # Same line address: same vault and bank every time.
        for i in range(8):
            net.inject_read(0, 0.0)
        sim.run()
        # Eight same-bank reads serialize on the 33 ns row cycle.
        assert net.max_read_latency_ns > 7 * 33.0

    def test_dram_dynamic_energy_charged(self):
        sim, net = make_network()
        net.start()
        net.inject_read(0, 0.0)
        sim.run()
        assert net.modules[0].ledger.dram_dyn_j > 0

    def test_logic_dynamic_energy_charged_along_path(self):
        sim, net = make_network(n=3)
        net.start()
        net.inject_read(2 * 4 * GB, 0.0)
        sim.run()
        # Request passed through routers 0, 1, 2; responses back through
        # 1 and 0. Every module on the path burned router energy.
        for m in range(3):
            assert net.modules[m].ledger.logic_dyn_j > 0


class TestResponseWakeChain:
    def test_module_mode_wakes_destination_response_link(self):
        sim, net = make_network(n=3, mechanism="ROO")
        net.response_wake_mode = "module"
        net.start()
        for m in net.modules:
            m.resp_out.set_mode(LinkModeState(0, 3), 0.0)
            m.req_in.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=5000.0)
        assert net.modules[2].resp_out.is_off
        net.inject_read(2 * 4 * GB, sim.now)
        sim.run()
        assert net.completed_reads == 1

    def test_path_mode_wakes_whole_response_path(self):
        sim, net = make_network(n=3, mechanism="ROO")
        net.response_wake_mode = "path"
        net.aware_sleep_gating = True
        net.start()
        for m in net.modules:
            m.resp_out.set_mode(LinkModeState(0, 3), 0.0)
            m.req_in.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=5000.0)
        wakeups_before = [m.resp_out.wakeups for m in net.modules]
        net.inject_read(2 * 4 * GB, sim.now)
        sim.run()
        wakeups_after = [m.resp_out.wakeups for m in net.modules]
        # All three response links along the path woke.
        assert all(a > b for a, b in zip(wakeups_after, wakeups_before))

    def test_path_wake_hides_most_latency(self):
        def run(mode):
            sim, net = make_network(n=3, mechanism="ROO")
            net.response_wake_mode = mode
            net.start()
            for m in net.modules:
                m.resp_out.set_mode(LinkModeState(0, 3), 0.0)
            sim.run(until=5000.0)
            net.inject_read(2 * 4 * GB, sim.now)
            sim.run()
            return net.avg_read_latency_ns

        assert run("path") < run("module")

    def test_sleep_gating_keeps_links_awake_during_reads(self):
        sim, net = make_network(n=3, mechanism="ROO")
        net.response_wake_mode = "path"
        net.aware_sleep_gating = True
        net.start()
        for m in net.modules:
            m.resp_out.set_mode(LinkModeState(0, 3), 0.0)
        net.start()
        net.inject_read(2 * 4 * GB, 0.0)
        # While the read is in flight, no response link on the path may
        # power off even though the 32 ns idleness threshold passes.
        sim.run(until=25.0)
        assert not net.modules[0].resp_out.is_off


class TestFinalize:
    def test_leakage_charged_for_window(self):
        sim, net = make_network(n=2)
        net.start()
        sim.run(until=1e6)
        net.finalize(1e6)
        for m in net.modules:
            assert m.ledger.dram_leak_j > 0
            assert m.ledger.logic_leak_j > 0

    def test_all_links_listed(self):
        _sim, net = make_network(topology="ternary_tree", n=5)
        assert len(net.all_links()) == 10  # req + resp per module
