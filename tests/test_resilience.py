"""Hardened execution: crash context, failure isolation, timeouts,
retries, the sweep journal, and cache quarantine.

Fault *injection* lives in ``tests/test_faults.py``; this file covers
what happens when an experiment (or its worker process) goes wrong --
the batch must keep going, every failure must surface as a structured
record, and a killed sweep must resume from its journal.
"""

import json
import time

import pytest

from repro.harness.diskcache import DiskCache
from repro.harness.executor import (
    FailedResult,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.harness.experiment import ExperimentConfig
from repro.harness.io import result_to_cache_dict
from repro.harness.journal import SweepJournal
from repro.harness.sweep import ExperimentFailedError, SweepRunner
from repro.sim.engine import SimulationError, Simulator

FAST = dict(
    workload="sp.D", topology="daisychain", mechanism="VWL+ROO",
    policy="aware", window_ns=20_000.0,
)

OK1 = ExperimentConfig(**FAST, seed=1)
OK2 = ExperimentConfig(**FAST, seed=2)
BAD = ExperimentConfig(**FAST, seed=3, fault_spec="crash=1")  # raises
DIE = ExperimentConfig(**FAST, seed=4, fault_spec="die=1")    # SIGKILL
HANG = ExperimentConfig(**FAST, seed=5, fault_spec="hang=20")  # sleeps


def norm(result):
    data = result_to_cache_dict(result)
    data.pop("wall_time_s")
    return data


# ----------------------------------------------------------------------
# Simulator crash context
# ----------------------------------------------------------------------
class TestEngineCrashContext:
    def test_handler_failure_carries_context(self):
        sim = Simulator()

        def boom():
            raise ValueError("vault exploded")

        sim.schedule(3.0, lambda: None)
        sim.schedule(7.5, boom)
        with pytest.raises(SimulationError) as exc_info:
            sim.run()
        err = exc_info.value
        assert err.sim_time_ns == 7.5
        assert err.events_done == 1
        assert "boom" in err.handler
        assert "t=7.5" in str(err)
        assert "ValueError: vault exploded" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_context_attached_on_traced_runs_too(self):
        sim = Simulator()

        class _Sink:
            def write(self, event):
                pass

            def close(self):
                pass

        from repro.obs.trace import Tracer

        sim.trace = Tracer(_Sink(), categories="all")

        def boom():
            raise RuntimeError("nope")

        sim.schedule(1.0, boom)
        with pytest.raises(SimulationError) as exc_info:
            sim.run()
        assert exc_info.value.sim_time_ns == 1.0

    def test_experiment_failure_message_includes_sim_context(self):
        # The sabotage raise happens before the simulation starts, so
        # instead break a handler: a NaN schedule from inside a run.
        sim = Simulator()
        sim.schedule(2.0, lambda: sim.schedule(float("nan"), lambda: None))
        with pytest.raises(SimulationError) as exc_info:
            sim.run()
        assert exc_info.value.sim_time_ns == 2.0
        assert isinstance(exc_info.value.__cause__, SimulationError)


# ----------------------------------------------------------------------
# Executor hardening
# ----------------------------------------------------------------------
class TestSerialHardening:
    def test_inline_error_is_isolated(self):
        results = SerialExecutor().run_many([OK1, BAD, OK2])
        assert norm(results[0]) == norm(SerialExecutor().run(OK1))
        assert isinstance(results[1], FailedResult)
        assert results[1].error_type == "error"
        assert "sabotage" in results[1].message
        assert norm(results[2]) == norm(SerialExecutor().run(OK2))

    def test_isolated_mode_survives_sigkill(self):
        results = SerialExecutor(isolate=True).run_many([DIE, OK1])
        assert isinstance(results[0], FailedResult)
        assert results[0].error_type == "crash"
        assert "-9" in results[0].message
        assert norm(results[1]) == norm(SerialExecutor().run(OK1))

    def test_timeout_watchdog_reclaims_hung_worker(self):
        results = SerialExecutor(timeout_s=1.5).run_many([HANG, OK1])
        assert isinstance(results[0], FailedResult)
        assert results[0].error_type == "timeout"
        assert results[0].wall_time_s >= 1.5
        assert not isinstance(results[1], FailedResult)

    def test_isolated_results_bit_identical_to_inline(self):
        inline = SerialExecutor().run_many([OK1, OK2])
        isolated = SerialExecutor(isolate=True).run_many([OK1, OK2])
        assert [norm(r) for r in inline] == [norm(r) for r in isolated]

    def test_error_never_burns_retries(self):
        results = SerialExecutor(isolate=True, retries=3).run_many([BAD])
        assert isinstance(results[0], FailedResult)
        assert results[0].attempts == 1

    def test_crash_retries_are_bounded(self):
        results = SerialExecutor(
            isolate=True, retries=2, backoff_s=0.01
        ).run_many([DIE])
        assert isinstance(results[0], FailedResult)
        assert results[0].error_type == "crash"
        assert results[0].attempts == 3  # 1 + 2 retries


class TestParallelHardening:
    def test_worker_crash_does_not_lose_other_results(self):
        results = ParallelExecutor(jobs=2, backoff_s=0.01).run_many(
            [OK1, DIE, OK2]
        )
        expected = SerialExecutor().run_many([OK1, OK2])
        assert norm(results[0]) == norm(expected[0])
        assert isinstance(results[1], FailedResult)
        assert results[1].error_type == "crash"
        assert norm(results[2]) == norm(expected[1])

    def test_results_mapped_by_index_not_completion_order(self):
        # HANG-free mix of fast/slow seeds; input order must be kept
        # even though the pool completes them out of order.
        configs = [OK2, OK1, ExperimentConfig(**FAST, seed=6)]
        parallel = ParallelExecutor(jobs=3).run_many(configs)
        serial = SerialExecutor().run_many(configs)
        assert [norm(r) for r in parallel] == [norm(r) for r in serial]

    def test_inline_raise_is_isolated_not_retried(self):
        results = ParallelExecutor(jobs=2, retries=3, backoff_s=0.01).run_many(
            [BAD, OK1]
        )
        assert isinstance(results[0], FailedResult)
        assert results[0].error_type == "error"
        assert results[0].attempts == 1
        assert not isinstance(results[1], FailedResult)

    def test_timeout_reclaims_hung_worker_mid_batch(self):
        results = ParallelExecutor(jobs=2, timeout_s=1.5).run_many(
            [HANG, OK1, OK2]
        )
        assert isinstance(results[0], FailedResult)
        assert results[0].error_type == "timeout"
        assert not isinstance(results[1], FailedResult)
        assert not isinstance(results[2], FailedResult)

    def test_on_result_streams_final_outcomes(self):
        seen = {}
        ParallelExecutor(jobs=2, backoff_s=0.01).run_many(
            [OK1, DIE],
            on_result=lambda i, c, o: seen.setdefault(i, o),
        )
        assert set(seen) == {0, 1}
        assert not isinstance(seen[0], FailedResult)
        assert isinstance(seen[1], FailedResult)

    def test_on_result_fires_before_the_batch_completes(self):
        # Checkpointing only helps if outcomes stream as they finish —
        # a sweep SIGKILLed mid-batch must keep the completed prefix.
        # HANG wedges one worker for many seconds, so if OK1/OK2 are
        # only emitted when the whole batch (or pool phase) resolves,
        # their callbacks run after the watchdog fires and this timing
        # gap shows up.
        times = {}
        t0 = time.monotonic()
        ParallelExecutor(jobs=2, timeout_s=1.0, backoff_s=0.01).run_many(
            [OK1, OK2, HANG],
            on_result=lambda i, c, o: times.setdefault(
                i, time.monotonic() - t0
            ),
        )
        assert set(times) == {0, 1, 2}
        # Both healthy configs finish well before the hung worker's
        # 1 s watchdog budget expires; streamed emission means their
        # callbacks must too.
        assert times[2] >= 1.0
        assert min(times[0], times[1]) < times[2]

    def test_single_worker_degrades_to_isolated_serial(self):
        results = ParallelExecutor(jobs=1).run_many([DIE, OK1])
        assert isinstance(results[0], FailedResult)
        assert not isinstance(results[1], FailedResult)


class TestMakeExecutor:
    def test_serial_by_default(self):
        ex = make_executor(1)
        assert isinstance(ex, SerialExecutor)
        assert not ex.isolate

    def test_timeout_turns_on_isolation(self):
        ex = make_executor(1, timeout_s=5.0)
        assert isinstance(ex, SerialExecutor)
        assert ex.isolate and ex.timeout_s == 5.0

    def test_parallel_with_hardening(self):
        ex = make_executor(4, timeout_s=9.0, retries=2)
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 4 and ex.timeout_s == 9.0 and ex.retries == 2

    def test_failed_result_describe(self):
        failure = FailedResult(
            config=OK1, error_type="timeout", message="too slow", attempts=2
        )
        text = failure.describe()
        assert "timeout" in text and "2 attempt" in text and "sp.D" in text


# ----------------------------------------------------------------------
# Sweep journal
# ----------------------------------------------------------------------
class TestSweepJournal:
    def test_record_and_replay(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = SerialExecutor().run(OK1)
        with SweepJournal(path) as journal:
            journal.record_done(OK1.cache_key(), result)
            journal.record_failed(
                BAD.cache_key(),
                FailedResult(config=BAD, error_type="crash", message="x",
                             attempts=2),
            )
        replayed = SweepJournal(path, resume=True)
        assert norm(replayed.results[OK1.cache_key()]) == norm(result)
        failure = replayed.failures[BAD.cache_key()]
        assert failure["error_type"] == "crash" and failure["attempts"] == 2
        assert replayed.corrupt_lines == 0
        replayed.close()

    def test_done_supersedes_earlier_failure(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = SerialExecutor().run(OK1)
        key = OK1.cache_key()
        with SweepJournal(path) as journal:
            journal.record_failed(
                key, FailedResult(config=OK1, error_type="timeout", message="t")
            )
            journal.record_done(key, result)
        replayed = SweepJournal(path, resume=True)
        assert key in replayed.results
        assert key not in replayed.failures
        replayed.close()

    def test_record_done_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = SerialExecutor().run(OK1)
        with SweepJournal(path) as journal:
            journal.record_done(OK1.cache_key(), result)
            journal.record_done(OK1.cache_key(), result)
        assert len(path.read_text().splitlines()) == 1

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = SerialExecutor().run(OK1)
        with SweepJournal(path) as journal:
            journal.record_done(OK1.cache_key(), result)
        with open(path, "a") as fh:
            fh.write('{"kind": "done", "key": "abc", "result": {"trunc')
        replayed = SweepJournal(path, resume=True)
        assert replayed.corrupt_lines == 1
        assert norm(replayed.results[OK1.cache_key()]) == norm(result)
        replayed.close()

    def test_fresh_journal_truncates(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"kind": "stale"}\n')
        journal = SweepJournal(path)  # resume=False
        journal.close()
        assert path.read_text() == ""


class TestSweepRunnerResilience:
    def test_run_all_reports_failures_in_slot(self):
        runner = SweepRunner(executor=SerialExecutor())
        outcomes = runner.run_all([OK1, BAD, OK2])
        assert not isinstance(outcomes[0], FailedResult)
        assert isinstance(outcomes[1], FailedResult)
        assert not isinstance(outcomes[2], FailedResult)
        assert BAD.cache_key() in runner.failures

    def test_failed_config_not_rerun_in_same_runner(self):
        runner = SweepRunner(executor=SerialExecutor())
        runner.run_all([BAD])
        with pytest.raises(ExperimentFailedError):
            runner.run(BAD)
        # Second batch reuses the recorded failure without re-running.
        runs_before = runner.runs
        outcomes = runner.run_all([BAD, OK1])
        assert isinstance(outcomes[0], FailedResult)
        assert runner.runs == runs_before + 1  # only OK1 simulated

    def test_failures_never_cached(self, tmp_path):
        cache = DiskCache(tmp_path)
        runner = SweepRunner(executor=SerialExecutor(), disk_cache=cache)
        runner.run_all([BAD, OK1])
        assert len(cache) == 1  # only the successful run persisted
        assert cache.get(BAD) is None

    def test_journal_checkpoints_and_resumes(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = SweepRunner(executor=SerialExecutor())
        first.attach_journal(SweepJournal(path))
        first.run_all([OK1, BAD, OK2])
        first.journal.close()

        resumed = SweepRunner(executor=SerialExecutor())
        resumed.attach_journal(SweepJournal(path, resume=True))
        assert resumed.journal_hits == 2
        outcomes = resumed.run_all([OK1, BAD, OK2])
        # The two completed configs replay from the journal (memory
        # hits, zero simulations); the failed one is retried -- and
        # fails again, re-recorded rather than counted as a run.
        assert resumed.runs == 0
        assert resumed.memory_hits == 2
        assert isinstance(outcomes[1], FailedResult)
        assert BAD.cache_key() in resumed.failures
        assert not isinstance(outcomes[0], FailedResult)
        resumed.journal.close()

    def test_resumed_journal_results_bit_identical(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = SweepRunner(executor=SerialExecutor())
        first.attach_journal(SweepJournal(path))
        original = first.run_all([OK1])[0]
        first.journal.close()

        resumed = SweepRunner(executor=SerialExecutor())
        resumed.attach_journal(SweepJournal(path, resume=True))
        replayed = resumed.run_all([OK1])[0]
        assert resumed.runs == 0
        assert norm(replayed) == norm(original)
        resumed.journal.close()


# ----------------------------------------------------------------------
# Disk-cache quarantine
# ----------------------------------------------------------------------
class TestDiskCacheQuarantine:
    def test_corrupt_entry_is_quarantined_not_unlinked(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = SerialExecutor().run(OK1)
        cache.put(OK1, result)
        path = cache.path_for(OK1)
        path.write_text("{ torn write")
        assert cache.get(OK1) is None
        assert cache.quarantined == 1
        assert not path.exists()
        moved = cache.directory / "quarantine" / path.name
        assert moved.exists()
        assert moved.read_text() == "{ torn write"

    def test_quarantined_entries_do_not_count_or_resolve(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(OK1, SerialExecutor().run(OK1))
        cache.path_for(OK1).write_text("garbage")
        cache.get(OK1)
        assert len(cache) == 0  # quarantine/ is not globbed
        assert cache.get(OK1) is None  # still a miss afterwards

    def test_quarantine_counter_surfaced_in_cli_stats(self, tmp_path, capsys):
        from repro.cli import _print_run_stats

        cache = DiskCache(tmp_path)
        cache.put(OK1, SerialExecutor().run(OK1))
        cache.path_for(OK1).write_text("junk")
        cache.get(OK1)
        runner = SweepRunner(executor=SerialExecutor(), disk_cache=cache)
        _print_run_stats(runner)
        assert "1 quarantined" in capsys.readouterr().err


# ----------------------------------------------------------------------
# End-to-end CLI chaos (fast versions of the CI chaos job)
# ----------------------------------------------------------------------
class TestCliChaos:
    def _spec(self, tmp_path, fault_specs):
        configs = [
            dict(FAST, seed=10 + i, fault_spec=fs)
            for i, fs in enumerate(fault_specs)
        ]
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps(configs))
        return spec

    def test_batch_with_dying_worker_exits_3_and_journals(self, tmp_path):
        from repro.cli import main

        spec = self._spec(tmp_path, ["", "die=1", ""])
        journal = tmp_path / "j.jsonl"
        out = tmp_path / "results.json"
        code = main([
            "batch", str(spec), "--jobs", "2", "--no-cache",
            "--journal", str(journal), "--out-json", str(out),
        ])
        assert code == 3
        lines = [json.loads(ln) for ln in journal.read_text().splitlines()]
        kinds = sorted(ln["kind"] for ln in lines)
        assert kinds == ["done", "done", "failed"]
        saved = json.loads(out.read_text())
        assert len(saved) == 2  # failures excluded from outputs

    def test_batch_resume_completes_remainder(self, tmp_path):
        from repro.cli import main

        spec = self._spec(tmp_path, ["", "", ""])
        journal = tmp_path / "j.jsonl"
        # Seed the journal with only the first config's result, as if
        # the first invocation was killed after one completion.
        runner = SweepRunner(executor=SerialExecutor())
        first_cfg = ExperimentConfig(**FAST, seed=10)
        journal_obj = SweepJournal(journal)
        journal_obj.record_done(first_cfg.cache_key(), runner.run(first_cfg))
        journal_obj.close()

        code = main([
            "batch", str(spec), "--no-cache",
            "--journal", str(journal), "--resume",
        ])
        assert code == 0
        lines = [json.loads(ln) for ln in journal.read_text().splitlines()]
        assert sum(1 for ln in lines if ln["kind"] == "done") == 3

    def test_resume_without_journal_flag_errors(self, tmp_path):
        from repro.cli import main

        spec = self._spec(tmp_path, [""])
        with pytest.raises(SystemExit):
            main(["batch", str(spec), "--no-cache", "--resume"])
