"""Tests for alpha sweeps and Pareto analysis."""

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.pareto import (
    TradeoffPoint,
    alpha_for_degradation,
    pareto_frontier,
    sweep_alpha,
)
from repro.harness.sweep import SweepRunner


class TestTradeoffPoint:
    def test_domination(self):
        better = TradeoffPoint(0.05, power_saved=0.3, degradation=0.01)
        worse = TradeoffPoint(0.025, power_saved=0.2, degradation=0.02)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = TradeoffPoint(0.05, 0.3, 0.01)
        b = TradeoffPoint(0.10, 0.3, 0.01)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable_points(self):
        cheap = TradeoffPoint(0.025, power_saved=0.1, degradation=0.001)
        aggressive = TradeoffPoint(0.30, power_saved=0.4, degradation=0.05)
        assert not cheap.dominates(aggressive)
        assert not aggressive.dominates(cheap)


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        points = [
            TradeoffPoint(0.025, 0.10, 0.005),
            TradeoffPoint(0.05, 0.30, 0.010),
            TradeoffPoint(0.10, 0.25, 0.020),  # dominated by the 0.05 point
        ]
        frontier = pareto_frontier(points)
        assert len(frontier) == 2
        assert all(p.alpha != 0.10 for p in frontier)

    def test_sorted_by_degradation(self):
        points = [
            TradeoffPoint(0.30, 0.5, 0.05),
            TradeoffPoint(0.025, 0.1, 0.001),
        ]
        frontier = pareto_frontier(points)
        assert frontier[0].alpha == 0.025

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestAlphaForDegradation:
    POINTS = [
        TradeoffPoint(0.025, 0.10, 0.004),
        TradeoffPoint(0.05, 0.20, 0.012),
        TradeoffPoint(0.30, 0.45, 0.08),
    ]

    def test_picks_most_savings_within_budget(self):
        point = alpha_for_degradation(self.POINTS, 0.02)
        assert point is not None and point.alpha == 0.05

    def test_none_when_infeasible(self):
        assert alpha_for_degradation(self.POINTS, 0.001) is None

    def test_large_budget_takes_everything(self):
        point = alpha_for_degradation(self.POINTS, 1.0)
        assert point.alpha == 0.30


class TestSweepIntegration:
    def test_sweep_monotone_savings(self):
        runner = SweepRunner()
        cfg = ExperimentConfig(
            workload="cg.D", topology="star", scale="big",
            mechanism="VWL+ROO", policy="aware",
            window_ns=150_000.0, epoch_ns=25_000.0,
        )
        points = sweep_alpha(runner, cfg, alphas=(0.025, 0.30))
        assert len(points) == 2
        # A 12x larger budget cannot save (meaningfully) less power.
        assert points[1].power_saved >= points[0].power_saved - 0.03
        for point in points:
            assert -0.05 < point.degradation < 0.40
