"""Tests for the ``repro-mnet bench`` harness, report, and gate."""

import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA,
    CALIBRATION_BENCH,
    BenchmarkError,
    ReportError,
    all_benchmarks,
    compare_outcome,
    compare_reports,
    load_report,
    make_report,
    run_benchmarks,
    write_report,
)
from repro.perf.harness import BenchResult, BenchSpec, _run_one


def _fake_report(benches, quick=True):
    """A schema-valid report from {name: best_s} (plus optional calib)."""
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": 0.0,
        "quick": quick,
        "machine": {},
        "benches": {
            name: {"best_s": best, "times_s": [best], "events": 100}
            for name, best in benches.items()
        },
    }


class TestHarness:
    def test_quick_run_produces_results_and_stats(self):
        results = run_benchmarks(
            names=["engine_dispatch"], quick=True, repeats=2, progress=None
        )
        (r,) = results
        assert r.name == "engine_dispatch"
        assert len(r.times_s) == 2
        assert r.best_s <= r.mean_s
        assert r.events > 0
        assert r.events_per_s > 0
        assert len(r.fingerprint) == 16

    def test_quick_determinism_across_two_runs(self):
        # Two fresh invocations of the same scenarios must land on the
        # identical event counts and result fingerprints.
        names = ["engine_dispatch", "dram_vault", "workload_generation"]
        first = run_benchmarks(names=names, quick=True, repeats=1, progress=None)
        second = run_benchmarks(names=names, quick=True, repeats=1, progress=None)
        for a, b in zip(first, second):
            assert (a.name, a.events, a.fingerprint) == (
                b.name,
                b.events,
                b.fingerprint,
            )

    def test_nondeterministic_scenario_fails_loudly(self):
        ticks = iter(range(100))

        def factory(quick):
            return lambda: (1, f"fp-{next(ticks)}")

        spec = BenchSpec(
            name="bad",
            description="changes answer per repeat",
            factory=factory,
            repeats=2,
            quick_repeats=2,
        )
        with pytest.raises(BenchmarkError, match="nondeterministic"):
            _run_one(spec, quick=True, repeats=None)

    def test_unknown_benchmark_name_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown benchmark"):
            run_benchmarks(names=["no_such_bench"], quick=True, progress=None)


class TestReport:
    @pytest.fixture(scope="class")
    def full_registry_report(self):
        # One cold repeat of every registered scenario, quick sizes.
        results = run_benchmarks(quick=True, repeats=1, progress=None)
        return make_report(results, quick=True), results

    def test_schema_round_trip(self, tmp_path, full_registry_report):
        report, results = full_registry_report
        path = tmp_path / "BENCH_test.json"
        write_report(str(path), report)
        loaded = load_report(str(path))
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["quick"] is True
        assert set(loaded["machine"]) >= {"platform", "python", "cpu_count"}
        for r in results:
            stats = loaded["benches"][r.name]
            assert stats["best_s"] == r.best_s
            assert stats["times_s"] == r.times_s
            assert stats["events"] == r.events
            assert stats["fingerprint"] == r.fingerprint

    def test_every_registered_scenario_appears_in_json(self, full_registry_report):
        report, _results = full_registry_report
        registered = {spec.name for spec in all_benchmarks()}
        assert registered == set(report["benches"])
        assert CALIBRATION_BENCH in report["benches"]

    def test_load_rejects_other_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "other/v9", "benches": {}}))
        with pytest.raises(ReportError):
            load_report(str(path))

    def test_load_rejects_missing_benches(self, tmp_path):
        path = tmp_path / "nobench.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(ReportError):
            load_report(str(path))


class TestGateLogic:
    def test_improvement_never_regresses(self):
        base = _fake_report({"a": 2.0})
        cur = _fake_report({"a": 1.0})
        comps = compare_reports(cur, base, max_regress_pct=25.0)
        assert not compare_outcome(comps)

    def test_raw_regression_without_calibration_fails(self):
        base = _fake_report({"a": 1.0})
        cur = _fake_report({"a": 2.0})
        (c,) = compare_reports(cur, base, max_regress_pct=25.0)
        assert c.norm_pct is None
        assert c.regressed

    def test_slower_machine_is_excused_by_calibration(self):
        # Everything (including calibration) is 2x slower: raw regresses
        # but the normalized score is flat, so the gate passes.
        base = _fake_report({CALIBRATION_BENCH: 0.1, "a": 1.0})
        cur = _fake_report({CALIBRATION_BENCH: 0.2, "a": 2.0})
        (c,) = compare_reports(cur, base, max_regress_pct=25.0)
        assert c.raw_pct == pytest.approx(100.0)
        assert c.norm_pct == pytest.approx(0.0)
        assert not c.regressed

    def test_noisy_calibration_is_excused_by_raw_time(self):
        # Calibration alone sped up (its baseline measurement was slow):
        # normalized looks regressed, raw is flat, so the gate passes.
        base = _fake_report({CALIBRATION_BENCH: 0.2, "a": 1.0})
        cur = _fake_report({CALIBRATION_BENCH: 0.1, "a": 1.0})
        (c,) = compare_reports(cur, base, max_regress_pct=25.0)
        assert c.raw_pct == pytest.approx(0.0)
        assert c.norm_pct == pytest.approx(100.0)
        assert not c.regressed

    def test_true_regression_fails_both_metrics(self):
        base = _fake_report({CALIBRATION_BENCH: 0.1, "a": 1.0})
        cur = _fake_report({CALIBRATION_BENCH: 0.1, "a": 2.0})
        (c,) = compare_reports(cur, base, max_regress_pct=25.0)
        assert c.regressed
        assert compare_outcome([c])

    def test_calibration_itself_is_never_gated(self):
        base = _fake_report({CALIBRATION_BENCH: 0.1, "a": 1.0})
        cur = _fake_report({CALIBRATION_BENCH: 10.0, "a": 1.0})
        names = [c.name for c in compare_reports(cur, base, 25.0)]
        assert CALIBRATION_BENCH not in names

    def test_only_overlapping_benches_compared(self):
        base = _fake_report({"a": 1.0, "only_base": 1.0})
        cur = _fake_report({"a": 1.0, "only_cur": 1.0})
        names = [c.name for c in compare_reports(cur, base, 25.0)]
        assert names == ["a"]


class TestCliGateExitCodes:
    BENCH_ARGS = ["bench", "--quick", "--repeats", "1", "--only",
                  "workload_generation"]

    def _current_report(self):
        results = run_benchmarks(
            names=["workload_generation"], quick=True, repeats=1, progress=None
        )
        return make_report(results, quick=True)

    def test_exit_0_when_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        report = self._current_report()
        # Inflate the baseline so the current run is an improvement.
        report["benches"]["workload_generation"]["best_s"] *= 10
        write_report(str(baseline), report)
        code = main(self.BENCH_ARGS + ["--baseline", str(baseline)])
        assert code == 0
        assert "gate passed" in capsys.readouterr().out

    def test_exit_1_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        report = self._current_report()
        # Deflate the baseline so the current run looks far slower.
        report["benches"]["workload_generation"]["best_s"] /= 1000
        write_report(str(baseline), report)
        code = main(self.BENCH_ARGS + ["--baseline", str(baseline)])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_exit_2_on_missing_baseline(self, tmp_path):
        missing = tmp_path / "nope.json"
        code = main(self.BENCH_ARGS + ["--baseline", str(missing)])
        assert code == 2

    def test_exit_2_on_malformed_baseline(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "wrong/v0", "benches": {}}))
        code = main(self.BENCH_ARGS + ["--baseline", str(bad)])
        assert code == 2

    def test_out_writes_schema_versioned_report(self, tmp_path):
        out = tmp_path / "BENCH_out.json"
        code = main(self.BENCH_ARGS + ["--out", str(out)])
        assert code == 0
        assert load_report(str(out))["benches"]["workload_generation"]

    def test_list_names_every_scenario(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for spec in all_benchmarks():
            assert spec.name in out


class TestBenchResultStats:
    def test_stat_properties(self):
        r = BenchResult(
            name="x",
            description="",
            repeats=3,
            warmup=0,
            times_s=[0.4, 0.2, 0.3],
            events=100,
            fingerprint="f" * 16,
        )
        assert r.best_s == 0.2
        assert r.mean_s == pytest.approx(0.3)
        assert r.median_s == pytest.approx(0.3)
        assert r.events_per_s == pytest.approx(100 / 0.2)

    def test_single_repeat_has_zero_stdev(self):
        r = BenchResult(
            name="x",
            description="",
            repeats=1,
            warmup=0,
            times_s=[0.5],
            events=10,
            fingerprint="f",
        )
        assert r.stdev_s == 0.0
