"""Unit and property tests for network topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import (
    Radix,
    Topology,
    TopologyError,
    TOPOLOGY_BUILDERS,
    TOPOLOGY_NAMES,
    box,
    build_topology,
    daisychain,
    ddrx_like,
    star,
    ternary_tree,
)


class TestRadix:
    def test_high_radix_has_four_full_links(self):
        assert Radix.HIGH.full_links == 4
        assert Radix.HIGH.max_children == 3

    def test_low_radix_has_two_full_links(self):
        assert Radix.LOW.full_links == 2
        assert Radix.LOW.max_children == 1


class TestDaisychain:
    def test_structure(self):
        t = daisychain(4)
        assert t.parent == [-1, 0, 1, 2]
        assert all(r is Radix.LOW for r in t.radix)

    def test_depths_are_linear(self):
        t = daisychain(5)
        assert [t.depth(i) for i in range(5)] == [1, 2, 3, 4, 5]
        assert t.max_depth == 5

    def test_single_module(self):
        t = daisychain(1)
        assert t.num_modules == 1
        assert t.depth(0) == 1


class TestTernaryTree:
    def test_root_children(self):
        t = ternary_tree(4)
        assert t.children[0] == [1, 2, 3]

    def test_all_high_radix(self):
        t = ternary_tree(13)
        assert all(r is Radix.HIGH for r in t.radix)

    def test_minimal_depth(self):
        # 1 + 3 + 9 = 13 modules fit within depth 3.
        t = ternary_tree(13)
        assert t.max_depth == 3

    def test_bfs_numbering(self):
        t = ternary_tree(13)
        assert [t.depth(i) for i in range(13)] == [1] + [2] * 3 + [3] * 9


class TestStar:
    def test_root_is_high_radix(self):
        t = star(4)
        assert t.radix[0] is Radix.HIGH

    def test_small_star_matches_ternary_tree_depths(self):
        # Section III-A: for smaller sizes, star matches ternary-tree
        # hop distances with fewer high-radix HMCs.
        for n in (2, 3, 4, 5, 6, 7):
            s, tt = star(n), ternary_tree(n)
            assert s.max_depth == tt.max_depth, f"n={n}"
            assert s.num_high_radix() <= tt.num_high_radix(), f"n={n}"

    def test_chain_nodes_are_low_radix(self):
        t = star(7)  # root + ring of 3 + ring of 3, one child each
        assert sum(1 for r in t.radix if r is Radix.HIGH) == 1

    def test_fanout_nodes_become_high_radix(self):
        t = star(13)
        # Ring-1 nodes must fan out to support ring 2 of 9.
        assert t.radix[1] is Radix.HIGH


class TestDdrxLike:
    def test_row0_layout(self):
        t = ddrx_like(3)
        # Figure 3: row 0 reads "1 0 2" with 0 at the processor.
        assert t.parent == [-1, 0, 0]

    def test_rows_grow_downward(self):
        t = ddrx_like(9)
        assert t.parent[3] == 0
        assert t.parent[4] == 1
        assert t.parent[5] == 2
        assert t.parent[6] == 3

    def test_mixed_radix(self):
        t = ddrx_like(9)
        assert t.radix[0] is Radix.HIGH  # up + 2 horizontal + 1 down
        assert t.radix[8] is Radix.LOW

    def test_depths_by_row(self):
        t = ddrx_like(9)
        assert t.depth(0) == 1
        assert t.depth(1) == t.depth(2) == 2
        assert t.depth(3) == 2  # directly below module 0
        assert t.depth(4) == t.depth(5) == 3


class TestDdrxRowWidth:
    def test_row_width_one_degenerates_to_a_chain(self):
        t = ddrx_like(5, row_width=1)
        assert t.parent == daisychain(5).parent
        assert [t.depth(i) for i in range(5)] == [1, 2, 3, 4, 5]

    def test_row_width_two(self):
        t = ddrx_like(6, row_width=2)
        # Row 0 is [0, 1]; rows below hang module i off module i - 2.
        assert t.parent == [-1, 0, 0, 1, 2, 3]
        assert t.depth(0) == 1
        assert t.depth(1) == 2
        assert t.depth(2) == 2
        assert t.depth(4) == 3

    def test_row_width_five(self):
        t = ddrx_like(15, row_width=5)
        # Row 0 chains horizontally: 1, 2 off 0, then 3 off 1, 4 off 2.
        assert t.parent[:5] == [-1, 0, 0, 1, 2]
        # Each deeper row hangs straight below the previous one.
        assert all(t.parent[i] == i - 5 for i in range(5, 15))
        assert t.radix[0] is Radix.HIGH

    def test_row_width_must_be_positive(self):
        with pytest.raises(TopologyError):
            ddrx_like(4, row_width=0)

    def test_partial_last_row(self):
        # 7 modules with row_width 3: full rows of 3, then one leftover.
        t = ddrx_like(7)
        assert t.num_modules == 7
        assert t.parent[6] == 3


class TestSingleModule:
    """Every builder must handle the degenerate one-module network."""

    @pytest.mark.parametrize("name", sorted(TOPOLOGY_BUILDERS))
    def test_one_module_topology(self, name):
        t = build_topology(name, 1)
        assert t.num_modules == 1
        assert t.parent == [-1]
        assert t.depth(0) == 1
        assert t.max_depth == 1
        assert t.children[0] == []

    @pytest.mark.parametrize("name", sorted(TOPOLOGY_BUILDERS))
    def test_one_module_network_builds_and_runs(self, name):
        from repro.core.mechanisms import make_mechanism
        from repro.harness.builder import build_network
        from repro.workloads.mapping import make_mapping

        network = build_network(
            build_topology(name, 1),
            make_mechanism("VWL+ROO"),
            make_mapping("contiguous", footprint_gb=1.0, scale="small"),
        )
        links = list(network.all_links())
        assert len(links) == 2  # one request, one response
        assert {link.name for link in links} == {"req:-1->0", "resp:0->-1"}
        network.start()
        network.sim.run(until=1_000.0)


class TestRegistryDrift:
    """The registry, the paper-name tuple, and the CLI stay in sync."""

    def test_every_registered_name_builds_its_own_name(self):
        for name in TOPOLOGY_BUILDERS.names():
            assert build_topology(name, 4).name == name

    def test_paper_names_are_exactly_the_documented_four(self):
        assert TOPOLOGY_NAMES == ("daisychain", "ternary_tree", "star", "ddrx_like")
        assert set(TOPOLOGY_NAMES) <= set(TOPOLOGY_BUILDERS.names())

    def test_registry_matches_module_level_builders(self):
        # Guards against registering a builder without exporting it (or
        # vice versa): every registered callable is the module function.
        import repro.network.topology as topo_mod

        for name in TOPOLOGY_BUILDERS.names():
            assert TOPOLOGY_BUILDERS.get(name) is getattr(topo_mod, name)

    def test_cli_choices_track_the_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        run_parser = next(
            a for a in parser._subparsers._group_actions[0].choices.values()
            if a.prog.endswith(" run")
        )
        topo_action = next(
            a for a in run_parser._actions if "--topology" in a.option_strings
        )
        assert list(topo_action.choices) == sorted(TOPOLOGY_BUILDERS)
        t = box(10)
        from collections import Counter

        depth_counts = Counter(t.depth(i) for i in range(10))
        assert depth_counts[1] == 1
        assert all(v <= 4 for d, v in depth_counts.items() if d > 1)


class TestValidation:
    def test_zero_modules_rejected(self):
        with pytest.raises(TopologyError):
            daisychain(0)

    def test_unknown_name_rejected(self):
        with pytest.raises(TopologyError):
            build_topology("mesh", 4)

    def test_builder_registry_covers_paper_topologies(self):
        for name in TOPOLOGY_NAMES:
            assert name in TOPOLOGY_BUILDERS

    def test_overfull_children_rejected(self):
        with pytest.raises(TopologyError):
            Topology(
                "bad",
                parent=[-1, 0, 0],
                radix=[Radix.LOW, Radix.LOW, Radix.LOW],
            )

    def test_multiple_roots_rejected(self):
        with pytest.raises(TopologyError):
            Topology(
                "bad",
                parent=[-1, -1],
                radix=[Radix.HIGH, Radix.HIGH],
            )


class TestHelpers:
    def test_path_from_processor(self):
        t = daisychain(4)
        assert t.path_from_processor(3) == [0, 1, 2, 3]
        assert t.path_from_processor(0) == [0]

    def test_subtree(self):
        t = ternary_tree(5)
        assert set(t.subtree(1)) == {1, 4}
        assert set(t.subtree(0)) == {0, 1, 2, 3, 4}

    def test_links_by_depth(self):
        t = ternary_tree(13)
        assert t.links_by_depth() == {1: 1, 2: 3, 3: 9}

    def test_avg_depth(self):
        t = daisychain(3)
        assert t.avg_depth == pytest.approx(2.0)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(sorted(TOPOLOGY_BUILDERS)),
    n=st.integers(min_value=1, max_value=64),
)
def test_topology_invariants(name, n):
    """Every builder yields a valid tree for any module count."""
    t = build_topology(name, n)
    assert t.num_modules == n
    # Module 0 attaches to the processor; everyone reaches it.
    assert t.parent[0] == -1
    for i in range(n):
        path = t.path_from_processor(i)
        assert path[0] == 0 and path[-1] == i
        assert len(path) == t.depth(i)
    # Radix constraints hold.
    for i in range(n):
        assert len(t.children[i]) <= t.radix[i].max_children
    # BFS-ish numbering: a child is always numbered after its parent.
    for i in range(1, n):
        assert t.parent[i] < i
    # Every module is counted exactly once in the root's subtree.
    assert sorted(t.subtree(0)) == list(range(n))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=64))
def test_ternary_tree_minimizes_depth(n):
    """No evaluated topology beats the ternary tree's worst-case depth."""
    tt = ternary_tree(n)
    for name in ("daisychain", "star", "ddrx_like"):
        assert build_topology(name, n).max_depth >= tt.max_depth
