"""Property tests for serialization round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.experiment import ExperimentConfig
from repro.harness.io import config_from_dict, config_to_dict
from repro.workloads.profiles import WORKLOAD_NAMES
from repro.workloads.traces import TraceRecord

_MECHANISMS = ["FP", "VWL", "ROO", "DVFS", "VWL+ROO", "DVFS+ROO"]

config_strategy = st.builds(
    ExperimentConfig,
    workload=st.sampled_from(WORKLOAD_NAMES),
    topology=st.sampled_from(["daisychain", "ternary_tree", "star", "ddrx_like", "box"]),
    scale=st.sampled_from(["small", "big"]),
    # Mixed-case spellings must canonicalize, not fork the config space.
    mechanism=st.sampled_from(_MECHANISMS).flatmap(
        lambda m: st.sampled_from([m, m.lower(), m.capitalize()])
    ),
    policy=st.sampled_from(["none", "unaware", "aware", "static"]),
    alpha=st.floats(min_value=0.0, max_value=0.5),
    window_ns=st.floats(min_value=1.0, max_value=1e7),
    epoch_ns=st.floats(min_value=1_000.0, max_value=100_000.0),
    seed=st.integers(min_value=0, max_value=2**31),
    wake_ns=st.sampled_from([14.0, 20.0]),
    mapping=st.sampled_from(["contiguous", "interleaved"]),
    collect_link_hours=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(config=config_strategy)
def test_config_roundtrip_property(config):
    assert config_from_dict(config_to_dict(config)) == config


@settings(max_examples=60, deadline=None)
@given(config=config_strategy)
def test_mechanism_canonicalized_property(config):
    assert config.mechanism == config.mechanism.upper()
    assert config == config.replace(mechanism=config.mechanism.lower())


@settings(max_examples=60, deadline=None)
@given(config=config_strategy)
def test_cache_key_property(config):
    key = config.cache_key()
    # Stable and insensitive to observability flags...
    assert key == config.cache_key()
    assert key == config.replace(
        collect_link_hours=not config.collect_link_hours
    ).cache_key()
    # ...but sensitive to any simulation-affecting change.
    assert key != config.replace(seed=config.seed + 1).cache_key()
    assert key != config.replace(window_ns=config.window_ns + 1.0).cache_key()


@settings(max_examples=60, deadline=None)
@given(
    time_ns=st.floats(min_value=0, max_value=1e9),
    address=st.integers(min_value=0, max_value=2**48),
    is_read=st.booleans(),
    stream=st.integers(min_value=0, max_value=1023),
)
def test_trace_record_roundtrip_property(time_ns, address, is_read, stream):
    record = TraceRecord(time_ns, address, is_read, stream)
    parsed = TraceRecord.from_line(record.to_line())
    assert parsed.address == record.address
    assert parsed.is_read == record.is_read
    assert parsed.stream == record.stream
    assert abs(parsed.time_ns - record.time_ns) <= 0.001
