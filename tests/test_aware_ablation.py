"""Tests for the network-aware policy's ablation knobs."""

import pytest

from repro.core.aware import NetworkAwarePolicy
from repro.core.mechanisms import make_mechanism
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


def make(mechanism="VWL+ROO", **kwargs):
    sim = Simulator()
    topo = build_topology("daisychain", 3)
    mapping = AddressMapping(num_modules=3, granularity_bytes=GB)
    net = MemoryNetwork(sim, topo, make_mechanism(mechanism), mapping)
    policy = NetworkAwarePolicy(net, alpha=0.05, epoch_ns=10_000.0, **kwargs)
    return sim, net, policy


class TestDefaults:
    def test_all_features_on(self):
        _sim, _net, policy = make()
        assert policy.isp_iterations == 3
        assert policy.enable_wakeup_hiding
        assert policy.enable_congestion_discount
        assert policy.enable_grant_pool

    def test_default_hooks(self):
        _sim, net, policy = make()
        net.start()
        policy.start()
        assert net.response_wake_mode == "path"
        assert net.aware_sleep_gating


class TestWakeupHidingDisabled:
    def test_falls_back_to_module_mode(self):
        _sim, net, policy = make(enable_wakeup_hiding=False)
        net.start()
        policy.start()
        assert net.response_wake_mode == "module"
        assert not net.aware_sleep_gating

    def test_response_links_become_srcs_for_roo(self):
        sim, net, policy = make(mechanism="ROO", enable_wakeup_hiding=False)
        net.start()
        policy.start()
        policy._prepare_isp()
        # Without hiding, response links compete for AMS like request
        # links do (their wakeups now cost latency).
        for m in net.modules:
            assert m.resp_out.isp_src

    def test_response_candidates_unrestricted(self):
        _sim, net, policy = make(enable_wakeup_hiding=False)
        policy._prepare_isp()
        resp = net.modules[0].resp_out
        roo_indices = {c[0].roo_index for c in policy._cands[resp]}
        assert len(roo_indices) == 4


class TestGrantPoolDisabled:
    def test_pool_stays_empty(self):
        sim, net, policy = make(enable_grant_pool=False)
        net.start()
        policy.start()
        sim.run(until=25_000.0)
        assert policy._grant_pool == 0.0

    def test_violation_goes_straight_to_full_power(self):
        sim, net, policy = make(enable_grant_pool=False)
        net.start()
        policy.start()
        link = net.modules[0].req_in
        link.violated = False
        policy._on_violation(link)
        assert link.violated


class TestIterationCount:
    def test_single_iteration_allowed(self):
        _sim, _net, policy = make(isp_iterations=1)
        assert policy.isp_iterations == 1

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            make(isp_iterations=0)

    def test_assignment_still_valid_with_one_iteration(self):
        sim, net, policy = make(isp_iterations=1)
        net.start()
        policy.start()
        for i in range(60):
            net.inject_read((i % 3) * GB, float(i) * 20)
        sim.run(until=9_000.0)
        assignments = policy._assign_budgets()
        assert set(assignments) == set(net.all_links())


class TestCongestionDiscountDisabled:
    def test_totals_equal_raw_overhead(self):
        import random

        sim, net, policy = make(enable_congestion_discount=False)
        net.start()
        policy.start()
        rng = random.Random(4)
        t = 0.0
        for _ in range(300):
            t += rng.expovariate(1 / 10.0)
            net.inject_read(rng.randrange(0, 3 * GB, 64), t)
        sim.run(until=t + 2000.0)
        from repro.core.ams import module_fel_ael

        _fel, overhead = policy._discounted_epoch_totals()
        raw = sum(
            module_fel_ael(m, policy.dram_read_latency_ns)[1]
            - module_fel_ael(m, policy.dram_read_latency_ns)[0]
            for m in net.modules
        )
        assert overhead == pytest.approx(raw, rel=1e-9, abs=1e-6)
