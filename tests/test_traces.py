"""Tests for trace capture, persistence, and replay."""

import pytest

from repro.core.mechanisms import make_mechanism
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads import ClosedLoopWorkload, contiguous_mapping, get_profile
from repro.workloads.mapping import AddressMapping
from repro.workloads.traces import (
    TraceError,
    TraceRecord,
    TraceRecorder,
    TraceReplayWorkload,
    load_trace,
    save_trace,
)

GB = 1024**3


def make_network(n=2):
    sim = Simulator()
    topo = build_topology("daisychain", n)
    mapping = AddressMapping(num_modules=n, granularity_bytes=4 * GB)
    net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
    net.start()
    return sim, net


class TestTraceRecord:
    def test_roundtrip_line(self):
        rec = TraceRecord(time_ns=123.456, address=0xDEADBEEF, is_read=True, stream=7)
        parsed = TraceRecord.from_line(rec.to_line())
        assert parsed.address == 0xDEADBEEF
        assert parsed.is_read and parsed.stream == 7
        assert parsed.time_ns == pytest.approx(123.456)

    def test_write_kind(self):
        rec = TraceRecord(0.0, 64, False)
        assert " W " in rec.to_line()
        assert not TraceRecord.from_line(rec.to_line()).is_read

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord.from_line("1.0 0x40 R")
        with pytest.raises(TraceError):
            TraceRecord.from_line("1.0 0x40 X 0")
        with pytest.raises(TraceError):
            TraceRecord.from_line("abc 0x40 R 0")


class TestPersistence:
    def records(self):
        return [
            TraceRecord(float(i) * 10, i * 64, i % 3 != 0, i % 4)
            for i in range(50)
        ]

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trace")
        n = save_trace(path, self.records())
        assert n == 50
        loaded = load_trace(path)
        assert loaded == self.records()

    def test_gzip_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        save_trace(path, self.records())
        assert load_trace(path) == self.records()

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1.0 0x40 R 0\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# repro-mnet trace v1\n\n# comment\n5.0 0x40 R 1\n"
        )
        records = load_trace(str(path))
        assert len(records) == 1
        assert records[0].stream == 1


class TestRecorder:
    def test_captures_injections(self):
        sim, net = make_network()
        recorder = TraceRecorder(net)
        net.inject_read(64, 0.0, stream=3)
        net.inject_write(4 * GB + 128, 5.0)
        sim.run()
        assert len(recorder.records) == 2
        assert recorder.records[0].is_read and recorder.records[0].stream == 3
        assert not recorder.records[1].is_read

    def test_detach_stops_recording(self):
        sim, net = make_network()
        recorder = TraceRecorder(net)
        net.inject_read(0, 0.0)
        recorder.detach()
        net.inject_read(64, 1.0)
        sim.run()
        assert len(recorder.records) == 1
        assert net.completed_reads == 2  # injection still works

    def test_closed_loop_run_is_recordable(self):
        profile = get_profile("lu.D")
        mapping = contiguous_mapping(profile.footprint_gb, "small")
        sim = Simulator()
        topo = build_topology("daisychain", mapping.num_modules)
        net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
        recorder = TraceRecorder(net)
        wl = ClosedLoopWorkload(net, profile, stop_ns=20_000.0, seed=1)
        net.start()
        wl.start()
        sim.run(until=20_000.0)
        assert len(recorder.records) == net.injected_reads + net.injected_writes
        times = [r.time_ns for r in recorder.records]
        assert times == sorted(times)


class TestReplay:
    def test_replay_reproduces_access_counts(self):
        records = [TraceRecord(float(i) * 20, (i % 2) * 4 * GB, True, 0) for i in range(20)]
        sim, net = make_network()
        replay = TraceReplayWorkload(net, records)
        replay.start()
        sim.run()
        assert replay.injected == 20
        assert net.completed_reads == 20

    def test_replay_from_file(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(path, [TraceRecord(10.0, 64, True, 0)])
        sim, net = make_network()
        replay = TraceReplayWorkload(net, path)
        replay.start()
        sim.run()
        assert net.completed_reads == 1

    def test_time_scale_stretches_schedule(self):
        records = [TraceRecord(100.0, 0, True, 0)]
        sim, net = make_network()
        TraceReplayWorkload(net, records, time_scale=3.0).start()
        assert sim.peek_next_time() == pytest.approx(300.0)

    def test_stop_ns_truncates(self):
        records = [TraceRecord(t, 0, True, 0) for t in (10.0, 20.0, 900.0)]
        sim, net = make_network()
        replay = TraceReplayWorkload(net, records, stop_ns=100.0)
        replay.start()
        sim.run()
        assert replay.injected == 2

    def test_invalid_time_scale(self):
        sim, net = make_network()
        with pytest.raises(ValueError):
            TraceReplayWorkload(net, [], time_scale=0.0)

    def test_record_then_replay_same_network_shape(self):
        """A recorded closed-loop run replays to identical DRAM reads."""
        profile = get_profile("sp.D")
        mapping = contiguous_mapping(profile.footprint_gb, "small")

        def fresh():
            sim = Simulator()
            topo = build_topology("star", mapping.num_modules)
            net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
            return sim, net

        sim, net = fresh()
        recorder = TraceRecorder(net)
        wl = ClosedLoopWorkload(net, profile, stop_ns=30_000.0, seed=2)
        net.start()
        wl.start()
        sim.run(until=30_000.0)
        sim.run()  # drain
        recorded_reads = [m.dram_reads for m in net.modules]

        sim2, net2 = fresh()
        net2.start()
        TraceReplayWorkload(net2, recorder.records).start()
        sim2.run()
        assert [m.dram_reads for m in net2.modules] == recorded_reads
