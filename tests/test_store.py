"""Backend-conformance suite for the pluggable result-store layer.

Every test in :class:`TestStoreConformance` runs against BOTH backends
(``JsonDirStore`` and ``SqliteStore``) through the shared
:class:`~repro.store.base.ResultStore` surface: round-trips, bulk
lookups with partial hits, counter exactness under a concurrent writer
hammer, and corrupt-entry quarantine.  Backend-specific behaviors
(schema-version handling, compaction, migration, the bulk-lookup
speedup) follow in their own classes.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import replace

import pytest

from repro.cli import main
from repro.harness.diskcache import DiskCache
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.io import result_to_cache_dict
from repro.harness.sweep import SweepRunner, grid_configs
from repro.store import (
    DEFAULT_SQLITE_FILENAME,
    JsonDirStore,
    MigrationReport,
    ResultStore,
    SqliteStore,
    make_store,
    migrate_json_to_sqlite,
    store_schema_tag,
)

FAST = dict(window_ns=30_000.0, epoch_ns=10_000.0)

BACKENDS = ("json", "sqlite")


@pytest.fixture(scope="module")
def seed_run():
    """One real (config, result) pair; the basis for synthetic entries."""
    config = ExperimentConfig(workload="mixA", **FAST)
    return config, run_experiment(config)


def synthetic_entries(seed_run, n):
    """``n`` distinct (config, result) pairs derived from one real run.

    Each entry gets its own cache key (via ``seed``) and a marker value
    (``completed_reads``) so payload mix-ups are detectable.
    """
    config, result = seed_run
    out = []
    for i in range(n):
        cfg = config.replace(seed=1000 + i)
        out.append((cfg, replace(result, config=cfg, completed_reads=10_000 + i)))
    return out


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    """The store under test, parameterized over both backends."""
    return make_store(request.param, tmp_path)


def corrupt_entry(store, config) -> None:
    """Destroy one entry's stored payload, backend-appropriately."""
    if isinstance(store, SqliteStore):
        conn = sqlite3.connect(str(store.path))
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = ?",
            (b"not-a-payload", config.cache_key()),
        )
        conn.commit()
        conn.close()
    else:
        store.path_for(config).write_text("{truncated")


def quarantine_evidence(store) -> int:
    """How many quarantined entries the backend kept for post-mortems."""
    if isinstance(store, SqliteStore):
        conn = sqlite3.connect(str(store.path))
        count = conn.execute("SELECT COUNT(*) FROM quarantine").fetchone()[0]
        conn.close()
        return int(count)
    quarantine_dir = store.directory / "quarantine"
    if not quarantine_dir.is_dir():
        return 0
    return sum(1 for p in quarantine_dir.iterdir() if p.is_file())


class TestStoreConformance:
    def test_implements_the_protocol(self, store):
        assert isinstance(store, ResultStore)
        assert store.schema_tag == store_schema_tag()

    def test_round_trip(self, store, seed_run):
        config, result = seed_run
        assert store.get(config) is None
        assert store.misses == 1
        store.put(config, result)
        fetched = store.get(config)
        assert result_to_cache_dict(fetched) == result_to_cache_dict(result)
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_contains_does_not_touch_counters(self, store, seed_run):
        config, result = seed_run
        assert not store.contains(config)
        store.put(config, result)
        assert store.contains(config)
        assert (store.hits, store.misses) == (0, 0)

    def test_get_many_partial_hits(self, store, seed_run):
        entries = synthetic_entries(seed_run, 5)
        assert store.put_many(entries[:3]) == 3
        found = store.get_many([cfg for cfg, _ in entries])
        assert set(found) == {cfg.cache_key() for cfg, _ in entries[:3]}
        for cfg, result in entries[:3]:
            assert (
                result_to_cache_dict(found[cfg.cache_key()])
                == result_to_cache_dict(result)
            )
        assert (store.hits, store.misses) == (3, 2)

    def test_get_many_counts_duplicates_once(self, store, seed_run):
        config, result = seed_run
        store.put(config, result)
        found = store.get_many([config, config, config])
        assert len(found) == 1
        assert (store.hits, store.misses) == (1, 0)

    def test_len_counts_active_entries(self, store, seed_run):
        assert len(store) == 0
        store.put_many(synthetic_entries(seed_run, 4))
        assert len(store) == 4

    def test_put_overwrites_in_place(self, store, seed_run):
        config, result = seed_run
        store.put(config, result)
        store.put(config, replace(result, completed_reads=42))
        assert len(store) == 1
        assert store.get(config).completed_reads == 42

    def test_corrupt_entry_quarantined_and_miss(self, store, seed_run):
        config, result = seed_run
        store.put(config, result)
        corrupt_entry(store, config)
        assert store.get(config) is None
        assert store.quarantined == 1
        assert store.misses == 1
        assert quarantine_evidence(store) == 1
        # The corrupt entry is gone, not re-served.
        assert not store.contains(config)
        assert len(store) == 0

    def test_concurrent_writer_hammer(self, store, seed_run):
        """8 threads × shared + private keys: exact counters, no errors."""
        entries = synthetic_entries(seed_run, 24)
        shared_cfg, shared_result = seed_run
        per_thread = 3
        errors = []

        def hammer(worker: int) -> None:
            try:
                mine = entries[worker * per_thread : (worker + 1) * per_thread]
                for cfg, result in mine:
                    store.put(cfg, result)
                    assert store.get(cfg) is not None
                store.put(shared_cfg, shared_result)
                store.get_many([cfg for cfg, _ in mine])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(store) == 25  # 24 private + 1 shared
        assert store.writes == 8 * (per_thread + 1)
        assert store.hits == 8 * per_thread * 2
        assert store.quarantined == 0

    def test_stats_payload(self, store, seed_run):
        store.put_many(synthetic_entries(seed_run, 2))
        store.get(seed_run[0])  # one miss
        stats = store.stats()
        assert stats["backend"] in BACKENDS
        assert stats["entries"] == 2
        assert stats["schema"] == store_schema_tag()
        assert stats["size_bytes"] > 0
        assert (stats["hits"], stats["misses"], stats["writes"]) == (0, 1, 2)
        assert stats["quarantined"] == 0

    def test_compact_keeps_live_entries(self, store, seed_run):
        entries = synthetic_entries(seed_run, 3)
        store.put_many(entries)
        summary = store.compact()
        assert summary["removed_entries"] == 0
        assert len(store) == 3
        assert store.get_many([cfg for cfg, _ in entries]).keys() == {
            cfg.cache_key() for cfg, _ in entries
        }

    def test_compact_drops_quarantine_evidence(self, store, seed_run):
        config, result = seed_run
        store.put(config, result)
        corrupt_entry(store, config)
        store.get(config)
        assert quarantine_evidence(store) == 1
        summary = store.compact()
        assert summary["removed_entries"] == 1
        assert quarantine_evidence(store) == 0


class TestJsonDirStore:
    def test_is_a_disk_cache(self, tmp_path):
        """Full back-compat: a JsonDirStore *is* the historical layout."""
        store = JsonDirStore(tmp_path)
        assert isinstance(store, DiskCache)

    def test_layout_shared_with_plain_diskcache(self, tmp_path, seed_run):
        config, result = seed_run
        JsonDirStore(tmp_path).put(config, result)
        legacy = DiskCache(tmp_path)
        assert result_to_cache_dict(legacy.get(config)) == result_to_cache_dict(
            result
        )
        legacy.put(config.replace(seed=2), replace(result, completed_reads=7))
        assert len(JsonDirStore(tmp_path)) == 2

    def test_compact_prunes_stale_schema_dirs(self, tmp_path, seed_run):
        store = JsonDirStore(tmp_path)
        store.put(*seed_run)
        stale = tmp_path / "v1-0.9.0"
        stale.mkdir()
        (stale / "deadbeef.json").write_text("{}")
        summary = store.compact()
        assert summary == {"removed_entries": 1, "removed_dirs": 1}
        assert not stale.exists()
        assert len(store) == 1


class TestSqliteStore:
    def test_stale_schema_rows_are_misses_not_quarantined(
        self, tmp_path, seed_run
    ):
        config, result = seed_run
        store = SqliteStore(tmp_path / "s.sqlite")
        store.put(config, result)
        conn = sqlite3.connect(str(store.path))
        conn.execute("UPDATE results SET schema = 'v1-0.9.0'")
        conn.commit()
        conn.close()
        assert store.get(config) is None
        assert (store.misses, store.quarantined) == (1, 0)
        assert len(store) == 0
        assert store.stats()["stale_entries"] == 1
        summary = store.compact()
        assert summary["removed_stale"] == 1

    def test_concurrent_connections_share_one_file(self, tmp_path, seed_run):
        """Two store instances (two 'processes') see each other's writes."""
        config, result = seed_run
        writer = SqliteStore(tmp_path / "s.sqlite")
        reader = SqliteStore(tmp_path / "s.sqlite")
        writer.put(config, result)
        assert reader.contains(config)
        assert result_to_cache_dict(reader.get(config)) == result_to_cache_dict(
            result
        )

    def test_rejects_directory_path(self, tmp_path):
        with pytest.raises(IsADirectoryError):
            SqliteStore(tmp_path)

    def test_get_many_is_one_query_fast(self, tmp_path, seed_run):
        """The tentpole claim: bulk lookup beats per-key JSON probes."""
        import time

        entries = synthetic_entries(seed_run, 200)
        json_store = JsonDirStore(tmp_path / "json")
        sqlite_store = SqliteStore(tmp_path / "s.sqlite")
        json_store.put_many(entries)
        sqlite_store.put_many(entries)
        configs = [cfg for cfg, _ in entries]

        def best_of(fn, repeats=3):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                found = fn()
                times.append(time.perf_counter() - t0)
                assert len(found) == 200
            return min(times)

        json_time = best_of(
            lambda: {
                cfg.cache_key(): json_store.get(cfg) for cfg in configs
            }
        )
        sqlite_time = best_of(lambda: sqlite_store.get_many(configs))
        assert sqlite_time < json_time, (
            f"SqliteStore.get_many ({sqlite_time * 1e3:.2f} ms) should beat "
            f"per-key JSON probes ({json_time * 1e3:.2f} ms) on a warm "
            f"200-config sweep"
        )


class TestMigration:
    def test_counts_and_payload_equality(self, tmp_path, seed_run):
        entries = synthetic_entries(seed_run, 6)
        source = JsonDirStore(tmp_path)
        source.put_many(entries)
        # One corrupt file must be skipped and counted, not migrated.
        bad = source.directory / ("f" * 24 + ".json")
        bad.write_text("{nope")
        dest = SqliteStore(tmp_path / DEFAULT_SQLITE_FILENAME)
        report = migrate_json_to_sqlite(source, dest, sample=4)
        assert isinstance(report, MigrationReport)
        assert report.scanned == 7
        assert report.migrated == 6
        assert report.skipped_corrupt == 1
        assert report.dest_entries == 6
        assert report.sampled == 4
        assert report.mismatches == []
        assert report.ok
        for cfg, result in entries:
            assert result_to_cache_dict(dest.get(cfg)) == result_to_cache_dict(
                result
            )

    def test_sampled_payloads_are_byte_equal(self, tmp_path, seed_run):
        from repro.store.migrate import _canonical
        from repro.store.sqlite import _decode_payload

        source = JsonDirStore(tmp_path)
        source.put_many(synthetic_entries(seed_run, 3))
        dest = SqliteStore(tmp_path / "m.sqlite")
        report = migrate_json_to_sqlite(source, dest, sample=3)
        assert report.ok and report.sampled == 3
        conn = sqlite3.connect(str(dest.path))
        for path in source.directory.glob("*.json"):
            with open(path) as fh:
                src_payload = json.load(fh)
            row = conn.execute(
                "SELECT payload FROM results WHERE key = ?", (path.stem,)
            ).fetchone()
            assert _canonical(_decode_payload(row[0])) == _canonical(src_payload)
        conn.close()

    def test_mismatched_filename_key_is_skipped(self, tmp_path, seed_run):
        source = JsonDirStore(tmp_path)
        source.put(*seed_run)
        entry = next(source.directory.glob("*.json"))
        entry.rename(entry.with_name("0" * 24 + ".json"))
        dest = SqliteStore(tmp_path / "m.sqlite")
        report = migrate_json_to_sqlite(source, dest)
        assert report.skipped_mismatched_key == 1
        assert report.migrated == 0
        assert report.ok  # skipping is accounted for, not a failure

    def test_cli_migrate_stats_compact(self, tmp_path, seed_run, capsys):
        source = JsonDirStore(tmp_path)
        source.put_many(synthetic_entries(seed_run, 3))
        assert main(["store", "migrate", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "verified           OK" in out
        assert "migrated           3" in out
        assert (tmp_path / DEFAULT_SQLITE_FILENAME).is_file()

        assert main(
            ["store", "stats", "--store", "sqlite", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "backend" in out and "sqlite" in out and "entries" in out

        assert main(
            ["store", "compact", "--store", "sqlite", "--cache-dir",
             str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "removed_entries" in out


class TestMakeStore:
    def test_json_backend(self, tmp_path):
        store = make_store("json", tmp_path)
        assert isinstance(store, JsonDirStore)
        assert store.root == tmp_path

    def test_sqlite_backend_in_directory(self, tmp_path):
        store = make_store("sqlite", tmp_path)
        assert isinstance(store, SqliteStore)
        assert store.path == tmp_path / DEFAULT_SQLITE_FILENAME

    def test_sqlite_backend_explicit_file(self, tmp_path):
        store = make_store("sqlite", tmp_path / "custom.sqlite")
        assert store.path == tmp_path / "custom.sqlite"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_store("redis", tmp_path)


class TestSweepRunnerIntegration:
    def test_sweep_results_bit_identical_across_backends(self, tmp_path):
        """The acceptance bar: either backend serves identical sweeps."""
        base = ExperimentConfig(workload="sp.D", mechanism="VWL",
                                policy="unaware", **FAST)
        grid = grid_configs(base, alphas=[0.05, 0.2])

        def payload(result):
            # wall_time_s is host timing, not simulation output.
            d = result_to_cache_dict(result)
            d.pop("wall_time_s", None)
            return d

        outcomes = {}
        for backend in BACKENDS:
            store = make_store(backend, tmp_path / backend)
            first = SweepRunner(disk_cache=store)
            outcomes[backend] = [payload(r) for r in first.run_all(grid)]
            assert first.runs == len(grid)
            # A fresh runner over the same store must serve everything
            # from the disk tier via one get_many batch.
            second = SweepRunner(disk_cache=store)
            replayed = [payload(r) for r in second.run_all(grid)]
            assert second.runs == 0
            assert second.disk_hits == len(grid)
            assert replayed == outcomes[backend]
        assert outcomes["json"] == outcomes["sqlite"]

    def test_plain_diskcache_still_works(self, tmp_path, seed_run):
        """No get_many on the tier? The per-key fallback still serves."""
        config, result = seed_run
        cache = DiskCache(tmp_path)
        cache.put(config, result)
        runner = SweepRunner(disk_cache=cache)
        outcome = runner.run_all([config])[0]
        assert runner.disk_hits == 1 and runner.runs == 0
        assert result_to_cache_dict(outcome) == result_to_cache_dict(result)
