"""Tests for unit conventions."""

import pytest

from repro.units import (
    GB,
    KB,
    MB,
    MS,
    NS,
    S,
    US,
    gbps_lane_to_bytes_per_ns,
    ns_to_s,
    s_to_ns,
)


class TestTimeUnits:
    def test_hierarchy(self):
        assert US == 1000 * NS
        assert MS == 1000 * US
        assert S == 1000 * MS

    def test_conversions_roundtrip(self):
        assert ns_to_s(s_to_ns(1.5)) == pytest.approx(1.5)
        assert s_to_ns(1.0) == 1e9


class TestCapacityUnits:
    def test_binary_prefixes(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB


class TestBandwidth:
    def test_full_hmc_link(self):
        # 16 lanes x 12.5 Gbps = 25 bytes/ns per direction.
        assert gbps_lane_to_bytes_per_ns(12.5, 16) == pytest.approx(25.0)

    def test_single_lane(self):
        assert gbps_lane_to_bytes_per_ns(8.0, 1) == pytest.approx(1.0)

    def test_flit_time_consistency(self):
        # One 16 B flit over the full link takes 0.64 ns.
        bw = gbps_lane_to_bytes_per_ns(12.5, 16)
        assert 16 / bw == pytest.approx(0.64)
