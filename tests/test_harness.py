"""Tests for the experiment runner, sweeps, and report formatting."""

import pytest

from repro.harness.experiment import (
    ExperimentConfig,
    POLICY_NAMES,
    run_experiment,
)
from repro.harness.report import format_percent, format_table, format_watts
from repro.harness.sweep import SweepRunner, grid_configs

FAST = dict(window_ns=60_000.0, epoch_ns=15_000.0)


class TestConfigValidation:
    def test_defaults(self):
        cfg = ExperimentConfig(workload="lu.D")
        assert cfg.policy == "none" and cfg.mechanism == "FP"
        assert cfg.scale == "small"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(workload="lu.D", policy="magic")

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(workload="lu.D", mechanism="SLEEPY")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(workload="lu.D", scale="medium")

    def test_bad_mapping_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(workload="lu.D", mapping="random")

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(workload="lu.D", window_ns=0)

    def test_replace(self):
        cfg = ExperimentConfig(workload="lu.D")
        other = cfg.replace(alpha=0.1)
        assert other.alpha == 0.1 and cfg.alpha == 0.05

    def test_baseline_strips_management(self):
        cfg = ExperimentConfig(
            workload="lu.D", mechanism="VWL+ROO", policy="aware", alpha=0.1
        )
        base = cfg.baseline()
        assert base.mechanism == "FP" and base.policy == "none"
        assert base.workload == cfg.workload
        assert base.window_ns == cfg.window_ns

    def test_mechanism_case_canonicalized(self):
        cfg = ExperimentConfig(workload="lu.D", mechanism="vwl+roo")
        assert cfg.mechanism == "VWL+ROO"
        assert cfg == ExperimentConfig(workload="lu.D", mechanism="VWL+ROO")
        assert hash(cfg) == hash(ExperimentConfig(workload="lu.D", mechanism="VWL+ROO"))

    def test_cache_key_ignores_observability(self):
        cfg = ExperimentConfig(workload="lu.D", mechanism="VWL", policy="unaware")
        assert cfg.cache_key() == cfg.replace(collect_link_hours=True).cache_key()
        assert cfg.cache_key() != cfg.replace(alpha=0.1).cache_key()

    def test_config_hashable(self):
        a = ExperimentConfig(workload="lu.D")
        b = ExperimentConfig(workload="lu.D")
        assert a == b and hash(a) == hash(b)

    def test_policy_names(self):
        assert set(POLICY_NAMES) == {"none", "unaware", "aware", "static"}


class TestRunExperiment:
    def test_result_fields_populated(self):
        res = run_experiment(ExperimentConfig(workload="lu.D", **FAST))
        assert res.num_modules == 3
        assert res.completed_reads > 0
        assert res.power_per_hmc_w > 0
        assert res.network_power_w == pytest.approx(res.power_per_hmc_w * 3)
        assert 0 < res.idle_io_fraction < 1
        assert res.avg_read_latency_ns > 30.0

    def test_managed_run_reports_epochs(self):
        res = run_experiment(
            ExperimentConfig(workload="lu.D", mechanism="VWL", policy="unaware", **FAST)
        )
        assert res.epochs == 3

    def test_link_hours_collected_when_requested(self):
        res = run_experiment(
            ExperimentConfig(
                workload="lu.D", mechanism="VWL", policy="unaware",
                collect_link_hours=True, **FAST,
            )
        )
        assert res.link_hours

    def test_link_hours_absent_by_default(self):
        res = run_experiment(ExperimentConfig(workload="lu.D", **FAST))
        assert res.link_hours is None

    def test_interleaved_mapping_runs(self):
        res = run_experiment(
            ExperimentConfig(workload="lu.D", mapping="interleaved", **FAST)
        )
        assert res.completed_reads > 0

    def test_big_scale_uses_more_modules(self):
        small = run_experiment(ExperimentConfig(workload="lu.D", **FAST))
        big = run_experiment(ExperimentConfig(workload="lu.D", scale="big", **FAST))
        assert big.num_modules == 9 and small.num_modules == 3

    def test_determinism(self):
        cfg = ExperimentConfig(workload="sp.D", seed=5, **FAST)
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.completed_reads == b.completed_reads
        assert a.breakdown.watts == b.breakdown.watts


class TestSweepRunner:
    def test_cache_hits(self):
        runner = SweepRunner()
        cfg = ExperimentConfig(workload="sp.D", **FAST)
        runner.run(cfg)
        runner.run(cfg)
        assert runner.runs == 1

    def test_run_with_baseline(self):
        runner = SweepRunner()
        cfg = ExperimentConfig(workload="sp.D", mechanism="VWL", policy="unaware", **FAST)
        managed, baseline = runner.run_with_baseline(cfg)
        assert baseline.config.mechanism == "FP"
        assert runner.runs == 2

    def test_power_reduction_sign(self):
        runner = SweepRunner()
        cfg = ExperimentConfig(
            workload="sp.D", mechanism="VWL+ROO", policy="aware",
            window_ns=100_000.0, epoch_ns=20_000.0,
        )
        reduction = runner.power_reduction_vs_baseline(cfg)
        assert 0.0 < reduction < 1.0

    def test_compare_same_config_is_zero(self):
        runner = SweepRunner()
        cfg = ExperimentConfig(workload="sp.D", **FAST)
        assert runner.compare(cfg, cfg) == 0.0

    def test_grid_configs_cartesian(self):
        base = ExperimentConfig(workload="lu.D", **FAST)
        grid = grid_configs(
            base,
            workloads=["lu.D", "sp.D"],
            mechanisms=["VWL", "ROO"],
            alphas=[0.025, 0.05],
        )
        assert len(grid) == 8
        assert len(set(grid)) == 8

    def test_grid_configs_empty_axes_keep_base(self):
        base = ExperimentConfig(workload="lu.D", **FAST)
        grid = grid_configs(base)
        assert grid == [base]


class TestReport:
    def test_format_percent(self):
        assert format_percent(0.234) == "23.4%"
        assert format_percent(0.005, digits=2) == "0.50%"

    def test_format_watts(self):
        assert format_watts(1.2345) == "1.23 W"

    def test_format_table_aligns(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert len({len(l) for l in lines[3:]}) >= 1  # renders without error

    def test_format_table_empty_rows(self):
        table = format_table(["h1"], [])
        assert "h1" in table
