"""Unit tests for packet and flit definitions."""

import pytest

from repro.network.packets import (
    FLIT_BYTES,
    LINE_BYTES,
    Packet,
    PacketKind,
    flits_for,
)


class TestFlitCounts:
    def test_flit_is_16_bytes(self):
        assert FLIT_BYTES == 16

    def test_line_is_64_bytes(self):
        assert LINE_BYTES == 64

    def test_read_request_is_single_flit(self):
        # Section II-B: a read request packet is one 16 B flit.
        assert flits_for(PacketKind.READ_REQ) == 1

    def test_write_request_is_five_flits(self):
        # Header plus a 64 B line.
        assert flits_for(PacketKind.WRITE_REQ) == 5

    def test_read_response_is_five_flits(self):
        assert flits_for(PacketKind.READ_RESP) == 5

    def test_response_is_5x_request(self):
        # The amplification the paper's request-link ROO penalty models.
        assert flits_for(PacketKind.READ_RESP) == 5 * flits_for(PacketKind.READ_REQ)


class TestPacketKind:
    def test_read_req_is_read_and_request(self):
        assert PacketKind.READ_REQ.is_read
        assert PacketKind.READ_REQ.is_request

    def test_write_req_is_request_not_read(self):
        assert not PacketKind.WRITE_REQ.is_read
        assert PacketKind.WRITE_REQ.is_request

    def test_read_resp_is_read_not_request(self):
        assert PacketKind.READ_RESP.is_read
        assert not PacketKind.READ_RESP.is_request


class TestPacket:
    def test_bytes_matches_flits(self):
        pkt = Packet(kind=PacketKind.READ_RESP, address=0x1000, dest=2)
        assert pkt.bytes == 5 * FLIT_BYTES
        assert pkt.flits == 5

    def test_packet_ids_unique(self):
        a = Packet(kind=PacketKind.READ_REQ, address=0, dest=0)
        b = Packet(kind=PacketKind.READ_REQ, address=0, dest=0)
        assert a.pkt_id != b.pkt_id

    def test_defaults(self):
        pkt = Packet(kind=PacketKind.READ_REQ, address=64, dest=1)
        assert pkt.src == -1  # processor
        assert pkt.issue_time == 0.0
        assert pkt.dram_start is None
