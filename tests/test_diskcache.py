"""Tests for the persistent on-disk result cache and its SweepRunner
integration: cross-invocation reuse, schema invalidation, observability
sufficiency, cache-key aliasing, and concurrent reader/writer safety."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.harness import diskcache as dc
from repro.harness.diskcache import DiskCache, default_cache_dir
from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import SweepRunner, grid_configs

FAST = dict(window_ns=40_000.0, epoch_ns=15_000.0)


@pytest.fixture()
def cfg():
    return ExperimentConfig(workload="sp.D", mechanism="VWL", policy="unaware", **FAST)


class TestCacheKey:
    def test_case_aliases_share_a_key(self):
        lower = ExperimentConfig(workload="sp.D", mechanism="vwl+roo", **FAST)
        upper = ExperimentConfig(workload="sp.D", mechanism="VWL+ROO", **FAST)
        assert lower == upper
        assert lower.cache_key() == upper.cache_key()

    def test_observability_flags_share_a_key(self, cfg):
        assert cfg.cache_key() == cfg.replace(collect_link_hours=True).cache_key()

    def test_simulation_fields_split_keys(self, cfg):
        for change in (
            dict(seed=2), dict(alpha=0.1), dict(workload="lu.D"),
            dict(topology="star"), dict(mechanism="ROO"), dict(policy="aware"),
            dict(window_ns=50_000.0), dict(wake_ns=20.0),
            dict(mapping="interleaved"), dict(scale="big"),
        ):
            assert cfg.cache_key() != cfg.replace(**change).cache_key(), change

    def test_baseline_normalizes_non_simulation_fields(self, cfg):
        # With policy "none" / mechanism "FP", alpha and wake_ns are
        # inert; baselines of different managed points must collapse
        # into one simulation.
        a = cfg.replace(alpha=0.025).baseline()
        b = cfg.replace(alpha=0.05, wake_ns=20.0).baseline()
        assert a.cache_key() == b.cache_key()


class TestDiskCache:
    def test_miss_then_hit_roundtrip(self, tmp_path, cfg):
        cache = DiskCache(tmp_path)
        assert cache.get(cfg) is None
        assert cache.misses == 1
        runner = SweepRunner()
        result = runner.run(cfg)
        cache.put(cfg, result)
        assert len(cache) == 1
        again = cache.get(cfg)
        assert cache.hits == 1
        assert again == result  # full dataclass equality, floats exact

    def test_schema_bump_invalidates(self, tmp_path, cfg, monkeypatch):
        cache = DiskCache(tmp_path)
        cache.put(cfg, SweepRunner().run(cfg))
        monkeypatch.setattr(dc, "SCHEMA_VERSION", dc.SCHEMA_VERSION + 1)
        fresh = DiskCache(tmp_path)
        assert fresh.get(cfg) is None
        assert len(fresh) == 0

    def test_v1_entries_are_misses_under_v2(self, tmp_path, cfg, monkeypatch):
        """Entries written under schema v1 (before mechanism_overrides
        joined the payload) are silently skipped, never read as stale
        hits and never crashed on."""
        assert dc.SCHEMA_VERSION == 2
        monkeypatch.setattr(dc, "SCHEMA_VERSION", 1)
        old = DiskCache(tmp_path)
        v1_path = old.put(cfg, SweepRunner().run(cfg))
        monkeypatch.setattr(dc, "SCHEMA_VERSION", 2)
        fresh = DiskCache(tmp_path)
        assert fresh.get(cfg) is None
        assert fresh.misses == 1
        assert fresh.quarantined == 0  # a miss, not corruption
        assert len(fresh) == 0
        # The v1 entry is untouched on disk for anyone still on v1.
        assert v1_path.exists()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, cfg):
        cache = DiskCache(tmp_path)
        cache.put(cfg, SweepRunner().run(cfg))
        cache.path_for(cfg).write_text("{ truncated")
        assert cache.get(cfg) is None
        assert not cache.path_for(cfg).exists()

    def test_root_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "plain-file"
        not_a_dir.write_text("")
        with pytest.raises(NotADirectoryError):
            DiskCache(not_a_dir)

    def test_default_root_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert DiskCache().root == tmp_path / "alt"


class TestSweepRunnerWithDiskCache:
    def test_second_invocation_simulates_nothing(self, tmp_path):
        """Acceptance: a fresh runner over a warm disk cache does zero
        simulations on a fig15-style grid, proven by the counters."""
        base = ExperimentConfig(workload="sp.D", **FAST)
        grid = grid_configs(
            base, mechanisms=["VWL", "ROO"], policies=["unaware", "aware"],
            alphas=[0.025, 0.05],
        )
        first = SweepRunner(disk_cache=DiskCache(tmp_path))
        results = first.run_all(grid)
        assert first.runs == len(grid)
        second = SweepRunner(disk_cache=DiskCache(tmp_path))
        replayed = second.run_all(grid)
        assert second.runs == 0
        assert second.disk_hits == len(grid)
        assert replayed == results

    def test_cached_run_without_link_hours_is_rerun(self, tmp_path, cfg):
        runner = SweepRunner(disk_cache=DiskCache(tmp_path))
        plain = runner.run(cfg)
        assert plain.link_hours is None
        rich = runner.run(cfg.replace(collect_link_hours=True))
        assert runner.runs == 2  # the plain cache entry did not satisfy
        assert rich.link_hours
        # The richer run overwrote both layers; now either request hits.
        fresh = SweepRunner(disk_cache=DiskCache(tmp_path))
        assert fresh.run(cfg.replace(collect_link_hours=True)).link_hours
        assert fresh.run(cfg) == rich
        assert fresh.runs == 0

    def test_run_all_prefers_richer_alias(self, cfg):
        runner = SweepRunner()
        results = runner.run_all([cfg, cfg.replace(collect_link_hours=True)])
        assert runner.runs == 1
        assert results[0].link_hours is not None
        assert results[0] is results[1]

    def test_case_alias_never_double_simulates(self, tmp_path):
        runner = SweepRunner(disk_cache=DiskCache(tmp_path))
        lower = ExperimentConfig(
            workload="sp.D", mechanism="vwl", policy="unaware", **FAST
        )
        upper = ExperimentConfig(
            workload="sp.D", mechanism="VWL", policy="unaware", **FAST
        )
        assert runner.run(lower) is runner.run(upper)
        assert runner.runs == 1

    def test_memory_layer_preferred_over_disk(self, tmp_path, cfg):
        runner = SweepRunner(disk_cache=DiskCache(tmp_path))
        runner.run(cfg)
        runner.run(cfg)
        assert runner.memory_hits == 1
        assert runner.disk_cache.hits == 0


class TestDiskCacheConcurrency:
    """One shared DiskCache under a thread pool (the serving workload:
    every HTTP handler thread funnels through a single instance)."""

    THREADS = 8
    ROUNDS = 25

    def test_thread_pool_hammering_one_key(self, tmp_path, cfg):
        cache = DiskCache(tmp_path)
        result = SweepRunner().run(cfg)
        bad = []
        barrier = threading.Barrier(self.THREADS)

        def hammer(_worker: int) -> None:
            barrier.wait()  # maximize overlap
            for _ in range(self.ROUNDS):
                cache.put(cfg, result)
                got = cache.get(cfg)
                # Writes are atomic: a concurrent reader sees a complete
                # entry (old or new), never a torn one and never a miss.
                if got != result:
                    bad.append(got)

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            for future in [
                pool.submit(hammer, i) for i in range(self.THREADS)
            ]:
                future.result()
        total = self.THREADS * self.ROUNDS
        assert not bad
        assert cache.writes == total
        assert cache.hits == total
        assert cache.misses == 0
        assert cache.quarantined == 0
        assert len(cache) == 1  # no stray tmp files counted as entries
        assert cache.get(cfg) == result

    def test_concurrent_quarantine_counts_once(self, tmp_path, cfg):
        cache = DiskCache(tmp_path)
        cache.put(cfg, SweepRunner().run(cfg))
        cache.path_for(cfg).write_text("{ torn")
        barrier = threading.Barrier(self.THREADS)

        def read(_worker: int):
            barrier.wait()
            return cache.get(cfg)

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            results = [
                f.result()
                for f in [pool.submit(read, i) for i in range(self.THREADS)]
            ]
        # Every racer sees a miss; exactly one wins the quarantine move.
        assert results == [None] * self.THREADS
        assert cache.misses == self.THREADS
        assert cache.quarantined == 1
        assert not cache.path_for(cfg).exists()
        quarantine = cache.directory / "quarantine"
        assert len(list(quarantine.glob("*.json"))) == 1
