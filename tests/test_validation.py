"""Tests for the runtime invariant-audit and validation subsystem.

Covers the checker registry, the sabotage self-tests (a seeded
mis-accounting must be caught by exactly the targeted invariant),
tolerance-band edges, the ``--audit`` wiring (bit-identity, cache-key
neutrality, strict/warn policy), the ``repro-mnet validate`` CLI, and
the doc/CLI drift guard in ``scripts/check_docs_links.py``.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.harness.builder import SimulationBuilder
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.io import config_to_dict
from repro.validation import (
    CHECKS,
    AuditViolationError,
    SABOTAGES,
    ValidationReport,
    Violation,
    validate_config,
)
from repro.validation.audit import audit_simulation, finalize_audit
from repro.validation.checks import checks_for_scope

#: Short but multi-epoch config used throughout; managed, so the
#: epoch auditor actually wires and fires.
MANAGED = ExperimentConfig(
    workload="mixB",
    topology="daisychain",
    mechanism="VWL+ROO",
    policy="unaware",
    window_ns=60_000.0,
    epoch_ns=15_000.0,
)

#: Unmanaged full-power config: exercises the differential checker.
UNMANAGED = ExperimentConfig(
    workload="mixB",
    topology="ternary_tree",
    mechanism="FP",
    policy="none",
    window_ns=60_000.0,
)


def _run_audited(config):
    simulation = SimulationBuilder(config.replace(audit="strict")).build()
    simulation.run()
    return simulation


class TestRegistry:
    def test_all_checks_have_metadata(self):
        assert len(CHECKS) >= 6
        for name in CHECKS.names():
            fn = CHECKS.get(name)
            assert fn.scope in ("end", "epoch", "both"), name
            assert fn.description, name

    def test_scope_partition(self):
        end = set(checks_for_scope("end"))
        epoch = set(checks_for_scope("epoch"))
        # "both"-scoped checkers appear in each list; every checker
        # appears in at least one.
        assert end | epoch == {CHECKS.get(n) for n in CHECKS.names()}


class TestCleanRuns:
    @pytest.mark.parametrize("config", [MANAGED, UNMANAGED], ids=["managed", "fp"])
    def test_zero_violations(self, config):
        report = validate_config(config)
        assert report.passed, [v.describe() for v in report.violations]
        assert report.checks_run > 0
        assert len(report.configs) == 1

    def test_epoch_auditor_wired_and_fired(self):
        simulation = _run_audited(MANAGED)
        assert simulation.auditor is not None
        assert simulation.auditor.epoch >= 3  # 60 us window / 15 us epochs
        assert simulation.auditor.checks_run > 0
        assert not simulation.auditor.violations

    def test_unmanaged_runs_have_no_epoch_auditor(self):
        simulation = _run_audited(UNMANAGED)
        assert simulation.auditor is None

    def test_run_experiment_strict_passes_clean(self):
        result = run_experiment(MANAGED.replace(audit="strict"))
        assert result.power_per_hmc_w > 0


#: sabotage kind -> checker(s) that must fire on it.
SABOTAGE_EXPECTED = {
    "io-skew": {"link_residency_energy", "differential_power", "energy_conservation"},
    "flit-drop": {"energy_conservation"},
    "residency-skew": {"link_residency_energy", "residency_partition"},
    "read-leak": {"flit_conservation"},
    "queue-overflow": {"queue_balance"},
}


class TestSabotage:
    def test_every_sabotage_kind_is_covered(self):
        assert set(SABOTAGE_EXPECTED) == set(SABOTAGES)

    @pytest.mark.parametrize("kind", sorted(SABOTAGES))
    def test_sabotage_is_detected_by_targeted_check(self, kind):
        report = validate_config(MANAGED, sabotage=kind)
        assert not report.passed, f"sabotage {kind} went undetected"
        fired = {v.check for v in report.errors}
        assert fired & SABOTAGE_EXPECTED[kind], (
            f"{kind} fired {fired}, expected overlap with "
            f"{SABOTAGE_EXPECTED[kind]}"
        )

    def test_violations_carry_structured_evidence(self):
        report = validate_config(MANAGED, sabotage="io-skew")
        violation = report.errors[0]
        assert violation.sim_time_ns > 0
        assert violation.quantities, "violation lacks offending quantities"
        assert violation.tolerance is not None
        d = violation.to_dict()
        assert {"check", "message", "sim_time_ns", "quantities"} <= set(d)


class TestToleranceEdges:
    """Perturbations inside the declared band must NOT fire; the same
    perturbation scaled past the band must."""

    def test_sub_tolerance_ledger_skew_passes(self):
        simulation = _run_audited(MANAGED)
        # logic_dyn_j == flits_routed * e_flit_j is exact (REL_EXACT =
        # 1e-9), so a 1e-12 relative skew sits inside the band ...
        simulation.network.modules[0].ledger.logic_dyn_j *= 1.0 + 1e-12
        report = audit_simulation(simulation)
        assert report.passed, [v.describe() for v in report.violations]

    def test_past_tolerance_ledger_skew_fails(self):
        simulation = _run_audited(MANAGED)
        # ... while the same skew at 1e-6 must fire.
        simulation.network.modules[0].ledger.logic_dyn_j *= 1.0 + 1e-6
        report = audit_simulation(simulation)
        assert not report.passed
        assert {v.check for v in report.errors} == {"energy_conservation"}

    def test_sub_tolerance_residency_skew_passes(self):
        simulation = _run_audited(MANAGED)
        link = simulation.network.all_links()[0]
        link.mode_time_ns[0] += 1e-9  # 1e-9 ns on a 60 us window
        report = audit_simulation(simulation)
        assert report.passed, [v.describe() for v in report.violations]


class TestAuditPolicy:
    def test_strict_raises_with_report(self):
        simulation = _run_audited(MANAGED)
        SABOTAGES["io-skew"][1](simulation)
        with pytest.raises(AuditViolationError) as excinfo:
            finalize_audit(simulation, mode="strict")
        assert isinstance(excinfo.value.report, ValidationReport)
        assert excinfo.value.report.errors
        assert "violation" in str(excinfo.value)

    def test_warn_prints_but_returns(self, capsys):
        simulation = _run_audited(MANAGED)
        SABOTAGES["io-skew"][1](simulation)
        report = finalize_audit(simulation, mode="warn")
        assert not report.passed
        err = capsys.readouterr().err
        assert "audit:" in err

    def test_bad_mode_rejected(self):
        simulation = _run_audited(MANAGED)
        with pytest.raises(ValueError):
            finalize_audit(simulation, mode="loud")
        with pytest.raises(ValueError):
            MANAGED.replace(audit="loud")


class TestAuditNeutrality:
    """Audit is observability: it must never change what is simulated,
    what is cached, or what golden files contain."""

    def test_bit_identical_results(self):
        plain = run_experiment(MANAGED)
        audited = run_experiment(MANAGED.replace(audit="strict"))
        assert plain.breakdown.watts == audited.breakdown.watts
        assert plain.power_per_hmc_w == audited.power_per_hmc_w
        assert plain.throughput_per_s == audited.throughput_per_s

    def test_cache_key_ignores_audit(self):
        assert MANAGED.cache_key() == MANAGED.replace(audit="strict").cache_key()

    def test_config_dict_omits_empty_audit(self):
        assert "audit" not in config_to_dict(MANAGED)
        assert config_to_dict(MANAGED.replace(audit="warn"))["audit"] == "warn"


class TestReport:
    def _sabotaged_report(self):
        return validate_config(MANAGED, sabotage="residency-skew")

    def test_json_roundtrip(self, tmp_path):
        report = self._sabotaged_report()
        out = tmp_path / "report.json"
        report.write_json(out)
        data = json.loads(out.read_text())
        assert data["schema"] == "repro-mnet-validate/v1"
        assert data["passed"] is False
        assert data["violations"], "violations missing from JSON report"
        assert data["checks_run"] == report.checks_run

    def test_markdown_has_violation_table(self):
        md = self._sabotaged_report().to_markdown()
        assert "| check |" in md or "| Check |" in md
        assert "residency" in md

    def test_merge_accumulates(self):
        a, b = ValidationReport(), ValidationReport()
        a.add(Violation(check="x", message="m"))
        a.checks_run = 3
        b.checks_run = 4
        b.merge(a)
        assert b.checks_run == 7
        assert len(b.violations) == 1


class TestValidateCli:
    def test_parser_accepts_validate(self):
        args = build_parser().parse_args(["validate", "--quick"])
        assert args.command == "validate"
        assert args.quick

    def test_list_checks_exits_zero(self, capsys):
        assert main(["validate", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for name in CHECKS.names():
            assert name in out
        for kind in SABOTAGES:
            assert kind in out

    def test_unknown_sabotage_exits_two(self, capsys):
        assert main(["validate", "--sabotage", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_run_audit_flag_modes(self):
        parser = build_parser()
        assert parser.parse_args(["run"]).audit == ""
        assert parser.parse_args(["run", "--audit"]).audit == "strict"
        assert parser.parse_args(["run", "--audit", "warn"]).audit == "warn"


class TestCliDriftGuard:
    """Unit tests for the doc/CLI drift half of check_docs_links."""

    def _drift(self, tmp_path, text):
        from scripts.check_docs_links import cli_drift

        (tmp_path / "doc.md").write_text(text)
        return cli_drift(tmp_path)

    def test_valid_invocation_is_clean(self, tmp_path):
        assert self._drift(
            tmp_path, "```\nrepro-mnet validate --quick --json out.json\n```\n"
        ) == []

    def test_unknown_flag_reported(self, tmp_path):
        problems = self._drift(tmp_path, "Run `repro-mnet run --no-such-flag`.\n")
        assert len(problems) == 1
        assert "--no-such-flag" in problems[0][1]

    def test_unknown_subcommand_reported(self, tmp_path):
        problems = self._drift(tmp_path, "Use `repro-mnet frobnicate --quick`.\n")
        assert len(problems) == 1
        assert "frobnicate" in problems[0][1]

    def test_prose_mention_is_ignored(self, tmp_path):
        assert self._drift(
            tmp_path,
            "The `repro-mnet` simulator models HMC networks.\n"
            "Results live in ~/.cache/repro-mnet by default.\n",
        ) == []

    def test_multiline_continuation_scans_as_one_command(self, tmp_path):
        assert self._drift(
            tmp_path,
            "```\nrepro-mnet run --workload mixB \\\n"
            "  --audit strict --no-cache\n```\n",
        ) == []
