"""Tests for the hardware-overhead accounting."""

import pytest

from repro.core.hardware_cost import (
    CounterBudget,
    ISP_MESSAGE_BYTES,
    link_counter_bits,
    module_counter_bits,
    network_overhead,
)
from repro.core.mechanisms import make_mechanism
from repro.network.topology import daisychain, ternary_tree


class TestCounterBudget:
    def test_total_sums_fields(self):
        budget = CounterBudget(delay_monitors=10, actual_latency=5, equation1=1)
        assert budget.total_bits == 16
        assert budget.total_bytes == 2.0


class TestLinkCounters:
    def test_fp_needs_only_full_power_monitor(self):
        budget = link_counter_bits(make_mechanism("FP"), network_aware=False)
        assert budget.idle_histogram == 0
        assert budget.congestion == 0
        assert budget.delay_monitors > 0

    def test_roo_adds_histogram_and_sampling(self):
        fp = link_counter_bits(make_mechanism("FP"), False)
        roo = link_counter_bits(make_mechanism("ROO"), False)
        assert roo.idle_histogram > 0
        assert roo.wake_sampling > 0
        assert roo.total_bits > fp.total_bits

    def test_more_width_modes_more_monitors(self):
        vwl = link_counter_bits(make_mechanism("VWL"), False)
        fp = link_counter_bits(make_mechanism("FP"), False)
        assert vwl.delay_monitors == 4 * fp.delay_monitors

    def test_aware_adds_congestion_counters(self):
        unaware = link_counter_bits(make_mechanism("VWL"), False)
        aware = link_counter_bits(make_mechanism("VWL"), True)
        assert aware.congestion > 0
        assert aware.total_bits > unaware.total_bits

    def test_per_link_state_is_small(self):
        # The paper's cheapness claim: well under a kilobyte per link.
        budget = link_counter_bits(make_mechanism("DVFS+ROO"), True)
        assert budget.total_bytes < 1024


class TestModuleCounters:
    def test_equation1_state(self):
        budget = module_counter_bits()
        assert budget.equation1 > 0
        assert budget.total_bytes < 64


class TestNetworkOverhead:
    def test_unaware_sends_no_messages(self):
        overhead = network_overhead(
            daisychain(5), make_mechanism("VWL"), network_aware=False
        )
        assert overhead.isp_messages_per_epoch == 0
        assert overhead.isp_wire_time_ns == 0.0

    def test_isp_message_count(self):
        overhead = network_overhead(
            ternary_tree(13), make_mechanism("VWL"), network_aware=True,
            isp_iterations=3,
        )
        # 3 iterations x (gather + scatter) x 13 modules.
        assert overhead.isp_messages_per_epoch == 3 * 2 * 13
        assert overhead.isp_bytes_per_epoch == overhead.isp_messages_per_epoch * ISP_MESSAGE_BYTES

    def test_isp_traffic_negligible(self):
        # The distributed algorithm's wire time is a vanishing fraction
        # of a 100 us epoch even for large networks.
        overhead = network_overhead(
            daisychain(34), make_mechanism("VWL+ROO"), network_aware=True
        )
        assert overhead.isp_wire_fraction_of_epoch < 0.01

    def test_counter_state_scales_linearly(self):
        small = network_overhead(daisychain(4), make_mechanism("VWL"), True)
        big = network_overhead(daisychain(8), make_mechanism("VWL"), True)
        assert big.total_counter_bits == 2 * small.total_counter_bits

    def test_per_module_bytes_modest(self):
        overhead = network_overhead(
            ternary_tree(13), make_mechanism("DVFS+ROO"), network_aware=True
        )
        assert overhead.counter_bytes_per_module < 2048
