"""Tests for customized power models (non-default technologies)."""

import pytest

from repro.network.topology import Radix
from repro.power.hmc_power import HmcPowerModel


class TestCustomModels:
    def test_scaled_peak_scales_everything(self):
        base = HmcPowerModel()
        double = HmcPowerModel(high_radix_peak_w=26.8)
        assert double.dram_peak_w(Radix.HIGH) == pytest.approx(
            2 * base.dram_peak_w(Radix.HIGH)
        )
        assert double.link_endpoint_w() == pytest.approx(
            2 * base.link_endpoint_w()
        )

    def test_alternative_breakdown(self):
        model = HmcPowerModel(
            dram_fraction=0.5, logic_fraction=0.2, io_fraction=0.3
        )
        assert model.io_peak_w(Radix.HIGH) == pytest.approx(13.4 * 0.3)

    def test_breakdown_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HmcPowerModel(dram_fraction=0.4, logic_fraction=0.4, io_fraction=0.4)

    def test_idle_fraction_overrides(self):
        aggressive = HmcPowerModel(dram_idle_fraction=0.02)
        default = HmcPowerModel()
        assert aggressive.dram_leakage_w(Radix.HIGH) < default.dram_leakage_w(Radix.HIGH)

    def test_custom_model_flows_into_network(self):
        from repro.core.mechanisms import make_mechanism
        from repro.network import MemoryNetwork, build_topology
        from repro.sim import Simulator
        from repro.workloads.mapping import AddressMapping

        cheap = HmcPowerModel(high_radix_peak_w=6.7)
        sim = Simulator()
        net = MemoryNetwork(
            sim,
            build_topology("daisychain", 2),
            make_mechanism("FP"),
            AddressMapping(num_modules=2, granularity_bytes=1024**3),
            power_model=cheap,
        )
        net.start()
        sim.run(until=1e5)
        net.finalize(1e5)
        total = sum(m.ledger.total_j for m in net.modules)
        # Half the peak power model burns half the idle energy.
        default_endpoint = HmcPowerModel().link_endpoint_w()
        assert net.channel_req.endpoint_w == pytest.approx(default_endpoint / 2)
        assert total > 0
