"""Unit tests for the DRAM vault timing model (Table I)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import DEFAULT_TIMING, DramTiming, Vault, VaultSet


class TestTiming:
    def test_table1_parameters(self):
        t = DEFAULT_TIMING
        assert t.capacity_bytes == 4 * 1024**3
        assert t.vaults == 32
        assert t.vault_data_rate_gbps == 2.0
        assert t.vault_io_width == 32
        assert t.vault_buffer_entries == 16
        assert (t.tCL, t.tRCD, t.tRAS, t.tRP, t.tRRD, t.tWR) == (
            11, 11, 22, 11, 5, 12,
        )

    def test_burst_is_8ns(self):
        # 64 B * 8 bits over 32 lanes at 2 Gbps.
        assert DEFAULT_TIMING.burst_ns == pytest.approx(8.0)

    def test_read_latency_is_30ns(self):
        # The figure the paper uses in its slowdown accounting.
        assert DEFAULT_TIMING.read_latency_ns == pytest.approx(30.0)

    def test_row_cycle(self):
        assert DEFAULT_TIMING.read_bank_occupancy_ns == pytest.approx(33.0)

    def test_peak_rate(self):
        # 32 vaults, one line per 8 ns each -> 4 accesses/ns = 256 GB/s.
        assert DEFAULT_TIMING.max_accesses_per_ns == pytest.approx(4.0)

    def test_invalid_vaults_rejected(self):
        with pytest.raises(ValueError):
            DramTiming(vaults=0)


class TestVault:
    def test_unloaded_read_latency(self):
        v = Vault(DEFAULT_TIMING)
        access = v.access(100.0, bank=0, is_read=True)
        assert access.start == 100.0
        assert access.data_ready == pytest.approx(130.0)

    def test_same_bank_reads_serialize_on_row_cycle(self):
        v = Vault(DEFAULT_TIMING)
        first = v.access(0.0, bank=0, is_read=True)
        second = v.access(0.0, bank=0, is_read=True)
        assert second.start >= first.done

    def test_different_banks_overlap_but_respect_trrd(self):
        v = Vault(DEFAULT_TIMING)
        first = v.access(0.0, bank=0, is_read=True)
        second = v.access(0.0, bank=1, is_read=True)
        assert second.start == pytest.approx(first.start + DEFAULT_TIMING.tRRD)
        assert second.start < first.done

    def test_data_bus_serializes_bursts(self):
        v = Vault(DEFAULT_TIMING)
        accesses = [v.access(0.0, bank=b, is_read=True) for b in range(4)]
        ready = [a.data_ready for a in accesses]
        for earlier, later in zip(ready, ready[1:]):
            assert later >= earlier + DEFAULT_TIMING.burst_ns - 1e-9

    def test_write_occupancy_includes_twr(self):
        v = Vault(DEFAULT_TIMING)
        w = v.access(0.0, bank=0, is_read=False)
        t = DEFAULT_TIMING
        assert w.done == pytest.approx(
            w.start + t.tRCD + t.burst_ns + t.tWR + t.tRP
        )

    def test_queue_backpressure_when_full(self):
        v = Vault(DEFAULT_TIMING)
        for _ in range(DEFAULT_TIMING.vault_buffer_entries):
            v.access(0.0, bank=0, is_read=True)
        overflow = v.access(0.0, bank=0, is_read=True)
        # The 17th access cannot start until a queue entry frees up.
        assert overflow.start > 0.0

    def test_counters(self):
        v = Vault(DEFAULT_TIMING)
        v.access(0.0, 0, True)
        v.access(0.0, 1, False)
        assert v.reads == 1 and v.writes == 1 and v.accesses == 2

    def test_busy_time_accumulates_bursts(self):
        v = Vault(DEFAULT_TIMING)
        v.access(0.0, 0, True)
        v.access(0.0, 1, True)
        assert v.busy_ns == pytest.approx(2 * DEFAULT_TIMING.burst_ns)


class TestVaultSet:
    def test_line_interleaved_mapping(self):
        vs = VaultSet(DEFAULT_TIMING)
        # Consecutive lines land on consecutive vaults.
        v0, _ = vs.map_address(0)
        v1, _ = vs.map_address(64)
        v32, _ = vs.map_address(64 * 32)
        assert v0 == 0 and v1 == 1 and v32 == 0

    def test_bank_rotates_after_vault_wrap(self):
        vs = VaultSet(DEFAULT_TIMING)
        _, b0 = vs.map_address(0)
        _, b1 = vs.map_address(64 * 32)
        assert b1 == (b0 + 1) % DEFAULT_TIMING.banks_per_vault

    def test_parallel_vaults_do_not_interfere(self):
        vs = VaultSet(DEFAULT_TIMING)
        a = vs.access(0.0, 0, True)
        b = vs.access(0.0, 64, True)
        assert a.start == b.start == 0.0

    def test_aggregate_counters(self):
        vs = VaultSet(DEFAULT_TIMING)
        for i in range(10):
            vs.access(0.0, i * 64, is_read=(i % 2 == 0))
        assert vs.reads == 5 and vs.writes == 5 and vs.accesses == 10

    def test_busy_fraction_bounds(self):
        vs = VaultSet(DEFAULT_TIMING)
        assert vs.busy_fraction(1000.0) == 0.0
        vs.access(0.0, 0, True)
        frac = vs.busy_fraction(1000.0)
        assert 0.0 < frac <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=4 * 1024**3 - 64), min_size=1, max_size=40
    ),
)
def test_vault_monotone_resources(addresses):
    """Bank/bus reservations never move backwards in time."""
    vs = VaultSet(DEFAULT_TIMING)
    now = 0.0
    last_ready = {}
    for i, addr in enumerate(addresses):
        now += 2.0
        access = vs.access(now, addr, is_read=True)
        assert access.start >= now
        assert access.data_ready > access.start
        assert access.done >= access.data_ready
        vault, _bank = vs.map_address(addr)
        if vault in last_ready:
            assert access.data_ready >= last_ready[vault]
        last_ready[vault] = access.data_ready
