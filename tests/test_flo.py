"""Property tests: online FLO counters match offline replays."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flo import (
    idle_intervals_from_busy_periods,
    offline_off_time,
    offline_wakeups,
    replay_aggregate_read_latency,
)
from repro.core.mechanisms import make_mechanism
from repro.network.links import LinkController, LinkDir
from repro.network.packets import Packet, PacketKind
from repro.power.accounting import EnergyLedger
from repro.sim import Simulator


class TestOfflineHelpers:
    def test_replay_empty(self):
        assert replay_aggregate_read_latency([], 0.64, 3.2) == 0.0

    def test_replay_single_read(self):
        total = replay_aggregate_read_latency([(10.0, 1, True)], 0.64, 3.2)
        assert total == pytest.approx(0.64 + 3.2)

    def test_replay_queueing(self):
        arrivals = [(0.0, 5, True), (0.0, 5, True)]
        total = replay_aggregate_read_latency(arrivals, 0.64, 3.2)
        # Second packet waits for the first's 3.2 ns serialization.
        assert total == pytest.approx((3.2 + 3.2) + (6.4 + 3.2))

    def test_replay_writes_occupy_but_add_no_latency(self):
        with_write = replay_aggregate_read_latency(
            [(0.0, 5, False), (0.0, 1, True)], 0.64, 3.2
        )
        without = replay_aggregate_read_latency([(0.0, 1, True)], 0.64, 3.2)
        assert with_write == pytest.approx(without + 3.2)

    def test_idle_intervals_extraction(self):
        intervals = idle_intervals_from_busy_periods(
            [(10.0, 20.0), (50.0, 60.0)], start=0.0, end=100.0
        )
        assert intervals == [10.0, 30.0, 40.0]

    def test_wakeups_threshold(self):
        intervals = [10.0, 40.0, 200.0, 3000.0]
        assert offline_wakeups(intervals, 32.0) == 3
        assert offline_wakeups(intervals, 2048.0) == 1

    def test_off_time(self):
        intervals = [100.0, 10.0]
        assert offline_off_time(intervals, 32.0) == pytest.approx(68.0)


def drive_link(arrival_specs, mechanism="VWL"):
    """Drive a standalone link with (time, flits) read/write arrivals."""
    sim = Simulator()
    link = LinkController(
        sim, "t", LinkDir.REQUEST, -1, 0, make_mechanism(mechanism),
        0.58625, EnergyLedger(), EnergyLedger(),
    )
    link.deliver = lambda pkt, now: None
    link.roo_enabled = False
    link.start(0.0)
    for when, is_read in arrival_specs:
        kind = PacketKind.READ_RESP if is_read else PacketKind.WRITE_REQ
        pkt = Packet(kind=kind, address=0, dest=0)
        sim.schedule_at(when, lambda p=pkt: link.enqueue(p, sim.now))
    sim.run()
    return link


@settings(max_examples=40, deadline=None)
@given(
    specs=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=5000),
            st.booleans(),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_online_delay_monitor_matches_offline_replay(specs):
    """Each width mode's virtual queue equals an offline FIFO replay."""
    specs = sorted(specs, key=lambda s: s[0])
    link = drive_link(specs)
    mech = make_mechanism("VWL")
    arrivals = [(when, 5, is_read) for when, is_read in specs]
    for i, mode in enumerate(mech.width_modes):
        expected = replay_aggregate_read_latency(
            arrivals, mode.flit_time_ns(), mode.serdes_ns
        )
        assert link.ep_vlat[i] == pytest.approx(expected, rel=1e-9, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    gaps=st.lists(st.floats(min_value=1.0, max_value=4000.0), min_size=1, max_size=20)
)
def test_online_histogram_matches_offline_wakeups(gaps):
    """Histogram wakeup predictions equal offline interval counting."""
    times = []
    t = 0.0
    for gap in gaps:
        t += gap
        times.append(t)
    link = drive_link([(when, True) for when in times])
    # Offline idle intervals: before each arrival, from the previous
    # departure (tx end + nothing: deliver is instant in this harness).
    service = 5 * 0.64
    intervals = []
    free = 0.0
    for when in times:
        if when > free:
            intervals.append(when - free)
        free = max(free, when) + service
    for threshold in (32.0, 128.0, 512.0, 2048.0):
        assert link.wakeups_for_threshold(threshold) == offline_wakeups(
            intervals, threshold
        )


@settings(max_examples=20, deadline=None)
@given(
    gaps=st.lists(st.floats(min_value=1.0, max_value=4000.0), min_size=1, max_size=15)
)
def test_flo_width_monotone_in_mode(gaps):
    """Narrower modes never predict less latency overhead."""
    times = []
    t = 0.0
    for gap in gaps:
        t += gap
        times.append(t)
    link = drive_link([(when, True) for when in times])
    flos = [link.flo_width(i) for i in range(4)]
    assert flos[0] == 0.0
    for a, b in zip(flos, flos[1:]):
        assert b >= a - 1e-9
