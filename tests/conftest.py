"""Keep the unit-test suite hermetic: never touch the user's real cache.

The CLI and benchmark fixtures default the persistent result cache to
``~/.cache/repro-mnet``; pointing ``REPRO_CACHE_DIR`` at a per-session
temporary directory keeps tests from reading (or polluting) it.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.getbasetemp() / "repro-cache")
    )
