"""Extra sweep-runner coverage: cross-metric consistency."""

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import SweepRunner

FAST = dict(window_ns=50_000.0, epoch_ns=15_000.0)


@pytest.fixture(scope="module")
def runner():
    return SweepRunner()


class TestReductionMetrics:
    def test_reductions_consistent_with_results(self, runner):
        cfg = ExperimentConfig(
            workload="sp.D", mechanism="VWL+ROO", policy="aware", **FAST
        )
        managed, baseline = runner.run_with_baseline(cfg)
        total_red = runner.power_reduction_vs_baseline(cfg)
        assert total_red == pytest.approx(
            1 - managed.network_power_w / baseline.network_power_w
        )
        io_red = runner.io_power_reduction_vs_baseline(cfg)
        assert io_red == pytest.approx(
            1 - managed.io_power_w / baseline.io_power_w
        )

    def test_io_reduction_exceeds_total_reduction(self, runner):
        # Management only touches I/O; leakage dilutes total savings.
        cfg = ExperimentConfig(
            workload="sp.D", mechanism="VWL+ROO", policy="aware", **FAST
        )
        assert runner.io_power_reduction_vs_baseline(cfg) > (
            runner.power_reduction_vs_baseline(cfg)
        )

    def test_idle_io_reduction_largest(self, runner):
        # Idle I/O is where the savings come from.
        cfg = ExperimentConfig(
            workload="sp.D", mechanism="VWL+ROO", policy="aware", **FAST
        )
        assert runner.idle_io_power_reduction_vs_baseline(cfg) >= (
            runner.io_power_reduction_vs_baseline(cfg) - 0.02
        )

    def test_fp_run_has_zero_reduction(self, runner):
        cfg = ExperimentConfig(workload="sp.D", **FAST)
        assert runner.power_reduction_vs_baseline(cfg) == pytest.approx(0.0)
        assert runner.degradation_vs_baseline(cfg) == pytest.approx(0.0)

    def test_cache_shared_across_metric_calls(self, runner):
        cfg = ExperimentConfig(
            workload="sp.D", mechanism="VWL", policy="unaware", **FAST
        )
        before = runner.runs
        runner.power_reduction_vs_baseline(cfg)
        runner.io_power_reduction_vs_baseline(cfg)
        runner.degradation_vs_baseline(cfg)
        # Only the managed run and its baseline actually simulated.
        assert runner.runs <= before + 2
