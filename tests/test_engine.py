"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [1, 3, 5]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(7.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(12.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(9.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 9.0]
        assert sim.now == 9.0

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_nan_raises(self):
        # NaN compares unequal to everything, so a NaN entry would
        # silently corrupt the heap order instead of failing loudly.
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)
        assert sim.pending_events == 0

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRunUntil:
    def test_until_excludes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("at"))
        sim.run(until=10.0)
        assert fired == []
        assert sim.now == 10.0
        sim.run()
        assert fired == ["at"]

    def test_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.schedule(15.0, lambda: fired.append(15))
        sim.run(until=10.0)
        assert fired == [5]
        sim.run()
        assert fired == [5, 15]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_max_events_with_until_leaves_clock_at_last_event(self):
        # Exhausting the event budget mid-window must NOT advance the
        # clock to `until`: events are still pending before it, and a
        # resumed run would otherwise move the clock backwards.
        sim = Simulator()
        fired = []
        for t in (10.0, 20.0, 30.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run(until=100.0, max_events=2)
        assert fired == [10.0, 20.0]
        assert sim.now == 20.0
        assert sim.pending_events == 1
        assert sim.events_processed == 2

    def test_resume_after_budget_exhaustion_reaches_until(self):
        sim = Simulator()
        fired = []
        for t in (10.0, 20.0, 30.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run(until=100.0, max_events=2)
        sim.run(until=100.0)
        assert fired == [10.0, 20.0, 30.0]
        assert sim.now == 100.0
        assert sim.events_processed == 3

    def test_max_events_exactly_draining_queue_still_reaches_until(self):
        # When the budget is not actually exceeded (the queue drains
        # first), the until-window semantics are unchanged.
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, lambda: fired.append(10.0))
        sim.run(until=50.0, max_events=5)
        assert fired == [10.0]
        assert sim.now == 50.0

    def test_events_processed_accumulates_across_budgeted_runs(self):
        sim = Simulator()
        for t in range(1, 6):
            sim.schedule_at(float(t), lambda: None)
        sim.run(max_events=2)
        assert sim.events_processed == 2
        sim.run(max_events=2)
        assert sim.events_processed == 4
        sim.run()
        assert sim.events_processed == 5

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        # A subsequent run resumes from where it stopped.
        sim.run()
        assert fired == [1, 2]


class TestIntrospection:
    def test_pending_and_processed_counts(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        assert sim.events_processed == 0
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 2

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek_next_time() == 3.0

    def test_initial_state(self):
        sim = Simulator()
        assert sim.now == 0.0
        assert sim.pending_events == 0
