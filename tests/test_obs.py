"""Tests for the observability layer (repro.obs).

Covers the unit behaviour of the tracer/sinks/metrics, the golden-file
stability of the JSONL and Chrome exporters, and the two system-level
guarantees the layer makes:

* tracing is *purely observational* -- a traced run produces results
  bit-identical to the untraced run, and the config cache key is
  unchanged;
* the ``link.state`` residency segments integrate back to exactly the
  ``mode_time_ns`` / ``off_time_ns`` totals that the power accounting
  charges, so trace and power numbers can never disagree silently.
"""

import json
import os

import pytest

from repro.core.aware import NetworkAwarePolicy
from repro.core.mechanisms import make_mechanism
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.sweep import SweepRunner
from repro.network.network import MemoryNetwork
from repro.network.topology import build_topology
from repro.obs import (
    ALL_CATEGORIES,
    ChromeTraceSink,
    Counter,
    CsvTraceSink,
    DEFAULT_CATEGORIES,
    Gauge,
    Histogram,
    JsonlTraceSink,
    ListSink,
    MetricsRegistry,
    Tracer,
    event_counts,
    install_tracer,
    link_state_residency,
    make_sink,
    parse_categories,
    read_jsonl,
)
from repro.sim.engine import Simulator
from repro.workloads.generator import ClosedLoopWorkload
from repro.workloads.mapping import contiguous_mapping
from repro.workloads.profiles import get_profile

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Small synthetic event sequence exercised by the exporter golden tests.
_SAMPLE_EVENTS = [
    (0.0, "meta", "trace.begin", {"workload": "mixB", "modules": 4}),
    (150.0, "link", "link.off", {"link": "req:0->1"}),
    (150.0, "link", "link.state",
     {"dur_ns": 150.0, "link": "req:0->1", "state": "w0"}),
    (900.0, "link", "link.wake", {"link": "req:0->1", "wakeups": 1}),
    (900.0, "link", "link.state",
     {"dur_ns": 750.0, "link": "req:0->1", "state": "off"}),
    (25000.0, "epoch", "epoch.boundary",
     {"index": 0, "policy": "NetworkAwarePolicy", "violations": 0}),
    (25000.0, "epoch", "isp.epoch",
     {"fel": 1000.0, "overhead": 40.0, "budget": 12.0}),
]


def _emit_samples(tracer):
    for t, cat, name, fields in _SAMPLE_EVENTS:
        tracer.emit(t, cat, name, **fields)


# ----------------------------------------------------------------------
# Categories and tracer
# ----------------------------------------------------------------------
class TestCategories:
    def test_defaults(self):
        assert parse_categories(None) == DEFAULT_CATEGORIES
        assert "engine" not in DEFAULT_CATEGORIES
        assert "dram" not in DEFAULT_CATEGORIES

    def test_all(self):
        assert parse_categories("all") == frozenset(ALL_CATEGORIES)

    def test_comma_list_and_iterable(self):
        assert parse_categories("link, epoch") == {"meta", "link", "epoch"}
        assert parse_categories(["dram"]) == {"meta", "dram"}

    def test_meta_always_included(self):
        assert "meta" in parse_categories("link")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            parse_categories("link,bogus")


class TestTracer:
    def test_emit_builds_reserved_keys(self):
        sink = ListSink()
        tracer = Tracer(sink, "all")
        tracer.emit(5.0, "link", "link.off", link="req:0->1")
        assert sink.events == [
            {"t": 5.0, "cat": "link", "ev": "link.off", "link": "req:0->1"}
        ]
        assert tracer.events_emitted == 1

    def test_category_filter_drops_events(self):
        sink = ListSink()
        tracer = Tracer(sink, "link")
        tracer.emit(1.0, "engine", "engine.dispatch", depth=3)
        tracer.emit(2.0, "link", "link.off", link="x")
        assert [e["ev"] for e in sink.events] == ["link.off"]
        assert tracer.events_emitted == 1

    def test_wants(self):
        tracer = Tracer(ListSink(), "link,dram")
        assert tracer.wants("link") and tracer.wants("dram")
        assert not tracer.wants("engine")


class TestInstallTracer:
    def test_attributes_set_only_for_enabled_categories(self):
        profile = get_profile("mixB")
        mapping = contiguous_mapping(profile.footprint_gb, "small")
        sim = Simulator()
        network = MemoryNetwork(
            sim, build_topology("daisychain", mapping.num_modules),
            make_mechanism("VWL+ROO"), mapping,
        )
        policy = NetworkAwarePolicy(network, 0.05)
        tracer = Tracer(ListSink(), "link")
        install_tracer(tracer, sim=sim, network=network, policy=policy)
        assert sim.trace is None            # engine category off
        assert network.trace is None        # dram category off
        assert policy.trace is None         # epoch category off
        assert all(l.trace is tracer for l in network.all_links())

    def test_none_tracer_is_noop(self):
        install_tracer(None, sim=Simulator())


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_make_sink_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            make_sink(tmp_path / "x", "yaml")

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(JsonlTraceSink(path), "all")
        _emit_samples(tracer)
        tracer.close()
        events = read_jsonl(path)
        assert len(events) == len(_SAMPLE_EVENTS)
        for event, (t, cat, name, fields) in zip(events, _SAMPLE_EVENTS):
            assert event == {"t": t, "cat": cat, "ev": name, **fields}

    def test_jsonl_matches_golden(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(JsonlTraceSink(path), "all")
        _emit_samples(tracer)
        tracer.close()
        with open(os.path.join(GOLDEN_DIR, "sample_trace.jsonl")) as fh:
            assert path.read_text() == fh.read()

    def test_chrome_matches_golden(self, tmp_path):
        path = tmp_path / "t.json"
        tracer = Tracer(ChromeTraceSink(path), "all")
        _emit_samples(tracer)
        tracer.close()
        with open(os.path.join(GOLDEN_DIR, "sample_trace.chrome.json")) as fh:
            assert json.loads(path.read_text()) == json.load(fh)

    def test_chrome_structure(self, tmp_path):
        path = tmp_path / "t.json"
        tracer = Tracer(ChromeTraceSink(path), "all")
        _emit_samples(tracer)
        tracer.close()
        doc = json.loads(path.read_text())
        records = doc["traceEvents"]
        # Track metadata names every tid once.
        names = {r["args"]["name"] for r in records if r["ph"] == "M"}
        assert "req:0->1" in names and "meta" in names and "epoch" in names
        # link.state residency segments become duration slices in us.
        slices = [r for r in records if r["ph"] == "X"]
        assert {(s["name"], s["dur"]) for s in slices} == {
            ("w0", 0.150), ("off", 0.750)
        }

    def test_csv_header_is_union_of_fields(self, tmp_path):
        path = tmp_path / "t.csv"
        tracer = Tracer(CsvTraceSink(path), "all")
        _emit_samples(tracer)
        tracer.close()
        header, *rows = path.read_text().splitlines()
        columns = header.split(",")
        assert columns[:3] == ["t", "cat", "ev"]
        assert set(columns) > {"link", "state", "dur_ns", "budget"}
        assert len(rows) == len(_SAMPLE_EVENTS)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(4.0)
        g.set(2.0)
        assert g.value == 2.0

    def test_histogram_bucketing(self):
        h = Histogram("x", (1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.2):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.total == 4
        assert h.mean == pytest.approx(55.7 / 4)
        with pytest.raises(ValueError):
            Histogram("bad", (10.0, 1.0))

    def test_histogram_quantile(self):
        h = Histogram("x", (1.0, 10.0, 100.0))
        assert h.quantile(0.5) == 0.0  # empty
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.5) == 10.0
        assert h.quantile(0.75) == 100.0
        assert h.quantile(1.0) == 100.0  # overflow clamps to last edge
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c", (1.0,)) is reg.histogram("c", (1.0,))

    def test_mark_epoch_deltas(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(10)
        first = reg.mark_epoch(100.0)
        reg.counter("n").inc(5)
        second = reg.mark_epoch(200.0)
        assert first["deltas"]["n"] == 10
        assert second["deltas"]["n"] == 5
        assert second["counters"]["n"] == 15
        assert [e["t"] for e in reg.epochs] == [100.0, 200.0]

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.histogram("h", (1.0,)).observe(0.5)
        path = tmp_path / "m.json"
        reg.write_json(path)
        data = json.loads(path.read_text())
        assert data["counters"]["n"] == 3
        assert data["histograms"]["h"]["total"] == 1


# ----------------------------------------------------------------------
# System-level guarantees
# ----------------------------------------------------------------------
_BASE = dict(
    workload="mixB", topology="daisychain", mechanism="VWL+ROO",
    policy="aware", alpha=0.05, window_ns=150_000.0, epoch_ns=25_000.0,
)


class TestTraceIsPureObservation:
    def test_cache_key_ignores_observability_fields(self, tmp_path):
        plain = ExperimentConfig(**_BASE)
        traced = ExperimentConfig(
            **_BASE,
            trace_path=str(tmp_path / "t.jsonl"),
            trace_categories="all",
            metrics_path=str(tmp_path / "m.json"),
        )
        assert plain.cache_key() == traced.cache_key()

    def test_traced_run_is_bit_identical(self, tmp_path):
        plain = run_experiment(ExperimentConfig(**_BASE))
        traced = run_experiment(ExperimentConfig(
            **_BASE,
            trace_path=str(tmp_path / "t.jsonl"),
            trace_categories="all",
            metrics_path=str(tmp_path / "m.json"),
        ))
        assert traced.breakdown.watts == plain.breakdown.watts
        assert traced.throughput_per_s == plain.throughput_per_s
        assert traced.avg_read_latency_ns == plain.avg_read_latency_ns
        assert traced.events_processed == plain.events_processed
        assert traced.violations == plain.violations
        assert traced.completed_reads == plain.completed_reads
        assert plain.trace_events == 0
        assert traced.trace_events > 0

    def test_unknown_trace_format_rejected(self):
        with pytest.raises(ValueError, match="unknown trace format"):
            ExperimentConfig(**_BASE, trace_format="yaml")

    def test_bad_categories_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            ExperimentConfig(**_BASE, trace_categories="bogus")


class TestResidencyConsistency:
    """Acceptance criterion: trace segments == power accounting."""

    def test_link_state_segments_match_accounting(self):
        window = 150_000.0
        profile = get_profile("mixB")
        mapping = contiguous_mapping(profile.footprint_gb, "small")
        sim = Simulator()
        network = MemoryNetwork(
            sim, build_topology("daisychain", mapping.num_modules),
            make_mechanism("VWL+ROO"), mapping,
        )
        policy = NetworkAwarePolicy(network, 0.05, 25_000.0)
        sink = ListSink()
        install_tracer(Tracer(sink, "link,epoch"),
                       sim=sim, network=network, policy=policy)
        workload = ClosedLoopWorkload(network, profile, stop_ns=window, seed=1)
        network.start()
        policy.start()
        workload.start()
        sim.run(until=window)
        network.finalize(window)

        residency = link_state_residency(sink.events)
        for link in network.all_links():
            segments = residency.get(link.name, {})
            # Every width's trace time equals the accounting's time.
            for width, expected in enumerate(link.mode_time_ns):
                assert segments.get(f"w{width}", 0.0) == pytest.approx(
                    expected, rel=1e-9, abs=1e-6
                ), (link.name, width)
            assert segments.get("off", 0.0) == pytest.approx(
                link.off_time_ns, rel=1e-9, abs=1e-6
            ), link.name
            # And the segments partition the whole window.
            assert sum(segments.values()) == pytest.approx(window, rel=1e-9)
        # The epoch category produced ISP budget events too.
        counts = event_counts(sink.events)
        assert counts["epoch.boundary"] == counts["isp.epoch"] > 0
        assert counts["ams.link"] > 0


class TestSweepRunnerTracing:
    def test_traced_configs_always_resimulate(self, tmp_path):
        runner = SweepRunner()
        traced = ExperimentConfig(
            **_BASE, trace_path=str(tmp_path / "t.jsonl"))
        runner.run(traced)
        os.remove(tmp_path / "t.jsonl")
        runner.run(traced)
        assert runner.runs == 2
        assert runner.traced_runs == 2
        assert runner.memory_hits == 0
        # The second traced run rewrote its side-effect file.
        assert (tmp_path / "t.jsonl").exists()
        # An untraced request for the same simulation hits the cache.
        runner.run(ExperimentConfig(**_BASE))
        assert runner.runs == 2
        assert runner.memory_hits == 1

    def test_run_all_keeps_traced_and_untraced_apart(self, tmp_path):
        runner = SweepRunner()
        traced = ExperimentConfig(
            **_BASE, trace_path=str(tmp_path / "t.jsonl"))
        plain = ExperimentConfig(**_BASE)
        results = runner.run_all([plain, traced])
        assert runner.traced_runs == 1
        assert (tmp_path / "t.jsonl").exists()
        assert results[0].breakdown.watts == results[1].breakdown.watts


class TestMetricsOutput:
    def test_run_experiment_writes_epoch_metrics(self, tmp_path):
        path = tmp_path / "m.json"
        result = run_experiment(
            ExperimentConfig(**_BASE, metrics_path=str(path)))
        data = json.loads(path.read_text())
        assert data["counters"]["epochs"] == result.epochs
        assert len(data["epochs"]) == result.epochs
        assert data["counters"]["link.busy_ns"] > 0
        assert data["histograms"]["link.utilization"]["total"] > 0
