"""Tests for the open-page row-buffer policy extension."""

import pytest

from repro.dram import DramTiming, Vault, VaultSet

OPEN = DramTiming(page_policy="open")


class TestOpenPageVault:
    def test_first_access_is_a_miss(self):
        v = Vault(OPEN)
        access = v.access(0.0, bank=0, is_read=True, row=5)
        # Empty bank: activate (no precharge) + CAS + burst.
        assert access.data_ready == pytest.approx(
            OPEN.tRCD + OPEN.tCL + OPEN.burst_ns
        )
        assert v.row_misses == 1 and v.row_hits == 0

    def test_row_hit_skips_activate(self):
        v = Vault(OPEN)
        first = v.access(0.0, bank=0, is_read=True, row=5)
        second = v.access(first.done, bank=0, is_read=True, row=5)
        # Hit: CAS + burst only.
        assert second.data_ready - second.start == pytest.approx(
            OPEN.tCL + OPEN.burst_ns
        )
        assert v.row_hits == 1

    def test_row_conflict_pays_precharge(self):
        v = Vault(OPEN)
        first = v.access(0.0, bank=0, is_read=True, row=5)
        conflict = v.access(first.done + 100.0, bank=0, is_read=True, row=9)
        assert conflict.data_ready - conflict.start == pytest.approx(
            OPEN.tRP + OPEN.tRCD + OPEN.tCL + OPEN.burst_ns
        )
        assert v.row_misses == 2

    def test_hit_faster_than_close_page(self):
        close_vault = Vault(DramTiming())
        open_vault = Vault(OPEN)
        open_vault.access(0.0, 0, True, row=1)
        hit = open_vault.access(1000.0, 0, True, row=1)
        close = close_vault.access(1000.0, 0, True)
        assert (hit.data_ready - 1000.0) < (close.data_ready - 1000.0)

    def test_different_banks_keep_independent_rows(self):
        v = Vault(OPEN)
        v.access(0.0, bank=0, is_read=True, row=1)
        v.access(200.0, bank=1, is_read=True, row=2)
        hit = v.access(400.0, bank=0, is_read=True, row=1)
        assert v.row_hits == 1
        assert hit.data_ready - hit.start == pytest.approx(OPEN.tCL + OPEN.burst_ns)

    def test_close_page_counters_untouched(self):
        v = Vault(DramTiming())
        v.access(0.0, 0, True)
        assert v.row_hits == 0 and v.row_misses == 0


class TestOpenPageVaultSet:
    def test_sequential_lines_hit_after_warmup(self):
        vs = VaultSet(OPEN)
        stride = OPEN.line_bytes * OPEN.vaults * OPEN.banks_per_vault
        # Repeated access to the same line: same vault/bank/row.
        vs.access(0.0, 0, True)
        vs.access(1000.0, 0, True)
        vault, _bank = vs.map_address(0)
        assert vs.vaults[vault].row_hits == 1

    def test_map_row_changes_across_rows(self):
        vs = VaultSet(OPEN)
        lines_per_row = OPEN.row_bytes // OPEN.line_bytes
        stride = OPEN.line_bytes * OPEN.vaults * OPEN.banks_per_vault
        r0 = vs.map_row(0)
        r1 = vs.map_row(stride * lines_per_row)
        assert r1 == r0 + 1

    def test_map_row_constant_within_row(self):
        vs = VaultSet(OPEN)
        stride = OPEN.line_bytes * OPEN.vaults * OPEN.banks_per_vault
        assert vs.map_row(0) == vs.map_row(stride)


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DramTiming(page_policy="adaptive")

    def test_tiny_row_rejected(self):
        with pytest.raises(ValueError):
            DramTiming(row_bytes=32)
