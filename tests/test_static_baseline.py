"""Tests for the static fat/tapered-tree baseline (Section VII-A)."""

import pytest

from repro.core.mechanisms import make_mechanism
from repro.core.static_baseline import StaticBaselinePolicy, static_width_fractions
from repro.network import MemoryNetwork, build_topology
from repro.network.topology import daisychain, ternary_tree
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


class TestFormula:
    def test_root_link_gets_full_bandwidth(self):
        fractions = static_width_fractions(daisychain(5))
        assert fractions[0] == pytest.approx(1.0)

    def test_daisychain_tapers_linearly(self):
        # S(d) = 1 for every depth; link d gets 1 - (d-1)/N.
        n = 5
        fractions = static_width_fractions(daisychain(n))
        for module in range(n):
            d = module + 1
            assert fractions[module] == pytest.approx(1.0 - (d - 1) / n)

    def test_ternary_tree_fans_out(self):
        # 13-node ternary tree: S = {1:1, 2:3, 3:9}, T = 13.
        fractions = static_width_fractions(ternary_tree(13))
        assert fractions[0] == pytest.approx(1.0)
        assert fractions[1] == pytest.approx((1 / 3) * (1 - 1 / 13))
        assert fractions[4] == pytest.approx((1 / 9) * (1 - 4 / 13))

    def test_fractions_monotone_in_depth(self):
        topo = ternary_tree(13)
        fractions = static_width_fractions(topo)
        for module in range(1, 13):
            parent = topo.parent[module]
            assert fractions[module] <= fractions[parent] + 1e-12

    def test_fractions_bounded(self):
        for builder in (daisychain, ternary_tree):
            for frac in static_width_fractions(builder(9)).values():
                assert 0.0 <= frac <= 1.0


class TestPolicy:
    def make(self, topology="ternary_tree", n=13):
        sim = Simulator()
        topo = build_topology(topology, n)
        mapping = AddressMapping(num_modules=n, granularity_bytes=GB)
        net = MemoryNetwork(sim, topo, make_mechanism("VWL"), mapping)
        return sim, net, StaticBaselinePolicy(net)

    def test_rounds_up_to_available_width(self):
        _sim, net, policy = self.make()
        net.start()
        policy.start()
        # Depth-2 target ~0.308 rounds up to the 8-lane (0.5) option.
        assert policy.selected[1] == 1
        # Depth-3 target ~0.077 rounds up to the 4-lane (0.25) option.
        assert policy.selected[4] == 2

    def test_root_stays_full_width(self):
        _sim, net, policy = self.make()
        net.start()
        policy.start()
        assert policy.selected[0] == 0
        assert net.channel_req.width_idx == 0

    def test_roo_disabled(self):
        _sim, net, policy = self.make()
        net.start()
        policy.start()
        for link in net.all_links():
            assert not link.roo_enabled

    def test_modes_applied_to_links(self):
        sim, net, policy = self.make()
        net.start()
        policy.start()
        sim.run(until=5000.0)  # past the 1 us transition
        for module in net.modules:
            expected = policy.selected[module.module_id]
            assert module.req_in.width_idx == expected
            assert module.resp_out.width_idx == expected

    def test_static_saves_power_at_performance_cost(self):
        from repro.harness.experiment import ExperimentConfig, run_experiment

        base = dict(
            workload="is.D", topology="daisychain", scale="big",
            window_ns=150_000.0, mapping="interleaved",
        )
        fp = run_experiment(ExperimentConfig(mechanism="FP", policy="none", **base))
        static = run_experiment(
            ExperimentConfig(mechanism="VWL", policy="static", **base)
        )
        assert static.network_power_w < fp.network_power_w
        # Narrow links serialize packets more slowly.
        assert static.avg_read_latency_ns > fp.avg_read_latency_ns
