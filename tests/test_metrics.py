"""Unit tests for harness metrics."""

import pytest

from repro.core.mechanisms import make_mechanism
from repro.harness.metrics import (
    LinkHourCollector,
    UTILIZATION_BUCKETS,
    avg_link_utilization,
    avg_modules_traversed,
    bucket_of,
    channel_utilization,
    performance_degradation,
)
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


def quiet_network(n=2):
    sim = Simulator()
    topo = build_topology("daisychain", n)
    mapping = AddressMapping(num_modules=n, granularity_bytes=4 * GB)
    net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
    net.start()
    return sim, net


class TestChannelUtilization:
    def test_zero_without_traffic(self):
        _sim, net = quiet_network()
        assert channel_utilization(net, 1000.0) == 0.0

    def test_counts_both_directions(self):
        sim, net = quiet_network()
        net.inject_read(0, 0.0)
        sim.run()
        # One read: 1 flit request + 5 flit response = 96 bytes.
        util = channel_utilization(net, 1000.0)
        assert util == pytest.approx(96 / (2 * 25.0 * 1000.0))

    def test_zero_window(self):
        _sim, net = quiet_network()
        assert channel_utilization(net, 0.0) == 0.0


class TestLinkUtilization:
    def test_attenuation_below_channel(self):
        sim, net = quiet_network(4)
        for i in range(50):
            net.inject_read(0, float(i) * 10)  # all traffic to module 0
        sim.run()
        window = sim.now
        # Only 2 of 8 links carry traffic: average is low.
        assert avg_link_utilization(net, window) < channel_utilization(net, window)


class TestModulesTraversed:
    def test_reads_traverse_twice(self):
        sim, net = quiet_network(3)
        net.inject_read(2 * 4 * GB, 0.0)
        sim.run()
        assert avg_modules_traversed(net) == pytest.approx(6.0)

    def test_zero_without_traffic(self):
        _sim, net = quiet_network()
        assert avg_modules_traversed(net) == 0.0


class TestBuckets:
    def test_bucket_boundaries(self):
        assert bucket_of(0.0) == "0-1%"
        assert bucket_of(0.009) == "0-1%"
        assert bucket_of(0.01) == "1-5%"
        assert bucket_of(0.07) == "5-10%"
        assert bucket_of(0.15) == "10-20%"
        assert bucket_of(0.5) == "20-100%"
        assert bucket_of(1.0) == "20-100%"

    def test_buckets_cover_unit_interval(self):
        lows = [lo for _l, lo, _h in UTILIZATION_BUCKETS]
        highs = [hi for _l, _lo, hi in UTILIZATION_BUCKETS]
        assert lows[0] == 0.0
        assert highs[-1] > 1.0
        for h, l in zip(highs, lows[1:]):
            assert h == l


class TestLinkHourCollector:
    def test_accumulates_epoch_times(self):
        sim, net = quiet_network()
        collector = LinkHourCollector()
        sim.run(until=10_000.0)
        for link in net.all_links():
            link.accrue(10_000.0)
        collector(net.all_links(), 10_000.0)
        fractions = collector.fractions()
        assert fractions
        assert sum(fractions.values()) == pytest.approx(1.0)
        # All links idle at full width: everything in ("0-1%", 0).
        assert fractions[("0-1%", 0)] == pytest.approx(1.0)

    def test_empty_collector(self):
        assert LinkHourCollector().fractions() == {}


class TestDegradation:
    def test_positive_when_slower(self):
        assert performance_degradation(100.0, 95.0) == pytest.approx(0.05)

    def test_zero_baseline(self):
        assert performance_degradation(0.0, 50.0) == 0.0

    def test_negative_when_faster(self):
        assert performance_degradation(100.0, 101.0) == pytest.approx(-0.01)
