"""Additional tests for report formatting and the direction enum."""

import pytest

from repro.harness.report import format_percent, format_table, format_watts
from repro.network.direction import LinkDir


class TestLinkDir:
    def test_two_directions(self):
        assert LinkDir.REQUEST.value == "request"
        assert LinkDir.RESPONSE.value == "response"
        assert LinkDir.REQUEST is not LinkDir.RESPONSE

    def test_links_module_reexports(self):
        from repro.network.links import LinkDir as FromLinks

        assert FromLinks is LinkDir


class TestFormatTable:
    def test_column_widths_accommodate_longest(self):
        out = format_table(["a"], [["short"], ["a-very-long-cell"]])
        header, sep, *rows = out.splitlines()
        assert len(sep) >= len("a-very-long-cell")

    def test_title_underline_spans(self):
        out = format_table(["col"], [["x"]], title="My Title")
        lines = out.splitlines()
        assert lines[0] == "My Title"
        assert set(lines[1]) == {"="}

    def test_mixed_types_stringified(self):
        out = format_table(["n", "f"], [[1, 2.5], [None, True]])
        assert "None" in out and "2.5" in out

    def test_extra_columns_tolerated(self):
        out = format_table(["a"], [["x", "overflow"]])
        assert "overflow" in out


class TestFormatters:
    def test_percent_rounding(self):
        assert format_percent(0.1999) == "20.0%"
        assert format_percent(1.0) == "100.0%"
        assert format_percent(-0.05) == "-5.0%"

    def test_watts_digits(self):
        assert format_watts(0.5864, digits=3) == "0.586 W"
