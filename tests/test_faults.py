"""Fault-injection subsystem: spec parsing, plans, the link-retry model,
and end-to-end determinism guarantees.

The two load-bearing invariants:

* **Zero-overhead / bit-identity when disabled** -- an empty or no-op
  ``fault_spec`` reproduces the golden results bit-for-bit (the fault
  hooks are ``None`` on the hot path).
* **Conservation under faults** -- every injected packet is eventually
  delivered exactly once; CRC retries add retransmitted flits and
  latency, never lose or duplicate packets.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mechanisms import make_mechanism
from repro.faults import (
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    build_plan,
    parse_fault_spec,
)
from repro.harness.executor import ParallelExecutor, SerialExecutor
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.io import result_to_cache_dict
from repro.network.links import LinkController, LinkDir, LinkFaultState
from repro.power.accounting import EnergyLedger
from repro.sim import Simulator

FAST = dict(
    workload="sp.D", topology="daisychain", mechanism="VWL+ROO",
    policy="aware", window_ns=40_000.0,
)

FAULT_COUNTERS = (
    "link_retries", "retry_flits", "retry_time_ns", "vault_stalls",
    "fault_events",
)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class TestParseFaultSpec:
    def test_empty_spec_is_noop(self):
        spec = parse_fault_spec("")
        assert spec.is_noop
        assert not spec.wants_link_faults

    def test_full_spec_round_trip(self):
        spec = parse_fault_spec(
            "seed=7,crc=0.25,crc_bursts=3,burst_ns=8000,down=2,down_ns=3000,"
            "degrade=1,degrade_factor=4,stall=5,stall_ns=250,retry_ns=32"
        )
        assert spec.seed == 7
        assert spec.crc == 0.25
        assert spec.crc_bursts == 3
        assert spec.down == 2
        assert spec.degrade_factor == 4.0
        assert spec.stall == 5
        assert spec.retry_ns == 32.0
        assert spec.wants_link_faults
        assert not spec.is_noop

    def test_semicolon_separator_and_whitespace(self):
        spec = parse_fault_spec(" seed=3 ; crc=0.5 ; crc_bursts=1 ")
        assert spec.seed == 3 and spec.crc_bursts == 1

    def test_seed_only_spec_is_noop(self):
        assert parse_fault_spec("seed=42").is_noop

    @pytest.mark.parametrize("bad", [
        "bogus=1",              # unknown key
        "crc=1.5",              # rate out of [0, 1]
        "crc=-0.1",
        "crc_bursts=-1",        # negative count
        "degrade_factor=0.5",   # < 1 would *speed up* the link
        "burst_ns=-5",          # negative duration
        "seed=abc",             # not an int
        "crc",                  # missing '='
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_config_validates_fault_spec_eagerly(self):
        with pytest.raises(FaultSpecError):
            ExperimentConfig(workload="sp.D", fault_spec="crc=2.0")

    def test_fault_spec_changes_cache_key(self):
        plain = ExperimentConfig(workload="sp.D")
        faulted = plain.replace(fault_spec="seed=3,crc=0.1,crc_bursts=1")
        assert plain.cache_key() != faulted.cache_key()


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
class TestBuildPlan:
    LINKS = ["req:h0->h1", "resp:h1->h0", "req:h1->h2"]

    def _spec(self, **kw):
        return FaultSpec(**{**dict(seed=11, crc=0.2, crc_bursts=4, down=2,
                                   degrade=2, stall=3), **kw})

    def test_deterministic_for_seed(self):
        a = build_plan(self._spec(), self.LINKS, 4, 100_000.0)
        b = build_plan(self._spec(), self.LINKS, 4, 100_000.0)
        assert a.events == b.events

    def test_different_seed_different_plan(self):
        a = build_plan(self._spec(), self.LINKS, 4, 100_000.0)
        b = build_plan(self._spec(seed=12), self.LINKS, 4, 100_000.0)
        assert a.events != b.events

    def test_event_counts_and_targets(self):
        plan = build_plan(self._spec(), self.LINKS, 4, 100_000.0)
        kinds = {}
        for ev in plan.events:
            kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
            assert 0.0 <= ev.start_ns <= ev.end_ns <= 100_000.0
            if ev.kind == "vault_stall":
                assert 0 <= int(ev.target) < 4
            else:
                assert ev.target in self.LINKS
        assert kinds == {"crc": 4, "down": 2,
                         "degrade": 2, "vault_stall": 3}

    def test_noop_spec_builds_empty_plan(self):
        plan = build_plan(FaultSpec(seed=5), self.LINKS, 4, 100_000.0)
        assert plan.events == ()


# ----------------------------------------------------------------------
# Link retry model (unit level)
# ----------------------------------------------------------------------
ENDPOINT_W = 0.58625


def make_link(faults=None):
    sim = Simulator()
    delivered = []
    link = LinkController(
        sim, name="test", direction=LinkDir.REQUEST, src=-1, dst=0,
        mech=make_mechanism("FP"), endpoint_w=ENDPOINT_W,
        ledger_src=EnergyLedger(), ledger_dst=EnergyLedger(),
    )
    link.faults = faults
    link.deliver = lambda pkt, now: delivered.append((pkt, now))
    link.start(0.0)
    return sim, link, delivered


def read_req(addr=0):
    from repro.network.packets import Packet, PacketKind

    return Packet(kind=PacketKind.READ_REQ, address=addr, dest=0)


class TestLinkRetryModel:
    def test_certain_crc_error_retries_then_delivers(self):
        faults = LinkFaultState(
            seed=1, crc=[(0.0, 10.0, 1.0)], retry_ns=48.0
        )
        sim, link, delivered = make_link(faults)
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        # First attempt lands inside the always-error window and is
        # retried; the retransmission finishes past the window edge.
        assert len(delivered) == 1
        assert link.retries >= 1
        assert delivered[0][1] > 10.0

    def test_down_window_defers_transmission(self):
        faults = LinkFaultState(seed=1, down=[(5.0, 50.0)])
        sim, link, delivered = make_link(faults)
        sim.schedule(10.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert len(delivered) == 1
        assert delivered[0][1] == pytest.approx(50.0 + 0.64 + 3.2)
        assert faults.down_blocks >= 1

    def test_degraded_window_scales_serialization(self):
        faults = LinkFaultState(seed=1, degrade=[(0.0, 100.0, 2.0)])
        sim, link, delivered = make_link(faults)
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        # 1 flit * 0.64 ns doubled + 3.2 ns SERDES (unscaled).
        assert delivered[0][1] == pytest.approx(2 * 0.64 + 3.2)
        assert faults.degraded_tx == 1

    def test_no_faults_object_means_clean_timing(self):
        sim, link, delivered = make_link(None)
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert delivered[0][1] == pytest.approx(0.64 + 3.2)
        assert link.retries == 0 and link.retry_flits == 0

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=25),
        rate=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_retry_accounting_conserves_packets(self, n, rate, seed):
        """Every injected packet is delivered exactly once, and flits on
        the wire decompose exactly into delivered + retransmitted."""
        faults = LinkFaultState(
            seed=seed, crc=[(0.0, 1e9, rate)], retry_ns=48.0
        )
        sim, link, delivered = make_link(faults)
        for i in range(n):
            sim.schedule(i * 7.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert len(delivered) == n
        assert link.packets_tx == n
        assert link.flits_tx == n  # read requests are single-flit
        assert link.retries == faults.crc_errors
        assert link.retry_flits == link.retries  # 1 flit per retried pkt
        assert link.retry_time_ns >= link.retries * faults.retry_ns

    def test_crc_draws_deterministic_across_instances(self):
        def run_once():
            faults = LinkFaultState(seed=99, crc=[(0.0, 1e9, 0.5)])
            sim, link, delivered = make_link(faults)
            for i in range(20):
                sim.schedule(i * 9.0, lambda: link.enqueue(read_req(), sim.now))
            sim.run()
            return (link.retries, faults.draws, [t for _, t in delivered])

        assert run_once() == run_once()


# ----------------------------------------------------------------------
# End-to-end: experiment pipeline
# ----------------------------------------------------------------------
def _payload(config):
    payload = result_to_cache_dict(run_experiment(config))
    payload.pop("wall_time_s", None)
    return payload


class TestExperimentFaults:
    FAULTED = "seed=7,crc=0.3,crc_bursts=4,burst_ns=8000,down=1,stall=3,stall_ns=400"

    def test_noop_spec_bit_identical_to_clean(self):
        clean = _payload(ExperimentConfig(**FAST))
        noop = _payload(ExperimentConfig(**FAST, fault_spec="seed=99"))
        assert noop["config"].pop("fault_spec") == "seed=99"
        clean["config"].pop("fault_spec")
        assert noop == clean

    def test_disabled_faults_reproduce_golden(self):
        import os

        golden_path = os.path.join(
            os.path.dirname(__file__), "golden", "experiment_results.json"
        )
        entry = json.load(open(golden_path))[0]
        config = ExperimentConfig(**entry["config"])
        noop = _payload(config.replace(fault_spec="seed=31337"))
        expected = dict(entry)
        expected.pop("wall_time_s", None)
        noop["config"].pop("fault_spec")
        expected["config"].pop("fault_spec")
        assert noop == expected
        for counter in FAULT_COUNTERS:
            assert not noop[counter]

    def test_faulted_run_is_deterministic(self):
        config = ExperimentConfig(**FAST, fault_spec=self.FAULTED)
        assert _payload(config) == _payload(config)

    def test_faults_cost_power_and_latency(self):
        clean = run_experiment(ExperimentConfig(**FAST))
        faulted = run_experiment(
            ExperimentConfig(**FAST, fault_spec=self.FAULTED)
        )
        assert faulted.link_retries > 0
        assert faulted.retry_flits >= faulted.link_retries
        assert faulted.vault_stalls > 0
        assert faulted.fault_events > 0
        # Retries keep lanes transmitting longer: active I/O energy up.
        assert (faulted.breakdown.watts["active_io"]
                > clean.breakdown.watts["active_io"])
        assert faulted.avg_read_latency_ns > clean.avg_read_latency_ns

    def test_serial_and_parallel_faulted_runs_identical(self):
        configs = [
            ExperimentConfig(**FAST, fault_spec=self.FAULTED, seed=s)
            for s in (1, 2)
        ]
        serial = SerialExecutor().run_many(configs)
        parallel = ParallelExecutor(jobs=2).run_many(configs)

        def norm(r):
            d = result_to_cache_dict(r)
            d.pop("wall_time_s")
            return d

        assert [norm(r) for r in serial] == [norm(r) for r in parallel]

    def test_fault_trace_events(self, tmp_path):
        trace = tmp_path / "faults.jsonl"
        config = ExperimentConfig(
            **FAST, fault_spec=self.FAULTED,
            trace_path=str(trace), trace_categories="all",
        )
        run_experiment(config)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {e["ev"] for e in events if e["cat"] == "fault"}
        assert "fault.plan" in kinds
        assert "link.retry" in kinds
        assert "fault.vault_stall" in kinds

    def test_vault_stalls_raise_latency(self):
        clean = run_experiment(ExperimentConfig(**FAST))
        stalled = run_experiment(ExperimentConfig(
            **FAST, fault_spec="seed=5,stall=6,stall_ns=500,stall_win_ns=6000"
        ))
        assert stalled.vault_stalls > 0
        assert stalled.link_retries == 0
        assert stalled.avg_read_latency_ns > clean.avg_read_latency_ns

    def test_injector_targets_only_planned_links(self):
        from repro.core.mechanisms import make_mechanism as _mm
        from repro.network.network import MemoryNetwork
        from repro.network.topology import build_topology
        from repro.workloads import contiguous_mapping, get_profile

        profile = get_profile("sp.D")
        mapping = contiguous_mapping(profile.footprint_gb, "small")
        sim = Simulator()
        topology = build_topology("daisychain", mapping.num_modules)
        network = MemoryNetwork(sim, topology, _mm("FP"), mapping)
        names = [link.name for link in network.all_links()]
        spec = parse_fault_spec("seed=3,crc=0.5,crc_bursts=1")
        plan = build_plan(spec, names, topology.num_modules, 100_000.0)
        FaultInjector(plan).install(network)
        faulted = [lk for lk in network.all_links() if lk.faults is not None]
        targets = {ev.target for ev in plan.events}
        assert {lk.name for lk in faulted} == targets
        assert network.vault_faults is None
