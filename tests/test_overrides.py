"""Tests for the per-link mechanism override layer: spec parsing and
canonicalization, resolution against concrete topologies, heterogeneous
network wiring, cache-key behavior, and end-to-end determinism."""

import pytest

from repro.core.mechanisms import make_mechanism
from repro.core.overrides import (
    LinkMechanism,
    OverrideClause,
    OverrideError,
    canonical_override_spec,
    parse_mechanism_overrides,
    resolve_link_mechanisms,
)
from repro.harness.builder import SimulationBuilder, build_network
from repro.harness.executor import ParallelExecutor, SerialExecutor
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.io import config_to_dict, result_to_cache_dict, result_to_dict
from repro.network.topology import build_topology, daisychain, ternary_tree
from repro.workloads.mapping import make_mapping

FAST = dict(window_ns=40_000.0, epoch_ns=15_000.0)


class TestParsing:
    def test_empty_spec_parses_to_nothing(self):
        assert parse_mechanism_overrides("") == ()
        assert parse_mechanism_overrides("   ") == ()
        assert canonical_override_spec("") == ""

    def test_depth_clause(self):
        (clause,) = parse_mechanism_overrides("depth>=3:ROO")
        assert clause.kind == "depth"
        assert clause.op == ">="
        assert clause.value == 3
        assert clause.mechanism == "ROO"

    def test_link_clause_directions(self):
        both, up, down = parse_mechanism_overrides(
            "link:m2:FP,link:m2-up:VWL,link:m2-down:ROO"
        )
        assert (both.kind, both.value, both.direction) == ("link", 2, "")
        assert (up.value, up.direction) == (2, "up")
        assert (down.value, down.direction) == (2, "down")

    def test_clause_order_is_preserved(self):
        clauses = parse_mechanism_overrides("depth>=1:VWL,link:m0-up:FP")
        assert [c.kind for c in clauses] == ["depth", "link"]

    def test_canonicalization(self):
        # Case, whitespace, '=' vs '==', and mechanism aliases all
        # normalize; equivalent spellings become the same string.
        messy = "  Depth >= 2 : roo+vwl ,  LINK : m1-up : fp "
        assert canonical_override_spec(messy) == "depth>=2:VWL+ROO,link:m1-up:FP"
        assert canonical_override_spec("depth=3:dvfs") == "depth==3:DVFS"

    def test_canonical_is_idempotent(self):
        spec = "depth>=2:VWL+ROO,link:m1-up:FP"
        assert canonical_override_spec(spec) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "depth>=2",             # no mechanism
            ":VWL",                 # no selector
            "depth>=2:VWL,,",       # empty clause
            "depth!=2:VWL",         # unsupported operator
            "width>=2:VWL",         # unknown selector
            "link:q2:VWL",          # malformed link selector
            "link:m2-sideways:VWL", # unknown direction
            "depth>=2:WARP",        # unknown mechanism
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(OverrideError):
            parse_mechanism_overrides(bad)

    def test_override_error_is_a_value_error(self):
        assert issubclass(OverrideError, ValueError)

    def test_depth_operators_match(self):
        def clause(op, value):
            return OverrideClause(kind="depth", mechanism="FP", op=op, value=value)

        assert clause(">=", 2).matches(0, 2, "up")
        assert not clause(">=", 2).matches(0, 1, "up")
        assert clause("<=", 2).matches(0, 2, "down")
        assert clause("==", 2).matches(0, 2, "up")
        assert not clause("==", 2).matches(0, 3, "up")
        assert clause("<", 2).matches(0, 1, "up")
        assert clause(">", 2).matches(0, 3, "up")

    def test_link_clause_direction_matching(self):
        both = OverrideClause(kind="link", mechanism="FP", value=1)
        up = OverrideClause(kind="link", mechanism="FP", value=1, direction="up")
        assert both.matches(1, 5, "up") and both.matches(1, 5, "down")
        assert up.matches(1, 5, "up") and not up.matches(1, 5, "down")
        assert not both.matches(2, 5, "up")


class TestResolve:
    def test_empty_spec_resolves_to_no_overrides(self):
        base = make_mechanism("FP")
        assert resolve_link_mechanisms("", daisychain(4), base) == {}

    def test_depth_band_selects_both_directions(self):
        base = make_mechanism("FP")
        resolved = resolve_link_mechanisms("depth>=2:VWL", daisychain(4), base)
        # Modules 1..3 sit at depths 2..4; module 0 (depth 1) is untouched.
        assert set(resolved) == {
            "req:0->1", "resp:1->0",
            "req:1->2", "resp:2->1",
            "req:2->3", "resp:3->2",
        }
        assert all(lm.mechanism.name == "VWL" for lm in resolved.values())

    def test_single_link_selector(self):
        base = make_mechanism("FP")
        resolved = resolve_link_mechanisms("link:m2-up:ROO", daisychain(4), base)
        (lm,) = resolved.values()
        assert isinstance(lm, LinkMechanism)
        assert lm.link_name == "resp:2->1"
        assert (lm.module, lm.direction, lm.depth) == (2, "up", 3)
        assert lm.mechanism.name == "ROO"
        assert lm.source == "link:m2-up:ROO"

    def test_last_matching_clause_wins(self):
        base = make_mechanism("FP")
        resolved = resolve_link_mechanisms(
            "depth>=1:VWL,link:m0-up:ROO", daisychain(2), base
        )
        assert resolved["resp:0->-1"].mechanism.name == "ROO"
        assert resolved["req:-1->0"].mechanism.name == "VWL"

    def test_base_mechanism_match_reuses_base_object(self):
        base = make_mechanism("FP")
        resolved = resolve_link_mechanisms("link:m0:FP", daisychain(2), base)
        assert resolved["req:-1->0"].mechanism is base
        assert resolved["resp:0->-1"].mechanism is base

    def test_distinct_links_share_one_config_per_name(self):
        base = make_mechanism("FP")
        resolved = resolve_link_mechanisms("depth>=1:VWL", daisychain(3), base)
        configs = {id(lm.mechanism) for lm in resolved.values()}
        assert len(configs) == 1

    def test_wake_ns_threads_into_override_mechanisms(self):
        base = make_mechanism("FP")
        resolved = resolve_link_mechanisms(
            "link:m0:ROO", daisychain(1), base, wake_ns=20.0
        )
        assert resolved["resp:0->-1"].mechanism.wake_ns == 20.0

    def test_unknown_module_rejected_with_topology_bounds(self):
        base = make_mechanism("FP")
        with pytest.raises(OverrideError, match="modules 0..3"):
            resolve_link_mechanisms("link:m9:VWL", daisychain(4), base)

    def test_depths_follow_topology_not_module_ids(self):
        base = make_mechanism("FP")
        # ternary_tree(4): root 0 at depth 1, children 1..3 at depth 2.
        resolved = resolve_link_mechanisms("depth==2:ROO", ternary_tree(4), base)
        assert set(resolved) == {
            "req:0->1", "resp:1->0",
            "req:0->2", "resp:2->0",
            "req:0->3", "resp:3->0",
        }


class TestHeterogeneousNetwork:
    def _network(self, spec, base_name="FP", n=4):
        topo = build_topology("daisychain", n)
        base = make_mechanism(base_name)
        mapping = make_mapping("contiguous", footprint_gb=1.0, scale="small")
        resolved = resolve_link_mechanisms(spec, topo, base)
        return build_network(
            topo, base, mapping,
            link_mechanisms={name: lm.mechanism for name, lm in resolved.items()},
        )

    def test_overridden_links_carry_their_own_mechanism(self):
        network = self._network("depth>=3:VWL+ROO")
        by_name = {link.name: link for link in network.all_links()}
        assert by_name["req:1->2"].mech.name == "VWL+ROO"
        assert by_name["req:-1->0"].mech.name == "FP"

    def test_roo_enabled_follows_per_link_mechanism(self):
        network = self._network("depth>=3:VWL+ROO")
        by_name = {link.name: link for link in network.all_links()}
        assert by_name["resp:3->2"].roo_enabled
        assert not by_name["resp:0->-1"].roo_enabled

    def test_aggregates_reflect_the_mix(self):
        homogeneous = self._network("")
        assert not homogeneous.has_roo_links
        assert not homogeneous.has_width_scaling_links
        mixed = self._network("depth>=3:VWL+ROO")
        assert mixed.has_roo_links
        assert mixed.has_width_scaling_links
        roo_only = self._network("link:m3:ROO")
        assert roo_only.has_roo_links
        assert not roo_only.has_width_scaling_links

    def test_unknown_link_name_rejected_by_network(self):
        topo = build_topology("daisychain", 2)
        base = make_mechanism("FP")
        mapping = make_mapping("contiguous", footprint_gb=1.0, scale="small")
        with pytest.raises(ValueError, match="req:0->7"):
            build_network(
                topo, base, mapping,
                link_mechanisms={"req:0->7": make_mechanism("VWL")},
            )


class TestConfigIntegration:
    def test_spec_canonicalized_at_construction(self):
        cfg = ExperimentConfig(
            workload="sp.D", mechanism_overrides="Depth>=2 : roo+vwl", **FAST
        )
        assert cfg.mechanism_overrides == "depth>=2:VWL+ROO"

    def test_invalid_spec_rejected_at_construction(self):
        with pytest.raises(OverrideError):
            ExperimentConfig(workload="sp.D", mechanism_overrides="bogus", **FAST)

    def test_equivalent_spellings_share_a_cache_key(self):
        a = ExperimentConfig(
            workload="sp.D", mechanism_overrides="depth>=2:VWL+ROO", **FAST
        )
        b = ExperimentConfig(
            workload="sp.D", mechanism_overrides="depth >= 2 : ROO+VWL", **FAST
        )
        assert a.cache_key() == b.cache_key()

    def test_overrides_split_the_cache_key(self):
        plain = ExperimentConfig(workload="sp.D", **FAST)
        hetero = plain.replace(mechanism_overrides="depth>=2:VWL+ROO")
        assert plain.cache_key() != hetero.cache_key()

    def test_baseline_strips_overrides(self):
        hetero = ExperimentConfig(
            workload="sp.D", mechanism="VWL+ROO", policy="aware",
            mechanism_overrides="depth<=1:FP", **FAST
        )
        assert hetero.baseline().mechanism_overrides == ""
        assert hetero.baseline() == ExperimentConfig(workload="sp.D", **FAST).baseline()

    def test_empty_spec_omitted_from_serialized_config(self):
        plain = ExperimentConfig(workload="sp.D", **FAST)
        assert "mechanism_overrides" not in config_to_dict(plain)
        hetero = plain.replace(mechanism_overrides="depth>=2:VWL")
        assert config_to_dict(hetero)["mechanism_overrides"] == "depth>=2:VWL"


class TestEndToEnd:
    HETERO = dict(
        workload="sp.D", topology="daisychain", mechanism="FP",
        mechanism_overrides="depth>=2:VWL+ROO,link:m0-up:FP",
        policy="aware", alpha=0.05, **FAST,
    )

    def test_heterogeneous_run_completes_and_reports_spec(self):
        result = run_experiment(ExperimentConfig(**self.HETERO))
        assert result.completed_reads > 0
        row = result_to_dict(result)
        assert row["mechanism_overrides"] == "depth>=2:VWL+ROO,link:m0-up:FP"

    def test_overrides_change_measured_power(self):
        managed = run_experiment(ExperimentConfig(**self.HETERO))
        plain = run_experiment(
            ExperimentConfig(**{**self.HETERO, "mechanism_overrides": ""})
        )
        # FP links cannot sleep or narrow, so the depth-staged mix must
        # spend less I/O power than the all-FP run under the same policy.
        assert managed.network_power_w < plain.network_power_w

    def test_serial_and_parallel_heterogeneous_runs_identical(self):
        configs = [
            ExperimentConfig(**{**self.HETERO, "seed": s}) for s in (1, 2)
        ]
        serial = SerialExecutor().run_many(configs)
        parallel = ParallelExecutor(jobs=2).run_many(configs)

        def norm(r):
            d = result_to_cache_dict(r)
            d.pop("wall_time_s")
            return d

        assert [norm(r) for r in serial] == [norm(r) for r in parallel]

    def test_builder_exposes_resolved_link_mechanisms(self):
        simulation = SimulationBuilder(ExperimentConfig(**self.HETERO)).build()
        assert simulation.link_mechanisms
        assert all(
            lm.mechanism.name in ("VWL+ROO", "FP")
            for lm in simulation.link_mechanisms.values()
        )
        # The spec pins module 0's response link back to the base FP.
        assert simulation.link_mechanisms["resp:0->-1"].mechanism.name == "FP"
