"""Tests for config/result serialization and batch specs."""

import csv
import json

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.io import (
    RESULT_FIELDS,
    config_from_dict,
    config_to_dict,
    load_batch,
    result_from_cache_dict,
    result_to_cache_dict,
    result_to_dict,
    save_results_csv,
    save_results_json,
)

FAST = dict(window_ns=50_000.0, epoch_ns=15_000.0)


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        ExperimentConfig(workload="sp.D", mechanism="VWL", policy="unaware", **FAST)
    )


class TestConfigRoundtrip:
    def test_roundtrip_identity(self):
        cfg = ExperimentConfig(
            workload="is.D", topology="box", scale="big",
            mechanism="DVFS+ROO", policy="aware", alpha=0.1, seed=7,
            wake_ns=20.0, mapping="interleaved",
        )
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_json_serializable(self):
        cfg = ExperimentConfig(workload="lu.D")
        json.dumps(config_to_dict(cfg))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"workload": "lu.D", "frobnicate": 1})


class TestResultFlattening:
    def test_all_fields_present(self, result):
        row = result_to_dict(result)
        assert set(row) == set(RESULT_FIELDS)

    def test_result_fields_drift_guard(self, result):
        # RESULT_FIELDS is the CSV header contract: it must match the
        # keys result_to_dict emits, in order, with no strays either way.
        assert list(result_to_dict(result)) == list(RESULT_FIELDS)

    def test_values_consistent(self, result):
        row = result_to_dict(result)
        assert row["num_modules"] == result.num_modules
        assert row["network_power_w"] == pytest.approx(
            row["power_per_hmc_w"] * row["num_modules"]
        )
        buckets = (
            row["idle_io_w"] + row["active_io_w"] + row["logic_leak_w"]
            + row["logic_dyn_w"] + row["dram_leak_w"] + row["dram_dyn_w"]
        )
        assert buckets == pytest.approx(row["power_per_hmc_w"])


class TestCacheDictRoundtrip:
    def test_roundtrip_is_lossless(self, result):
        data = json.loads(json.dumps(result_to_cache_dict(result)))
        assert result_from_cache_dict(data) == result

    def test_link_hours_tuple_keys_roundtrip(self):
        rich = run_experiment(
            ExperimentConfig(
                workload="sp.D", mechanism="VWL", policy="unaware",
                collect_link_hours=True, **FAST,
            )
        )
        assert rich.link_hours  # tuple-keyed dict, not JSON-safe as-is
        data = json.loads(json.dumps(result_to_cache_dict(rich)))
        assert result_from_cache_dict(data).link_hours == rich.link_hours


class TestPersistence:
    def test_save_json(self, result, tmp_path):
        path = str(tmp_path / "out.json")
        assert save_results_json(path, [result]) == 1
        payload = json.loads(open(path).read())
        assert payload[0]["config"]["workload"] == "sp.D"
        assert payload[0]["metrics"]["completed_reads"] > 0

    def test_save_csv(self, result, tmp_path):
        path = str(tmp_path / "out.csv")
        assert save_results_csv(path, [result, result]) == 2
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["workload"] == "sp.D"
        assert float(rows[0]["power_per_hmc_w"]) > 0


class TestBatchSpecs:
    def test_explicit_list(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps([
            {"workload": "lu.D"},
            {"workload": "sp.D", "mechanism": "VWL", "policy": "unaware"},
        ]))
        configs = load_batch(str(path))
        assert len(configs) == 2
        assert configs[1].mechanism == "VWL"

    def test_grid_expansion(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({
            "base": {"workload": "lu.D", "window_ns": 50_000.0},
            "grid": {
                "workload": ["lu.D", "sp.D"],
                "mechanism": ["VWL", "ROO"],
                "alpha": [0.025, 0.05],
            },
        }))
        configs = load_batch(str(path))
        assert len(configs) == 8
        assert all(c.window_ns == 50_000.0 for c in configs)

    def test_bad_axis_rejected(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({
            "base": {"workload": "lu.D"},
            "grid": {"seed": [1, 2]},
        }))
        with pytest.raises(ValueError):
            load_batch(str(path))

    def test_bad_shape_rejected(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({"grid": {}}))
        with pytest.raises(ValueError):
            load_batch(str(path))
