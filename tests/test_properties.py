"""System-level property tests: conservation and accounting invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mechanisms import make_mechanism
from repro.network import MemoryNetwork, build_topology
from repro.network.topology import TOPOLOGY_BUILDERS
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


def run_random_traffic(topology_name, n, mechanism, n_accesses, seed, gating=False):
    sim = Simulator()
    topo = build_topology(topology_name, n)
    mapping = AddressMapping(num_modules=n, granularity_bytes=GB)
    net = MemoryNetwork(sim, topo, make_mechanism(mechanism), mapping)
    if mechanism != "FP":
        net.response_wake_mode = "path" if gating else "module"
        net.aware_sleep_gating = gating
    net.start()
    rng = random.Random(seed)
    reads = writes = 0
    t = 0.0
    for _ in range(n_accesses):
        t += rng.expovariate(1 / 30.0)
        addr = rng.randrange(0, n * GB, 64)
        if rng.random() < 0.7:
            net.inject_read(addr, t)
            reads += 1
        else:
            net.inject_write(addr, t)
            writes += 1
    sim.run()
    return sim, net, reads, writes


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(sorted(TOPOLOGY_BUILDERS)),
    n=st.integers(min_value=1, max_value=12),
    mechanism=st.sampled_from(["FP", "VWL", "ROO", "VWL+ROO"]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_packet_conservation(name, n, mechanism, seed):
    """Every injected access completes; no packet is lost or duplicated."""
    sim, net, reads, writes = run_random_traffic(name, n, mechanism, 120, seed)
    assert net.completed_reads == reads
    assert net.completed_writes == writes
    assert all(m.outstanding_subtree_reads == 0 for m in net.modules)
    # All link queues drained.
    for link in net.all_links():
        assert not link.read_q and not link.write_q
        assert not link.transmitting


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(["daisychain", "star", "ternary_tree"]),
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=50),
)
def test_energy_bounded_by_full_power(name, n, seed):
    """Accrued I/O energy never exceeds the all-links-full-power bound
    and never falls below the all-links-off bound."""
    sim, net, _r, _w = run_random_traffic(name, n, "ROO", 100, seed)
    window = sim.now
    net.finalize(window)
    io_j = sum(m.ledger.idle_io_j + m.ledger.active_io_j for m in net.modules)
    n_links = len(net.all_links())
    upper = n_links * 2 * 0.58625 * window * 1e-9 * (1 + 1e-9)
    lower = n_links * 2 * 0.58625 * 0.01 * window * 1e-9 * (1 - 1e-9)
    assert lower <= io_j <= upper


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=50),
)
def test_fel_matches_ael_at_full_power(n, seed):
    """With every link at full power, the delay-monitor estimate of
    aggregate read latency matches the measurement on every link that
    carried only reads (writes reorder behind reads in the real queue)."""
    sim, net, _r, _w = run_random_traffic("daisychain", n, "FP", 150, seed)
    for link in net.all_links():
        if link.ep_reads and link.write_q is not None:
            # FEL can differ when writes interleave (read priority);
            # the estimate is then conservative (>= actual).
            assert link.ep_vlat[0] >= link.ep_actual_read_lat - 1e-6


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30))
def test_determinism_across_identical_runs(seed):
    """Identical seeds produce bit-identical simulations."""
    def signature(s):
        sim, net, _r, _w = run_random_traffic("star", 6, "VWL+ROO", 80, s)
        return (
            net.completed_reads,
            round(net.sum_read_latency_ns, 6),
            tuple(round(l.busy_time_ns, 6) for l in net.all_links()),
        )

    assert signature(seed) == signature(seed)


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=30),
)
def test_sleep_gating_safe_under_load(n, seed):
    """Aware sleep gating never deadlocks or loses packets."""
    sim, net, reads, _w = run_random_traffic(
        "daisychain", n, "ROO", 100, seed, gating=True
    )
    assert net.completed_reads == reads
