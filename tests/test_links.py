"""Unit tests for link controllers: queueing, ROO, counters, energy."""

import pytest

from repro.core.mechanisms import LinkModeState, make_mechanism
from repro.network.links import BUFFER_ENTRIES, LinkController, LinkDir
from repro.network.packets import Packet, PacketKind
from repro.power.accounting import EnergyLedger
from repro.sim import Simulator

ENDPOINT_W = 0.58625


def make_link(mech_name="FP", direction=LinkDir.REQUEST, wake_ns=14.0):
    sim = Simulator()
    delivered = []
    link = LinkController(
        sim,
        name="test",
        direction=direction,
        src=-1,
        dst=0,
        mech=make_mechanism(mech_name, wake_ns=wake_ns),
        endpoint_w=ENDPOINT_W,
        ledger_src=EnergyLedger(),
        ledger_dst=EnergyLedger(),
    )
    link.deliver = lambda pkt, now: delivered.append((pkt, now))
    link.start(0.0)
    return sim, link, delivered


def read_req(addr=0, dest=0):
    return Packet(kind=PacketKind.READ_REQ, address=addr, dest=dest)


def write_req(addr=0, dest=0):
    return Packet(kind=PacketKind.WRITE_REQ, address=addr, dest=dest)


def read_resp(addr=0):
    return Packet(kind=PacketKind.READ_RESP, address=addr, dest=-1, src=0)


class TestTransmission:
    def test_single_read_request_timing(self):
        sim, link, delivered = make_link()
        sim.schedule(10.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert len(delivered) == 1
        _pkt, t = delivered[0]
        # 1 flit * 0.64 ns serialization + 3.2 ns SERDES.
        assert t == pytest.approx(10.0 + 0.64 + 3.2)

    def test_five_flit_packet_serializes_longer(self):
        sim, link, delivered = make_link()
        sim.schedule(0.0, lambda: link.enqueue(write_req(), sim.now))
        sim.run()
        assert delivered[0][1] == pytest.approx(5 * 0.64 + 3.2)

    def test_back_to_back_packets_serialize(self):
        sim, link, delivered = make_link()
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert delivered[1][1] - delivered[0][1] == pytest.approx(0.64)

    def test_reads_prioritized_over_writes(self):
        sim, link, delivered = make_link()

        def inject():
            # Write arrives first but a read arrives while it queues.
            link.enqueue(write_req(addr=1), sim.now)
            link.enqueue(write_req(addr=2), sim.now)
            link.enqueue(read_req(addr=3), sim.now)

        sim.schedule(0.0, inject)
        sim.run()
        kinds = [p.kind for p, _ in delivered]
        # First write already started; the read overtakes the second write.
        assert kinds == [
            PacketKind.WRITE_REQ, PacketKind.READ_REQ, PacketKind.WRITE_REQ,
        ]

    def test_flit_and_packet_counters(self):
        sim, link, delivered = make_link()
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.schedule(0.0, lambda: link.enqueue(write_req(), sim.now))
        sim.run()
        assert link.packets_tx == 2
        assert link.flits_tx == 6


class TestWidthModes:
    def test_narrow_mode_slows_serialization(self):
        sim, link, delivered = make_link("VWL")
        link.set_mode(LinkModeState(1, None), 0.0)  # 8-lane
        # Past the 1 us transition window:
        sim.schedule(2000.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert delivered[0][1] == pytest.approx(2000.0 + 1.28 + 3.2)

    def test_transition_runs_at_narrow_width(self):
        sim, link, delivered = make_link("VWL")
        link.set_mode(LinkModeState(3, None), 0.0)  # 1-lane, 1 us switch
        sim.schedule(100.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        # During the transition the link already runs at the narrow width.
        assert delivered[0][1] == pytest.approx(100.0 + 16 * 0.64 + 3.2)

    def test_dvfs_stretches_serdes(self):
        sim, link, delivered = make_link("DVFS")
        link.set_mode(LinkModeState(2, None), 0.0)  # 50 % bandwidth
        sim.schedule(5000.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert delivered[0][1] == pytest.approx(5000.0 + 0.64 / 0.5 + 3.2 / 0.5)


class TestRoo:
    def test_link_sleeps_after_threshold(self):
        sim, link, _ = make_link("ROO")
        link.set_mode(LinkModeState(0, 3), 0.0)  # 32 ns threshold
        sim.run(until=100.0)
        assert link.is_off

    def test_full_power_roo_mode_sleeps_after_2048(self):
        sim, link, _ = make_link("ROO")
        sim.run(until=2000.0)
        assert not link.is_off
        sim.run(until=2100.0)
        assert link.is_off

    def test_wakeup_delays_packet(self):
        sim, link, delivered = make_link("ROO")
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=1000.0)
        assert link.is_off
        sim.schedule_at(1000.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert delivered[0][1] == pytest.approx(1000.0 + 14.0 + 0.64 + 3.2)
        assert link.wakeups == 1

    def test_sensitivity_wake_latency(self):
        sim, link, delivered = make_link("ROO", wake_ns=20.0)
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=1000.0)
        sim.schedule_at(1000.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert delivered[0][1] == pytest.approx(1000.0 + 20.0 + 0.64 + 3.2)

    def test_traffic_resets_idle_timer(self):
        sim, link, _ = make_link("ROO")
        link.set_mode(LinkModeState(0, 3), 0.0)
        for t in range(0, 200, 20):
            sim.schedule_at(float(t), lambda: link.enqueue(read_req(), sim.now))
        sim.run(until=210.0)
        assert not link.is_off

    def test_proactive_wake_hides_latency(self):
        sim, link, delivered = make_link("ROO", direction=LinkDir.RESPONSE)
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=1000.0)
        assert link.is_off
        link.wake_proactively(1000.0)
        sim.schedule_at(1030.0, lambda: link.enqueue(read_resp(), sim.now))
        sim.run()
        # Wake finished at 1014; the packet flows with no wake penalty.
        assert delivered[0][1] == pytest.approx(1030.0 + 5 * 0.64 + 3.2)

    def test_can_sleep_gate_blocks_then_retries(self):
        sim, link, _ = make_link("ROO", direction=LinkDir.RESPONSE)
        allowed = [False]
        link.can_sleep = lambda: allowed[0]
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=100.0)
        assert not link.is_off  # blocked by the gate
        allowed[0] = True
        link.retry_sleep(sim.now)
        assert link.is_off

    def test_fp_network_never_sleeps(self):
        sim, link, _ = make_link("ROO")
        link.roo_enabled = False
        sim.run(until=10_000.0)
        assert not link.is_off


class TestBackpressure:
    def test_full_downstream_blocks_transmission(self):
        sim = Simulator()
        mech = make_mechanism("FP")
        down = LinkController(
            sim, "down", LinkDir.REQUEST, 0, 1, mech, ENDPOINT_W,
            EnergyLedger(), EnergyLedger(),
        )
        up = LinkController(
            sim, "up", LinkDir.REQUEST, -1, 0, mech, ENDPOINT_W,
            EnergyLedger(), EnergyLedger(),
        )
        up.next_ctrl = lambda pkt: down
        up.deliver = lambda pkt, now: (down.release_reservation(), down.enqueue(pkt, now))
        delivered = []
        down.deliver = lambda pkt, now: delivered.append(pkt)
        down.start(0.0)
        up.start(0.0)
        # Saturate the downstream queue directly.
        down.reserved = BUFFER_ENTRIES
        sim.schedule(0.0, lambda: up.enqueue(read_req(dest=1), sim.now))
        sim.run(until=50.0)
        assert up.packets_tx == 0  # blocked
        down.reserved = 0
        down._blocked_upstreams.append(up)
        sim.schedule_at(50.0, lambda: up.try_start(sim.now))
        sim.run()
        assert up.packets_tx == 1

    def test_has_space_counts_reservations(self):
        sim, link, _ = make_link()
        assert link.has_space()
        link.reserved = BUFFER_ENTRIES
        assert not link.has_space()


class TestEnergyAccounting:
    def test_idle_link_burns_full_idle_power(self):
        sim, link, _ = make_link("FP")
        sim.run(until=1e6)
        link.accrue(1e6)
        total = link.ledger_src.idle_io_j + link.ledger_dst.idle_io_j
        # Idle I/O power equals active: 2 endpoints * 0.58625 W * 1 ms.
        assert total == pytest.approx(2 * ENDPOINT_W * 1e6 * 1e-9, rel=1e-6)
        assert link.ledger_src.active_io_j == 0.0

    def test_off_link_burns_one_percent(self):
        sim, link, _ = make_link("ROO")
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=1e6)
        link.accrue(1e6)
        total = link.ledger_src.idle_io_j + link.ledger_dst.idle_io_j
        expected_on = 2 * ENDPOINT_W * 32 * 1e-9  # before sleeping
        expected_off = 2 * ENDPOINT_W * 0.01 * (1e6 - 32) * 1e-9
        assert total == pytest.approx(expected_on + expected_off, rel=1e-3)

    def test_transmission_charges_active_bucket(self):
        sim, link, _ = make_link("FP")
        sim.schedule(0.0, lambda: link.enqueue(write_req(), sim.now))
        sim.run()
        link.accrue(sim.now)
        active = link.ledger_src.active_io_j + link.ledger_dst.active_io_j
        assert active == pytest.approx(2 * ENDPOINT_W * 3.2 * 1e-9, rel=1e-6)

    def test_energy_split_between_endpoints(self):
        sim, link, _ = make_link("FP")
        sim.run(until=1000.0)
        link.accrue(1000.0)
        assert link.ledger_src.idle_io_j == pytest.approx(link.ledger_dst.idle_io_j)

    def test_narrow_mode_cheaper(self):
        sim, link, _ = make_link("VWL")
        link.set_mode(LinkModeState(3, None), 0.0)  # 1-lane
        sim.run(until=1e6)
        link.accrue(1e6)
        total = link.ledger_src.idle_io_j + link.ledger_dst.idle_io_j
        # After the 1 us transition (billed at the higher old power),
        # the link burns (1+1)/17 of full power.
        full = 2 * ENDPOINT_W * 1e-9
        expected = full * 1000.0 + full * (2 / 17) * (1e6 - 1000.0)
        assert total == pytest.approx(expected, rel=1e-3)


class TestViolationDetection:
    def test_violation_triggers_handler(self):
        sim, link, _ = make_link("VWL")
        fired = []
        link.on_violation = lambda l: fired.append(l)
        link.ams = 1.0  # allow essentially nothing
        link.set_mode(LinkModeState(3, None), 0.0)  # 1-lane
        for i in range(20):
            sim.schedule_at(1500.0 + i, lambda: link.enqueue(read_resp(), sim.now))
        sim.run()
        assert fired

    def test_force_full_power(self):
        sim, link, _ = make_link("VWL")
        link.set_mode(LinkModeState(3, None), 0.0)
        link.force_full_power(10.0)
        assert link.violated
        assert link.width_idx == 0

    def test_no_violation_under_budget(self):
        sim, link, _ = make_link("VWL")
        fired = []
        link.on_violation = lambda l: fired.append(l)
        link.ams = 1e12
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert not fired


class TestEpochCounters:
    def test_virtual_queue_matches_actual_at_full_power(self):
        sim, link, _ = make_link("VWL")
        for i in range(50):
            sim.schedule_at(i * 2.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        # At full power the delay-monitor estimate equals measured latency.
        assert link.ep_vlat[0] == pytest.approx(link.ep_actual_read_lat, rel=1e-9)

    def test_narrow_modes_estimate_higher_latency(self):
        sim, link, _ = make_link("VWL")
        for i in range(50):
            sim.schedule_at(i * 2.0, lambda: link.enqueue(read_resp(), sim.now))
        sim.run()
        assert link.ep_vlat[0] < link.ep_vlat[1] < link.ep_vlat[2] < link.ep_vlat[3]

    def test_flo_width_zero_for_full_power(self):
        sim, link, _ = make_link("VWL")
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert link.flo_width(0) == 0.0
        assert link.flo_width(3) > 0.0

    def test_idle_histogram_records_arrival_ended_intervals(self):
        sim, link, _ = make_link("ROO")
        link.roo_enabled = False  # keep it on so intervals are pure gaps
        sim.schedule_at(100.0, lambda: link.enqueue(read_req(), sim.now))
        sim.schedule_at(5000.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        # Interval 1: 0 -> 100 (>=32); interval 2: ~104 -> 5000 (>=2048).
        assert link.wakeups_for_threshold(32.0) == 2
        assert link.wakeups_for_threshold(2048.0) == 1

    def test_open_idle_counts_toward_off_time_not_wakeups(self):
        sim, link, _ = make_link("ROO")
        link.roo_enabled = False
        sim.run(until=10_000.0)
        assert link.wakeups_for_threshold(32.0) == 0
        assert link.predicted_off_ns(32.0) == pytest.approx(10_000.0 - 32.0)

    def test_reset_epoch_clears_counters(self):
        sim, link, _ = make_link("VWL")
        sim.schedule(0.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        assert link.ep_reads == 1
        link.reset_epoch(sim.now)
        assert link.ep_reads == 0
        assert link.ep_actual_read_lat == 0.0
        assert link.ep_vlat == [0.0] * 4

    def test_response_link_qd_qf(self):
        sim, link, _ = make_link("VWL", direction=LinkDir.RESPONSE)

        def burst():
            for _ in range(10):
                link.enqueue(read_resp(), sim.now)

        sim.schedule(0.0, burst)
        sim.run()
        assert link.ep_resp_packets == 10
        assert link.ep_queued > 0
        assert link.ep_qd > 0.0


class TestFloEstimates:
    def test_roo_flo_zero_without_wakeups(self):
        sim, link, _ = make_link("ROO")
        link.roo_enabled = False
        sim.run(until=100.0)
        assert link.flo_roo(3) == 0.0

    def test_roo_flo_counts_wakeups(self):
        sim, link, _ = make_link("ROO")
        link.roo_enabled = False
        sim.schedule_at(1000.0, lambda: link.enqueue(read_req(), sim.now))
        sim.run()
        # One interval >= 512 ended by an arrival: one predicted wakeup.
        assert link.flo_roo(1) == pytest.approx(14.0)

    def test_request_link_amplification(self):
        # Request links carry an extra wake * arrivals penalty; with no
        # sampled arrivals both directions predict the bare wake cost.
        sim_req, req, _ = make_link("ROO", direction=LinkDir.REQUEST)
        req.roo_enabled = False
        sim_req.schedule_at(1000.0, lambda: req.enqueue(read_req(), sim_req.now))
        sim_req.run()
        assert req.flo_roo(3) == pytest.approx(14.0)

    def test_predicted_power_fraction_drops_when_off(self):
        sim, link, _ = make_link("VWL+ROO")
        link.roo_enabled = False
        sim.run(until=100_000.0)
        full = link.predicted_power_fraction(LinkModeState(0, 0), 100_000.0)
        aggressive = link.predicted_power_fraction(LinkModeState(0, 3), 100_000.0)
        assert aggressive < full
        assert aggressive == pytest.approx(0.01, rel=0.1)

    def test_candidate_states_cover_mechanism(self):
        _sim, fp_link, _ = make_link("FP")
        assert len(fp_link.candidate_states()) == 1
        _sim, combo, _ = make_link("VWL+ROO")
        assert len(combo.candidate_states()) == 16
