"""Edge-case tests for link controllers: races between mode changes,
wakeups, transmissions, and epoch boundaries."""

import pytest

from repro.core.mechanisms import LinkModeState, make_mechanism
from repro.network.links import LinkController, LinkDir
from repro.network.packets import Packet, PacketKind
from repro.power.accounting import EnergyLedger
from repro.sim import Simulator


def make_link(mech_name="VWL+ROO"):
    sim = Simulator()
    delivered = []
    link = LinkController(
        sim, "edge", LinkDir.REQUEST, -1, 0, make_mechanism(mech_name),
        0.58625, EnergyLedger(), EnergyLedger(),
    )
    link.deliver = lambda pkt, now: delivered.append((pkt, now))
    link.start(0.0)
    return sim, link, delivered


def packet(kind=PacketKind.READ_RESP):
    return Packet(kind=kind, address=0, dest=0)


class TestModeChangeRaces:
    def test_mode_change_during_transmission(self):
        sim, link, delivered = make_link()
        sim.schedule(0.0, lambda: link.enqueue(packet(), sim.now))
        # Narrow the link while the packet serializes.
        sim.schedule(1.0, lambda: link.set_mode(LinkModeState(3, 0), sim.now))
        sim.run()
        assert len(delivered) == 1  # in-flight packet still completes

    def test_repeated_mode_changes_are_stable(self):
        sim, link, delivered = make_link()
        for i, width in enumerate((1, 2, 3, 0, 2)):
            sim.schedule(
                i * 10.0,
                lambda w=width: link.set_mode(LinkModeState(w, 0), sim.now),
            )
        sim.schedule(5000.0, lambda: link.enqueue(packet(), sim.now))
        sim.run()
        assert len(delivered) == 1
        assert link.width_idx == 2

    def test_same_mode_is_noop(self):
        sim, link, _ = make_link()
        link.set_mode(LinkModeState(0, 0), 0.0)
        # No transition window should be armed.
        assert link._trans_until == 0.0


class TestWakeRaces:
    def test_packet_arriving_during_wake_waits_once(self):
        sim, link, delivered = make_link("ROO")
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=1000.0)
        assert link.is_off
        # Two packets arrive 5 ns apart during the same wake.
        sim.schedule_at(1000.0, lambda: link.enqueue(packet(), sim.now))
        sim.schedule_at(1005.0, lambda: link.enqueue(packet(), sim.now))
        sim.run()
        assert link.wakeups == 1
        assert len(delivered) == 2

    def test_proactive_wake_then_packet(self):
        sim, link, delivered = make_link("ROO")
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=500.0)
        link.wake_proactively(500.0)
        assert not link.is_off
        sim.schedule_at(520.0, lambda: link.enqueue(packet(), sim.now))
        sim.run()
        # Wake completed at 514; no extra wakeup charged.
        assert link.wakeups == 1
        assert delivered[0][1] == pytest.approx(520.0 + 5 * 0.64 + 3.2)

    def test_wake_proactively_when_on_is_noop(self):
        sim, link, _ = make_link("ROO")
        link.wake_proactively(0.0)
        assert link.wakeups == 0

    def test_sleep_rearmed_after_mode_change_to_shorter_threshold(self):
        sim, link, _ = make_link("ROO")
        # Full-power ROO mode: would sleep at 2048 ns.
        sim.run(until=100.0)
        assert not link.is_off
        link.set_mode(LinkModeState(0, 3), sim.now)  # threshold 32 ns
        sim.run(until=200.0)
        assert link.is_off  # idle since t=0 > 32 ns already


class TestEpochBoundaryRaces:
    def test_reset_during_transmission_keeps_energy_consistent(self):
        sim, link, _ = make_link()
        sim.schedule(0.0, lambda: link.enqueue(packet(), sim.now))
        sim.schedule(1.0, lambda: link.reset_epoch(sim.now))
        sim.run()
        link.accrue(sim.now)
        total = (
            link.ledger_src.idle_io_j + link.ledger_src.active_io_j
            + link.ledger_dst.idle_io_j + link.ledger_dst.active_io_j
        )
        expected = 2 * 0.58625 * sim.now * 1e-9
        assert total == pytest.approx(expected, rel=1e-6)

    def test_reset_while_off_preserves_off_state(self):
        sim, link, _ = make_link("ROO")
        link.set_mode(LinkModeState(0, 3), 0.0)
        sim.run(until=500.0)
        assert link.is_off
        link.reset_epoch(500.0)
        assert link.is_off
        sim.schedule_at(600.0, lambda: link.enqueue(packet(), sim.now))
        sim.run()
        assert link.packets_tx == 1

    def test_counters_isolated_between_epochs(self):
        sim, link, _ = make_link()
        sim.schedule(0.0, lambda: link.enqueue(packet(), sim.now))
        sim.run()
        first_epoch_reads = link.ep_reads
        link.reset_epoch(sim.now)
        sim.schedule(10.0, lambda: link.enqueue(packet(), sim.now))
        sim.schedule(12.0, lambda: link.enqueue(packet(), sim.now))
        sim.run()
        assert first_epoch_reads == 1
        assert link.ep_reads == 2


class TestQueueDiscipline:
    def test_fifo_within_reads(self):
        sim, link, delivered = make_link()
        pkts = [packet() for _ in range(5)]

        def inject():
            for p in pkts:
                link.enqueue(p, sim.now)

        sim.schedule(0.0, inject)
        sim.run()
        assert [p.pkt_id for p, _ in delivered] == [p.pkt_id for p in pkts]

    def test_fifo_within_writes(self):
        sim, link, delivered = make_link()
        pkts = [packet(PacketKind.WRITE_REQ) for _ in range(4)]

        def inject():
            for p in pkts:
                link.enqueue(p, sim.now)

        sim.schedule(0.0, inject)
        sim.run()
        assert [p.pkt_id for p, _ in delivered] == [p.pkt_id for p in pkts]
