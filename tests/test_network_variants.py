"""End-to-end coverage for less-traveled configurations: the box
topology, page-interleaved mapping, and zero-alpha management."""

import pytest

from repro.core.mechanisms import make_mechanism
from repro.core.unaware import NetworkUnawarePolicy
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


class TestBoxTopology:
    def test_reads_complete_across_rings(self):
        sim = Simulator()
        topo = build_topology("box", 10)
        mapping = AddressMapping(num_modules=10, granularity_bytes=GB)
        net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
        net.start()
        for module in range(10):
            net.inject_read(module * GB, float(module) * 50)
        sim.run()
        assert net.completed_reads == 10

    def test_box_is_shallower_than_daisychain(self):
        box = build_topology("box", 12)
        chain = build_topology("daisychain", 12)
        assert box.max_depth < chain.max_depth


class TestInterleavedMapping:
    def make(self):
        sim = Simulator()
        n = 4
        topo = build_topology("star", n)
        mapping = AddressMapping(
            num_modules=n, granularity_bytes=4096, interleaved=True
        )
        net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
        net.start()
        return sim, net

    def test_consecutive_pages_hit_different_modules(self):
        sim, net = self.make()
        for page in range(8):
            net.inject_read(page * 4096, float(page) * 30)
        sim.run()
        reads = [m.dram_reads for m in net.modules]
        assert reads == [2, 2, 2, 2]

    def test_interleaving_spreads_traffic_evenly(self):
        import random

        sim, net = self.make()
        rng = random.Random(11)
        for i in range(200):
            net.inject_read(rng.randrange(0, 64 * GB, 64), float(i) * 10)
        sim.run()
        reads = [m.dram_reads for m in net.modules]
        assert max(reads) - min(reads) < 0.5 * max(reads)


class TestZeroAlpha:
    def test_zero_alpha_keeps_links_at_or_near_full_power(self):
        sim = Simulator()
        topo = build_topology("daisychain", 2)
        mapping = AddressMapping(num_modules=2, granularity_bytes=GB)
        net = MemoryNetwork(sim, topo, make_mechanism("VWL"), mapping)
        policy = NetworkUnawarePolicy(net, alpha=0.0, epoch_ns=5_000.0)
        net.start()
        policy.start()
        # Traffic flows through the whole window so the channel link is
        # never legitimately idle when modes are selected.
        for i in range(1600):
            net.inject_read((i % 64) * 64, float(i) * 20)
        sim.run(until=28_000.0)
        # The busy channel link cannot afford any slowdown at alpha=0.
        assert net.channel_req.width_idx == 0
        assert net.channel_resp.width_idx == 0

    def test_negative_alpha_rejected(self):
        sim = Simulator()
        topo = build_topology("daisychain", 2)
        mapping = AddressMapping(num_modules=2, granularity_bytes=GB)
        net = MemoryNetwork(sim, topo, make_mechanism("VWL"), mapping)
        with pytest.raises(ValueError):
            NetworkUnawarePolicy(net, alpha=-0.01)


class TestChannelOnlyNetwork:
    def test_single_module_star_equals_daisychain(self):
        def run(name):
            sim = Simulator()
            topo = build_topology(name, 1)
            mapping = AddressMapping(num_modules=1, granularity_bytes=GB)
            net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
            net.start()
            net.inject_read(0, 0.0)
            sim.run()
            return net.avg_read_latency_ns

        # With one module every topology degenerates to the same link.
        assert run("star") == pytest.approx(run("daisychain"))
        assert run("box") == pytest.approx(run("ternary_tree"))
