"""Tests for the execution layer: serial/parallel executors.

The acceptance bar: a ParallelExecutor-backed SweepRunner must produce
results identical to serial on a fig15-style grid, and the executor must
not break the engine's seed-determinism.
"""

import pytest

from repro.harness.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.harness.experiment import ExperimentConfig
from repro.harness.figures import RunSettings, figure_configs
from repro.harness.io import result_to_dict
from repro.harness.sweep import SweepRunner

FAST = dict(window_ns=40_000.0, epoch_ns=15_000.0)

#: A scaled-down fig15 grid: 1 workload x 1 topology still spans
#: 2 scales x 3 mechanisms x 2 alphas x 2 policies = 24 configs.
TINY = RunSettings(
    workloads=("sp.D",),
    topologies=("daisychain",),
    window_ns=30_000.0,
    epoch_ns=15_000.0,
)


class TestFactory:
    def test_serial_for_one_job(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(None), SerialExecutor)

    def test_parallel_for_many_jobs(self):
        ex = make_executor(4)
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 4

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().run_many([])


class TestSerialExecutor:
    def test_results_in_input_order(self):
        configs = [
            ExperimentConfig(workload="sp.D", seed=s, **FAST) for s in (1, 2)
        ]
        results = SerialExecutor().run_many(configs)
        assert [r.config for r in results] == configs

    def test_run_single(self):
        res = SerialExecutor().run(ExperimentConfig(workload="sp.D", **FAST))
        assert res.completed_reads > 0


class TestParallelExecutor:
    def test_single_config_runs_inline(self):
        res = ParallelExecutor(jobs=4).run_many(
            [ExperimentConfig(workload="sp.D", **FAST)]
        )
        assert len(res) == 1 and res[0].completed_reads > 0

    def test_matches_serial_bit_for_bit(self):
        """Determinism regression: executors must not perturb the engine."""
        configs = [
            ExperimentConfig(workload="sp.D", **FAST),
            ExperimentConfig(workload="sp.D", mechanism="VWL",
                             policy="unaware", **FAST),
            ExperimentConfig(workload="lu.D", mechanism="VWL+ROO",
                             policy="aware", **FAST),
            ExperimentConfig(workload="sp.D", seed=7, **FAST),
        ]
        serial = SerialExecutor().run_many(configs)
        parallel = ParallelExecutor(jobs=2).run_many(configs)
        assert [result_to_dict(r) for r in serial] == [
            result_to_dict(r) for r in parallel
        ]

    def test_link_hours_survive_pickling(self):
        cfg = ExperimentConfig(
            workload="sp.D", mechanism="VWL", policy="unaware",
            collect_link_hours=True, **FAST,
        )
        serial = SerialExecutor().run(cfg)
        parallel = ParallelExecutor(jobs=2).run_many([cfg, cfg.baseline()])[0]
        assert parallel.link_hours == serial.link_hours


class TestParallelSweep:
    def test_fig15_grid_identical_to_serial(self):
        """Acceptance: parallel fig15-style sweep == serial, bit for bit."""
        grid = figure_configs("fig15", TINY)
        assert len(grid) == 24
        serial = SweepRunner(executor=SerialExecutor()).run_all(grid)
        runner = SweepRunner(executor=ParallelExecutor(jobs=4))
        parallel = runner.run_all(grid)
        assert runner.runs == len({c.cache_key() for c in grid})
        assert [result_to_dict(r) for r in serial] == [
            result_to_dict(r) for r in parallel
        ]

    def test_instrumentation_populated(self):
        runner = SweepRunner(executor=ParallelExecutor(jobs=2))
        results = runner.run_all(
            [ExperimentConfig(workload="sp.D", seed=s, **FAST) for s in (1, 2)]
        )
        assert all(r.events_processed > 0 for r in results)
        assert all(r.wall_time_s > 0 for r in results)
        assert runner.sim_wall_time_s >= max(r.wall_time_s for r in results)
