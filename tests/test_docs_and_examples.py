"""Repository hygiene: docs exist, examples are importable and complete,
and the executable documentation actually executes."""

import ast
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(markdown_path) -> list:
    """Extract the ```python fenced blocks of a Markdown file, in order."""
    return _CODE_BLOCK.findall(markdown_path.read_text())


class TestDeliverables:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
            assert (REPO / name).is_file(), name

    def test_docs_directory(self):
        for name in (
            "architecture.md", "algorithms.md", "reproducing.md",
            "api.md", "workloads.md", "observability.md", "figures.md",
            "resilience.md", "validation.md", "serving.md",
        ):
            assert (REPO / "docs" / name).is_file(), name

    def test_at_least_three_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert (REPO / "examples" / "quickstart.py").is_file()

    def test_benchmark_per_paper_artifact(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        required = {
            "bench_table1_dram_timing.py",
            "bench_fig4_workload_cdf.py",
            "bench_fig5_power_breakdown.py",
            "bench_fig6_hops.py",
            "bench_fig8_idle_io_fraction.py",
            "bench_fig9_utilization.py",
            "bench_fig11_unaware_power.py",
            "bench_fig12_unaware_perf.py",
            "bench_fig13_link_hours.py",
            "bench_fig15_aware_vs_unaware.py",
            "bench_fig16_per_workload.py",
            "bench_fig17_aware_perf.py",
            "bench_fig18_dvfs_sensitivity.py",
            "bench_sec7_static_baseline.py",
        }
        assert required <= benches


class TestExampleQuality:
    @pytest.mark.parametrize(
        "script", sorted(p.name for p in (REPO / "examples").glob("*.py"))
    )
    def test_example_parses_and_has_main(self, script):
        source = (REPO / "examples" / script).read_text()
        tree = ast.parse(source)
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names, f"{script} lacks a main()"
        assert '__main__' in source, f"{script} lacks an entry guard"
        docstring = ast.get_docstring(tree)
        assert docstring and len(docstring) > 40, f"{script} lacks a docstring"


class TestObservabilityDocExecutes:
    """docs/observability.md is executable documentation.

    Every ```python block runs top-to-bottom in one shared namespace
    (file writes land in a temp cwd), so the event-schema reference can
    never drift from what the tracer actually emits.
    """

    def test_every_code_block_runs(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO / "docs" / "observability.md")
        assert len(blocks) >= 4, "observability.md lost its worked example"
        monkeypatch.chdir(tmp_path)
        namespace = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"observability.md[block {i}]", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(
                    f"docs/observability.md block {i} failed: {exc!r}\n{block}"
                )


class TestValidationDocExecutes:
    """docs/validation.md is executable documentation.

    The worked example (audit a run, enumerate the checker registry,
    catch a sabotage, serialize the report) runs top-to-bottom in one
    shared namespace, so the documented invariants and report schema
    can never drift from what the validation layer implements.
    """

    def test_every_code_block_runs(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO / "docs" / "validation.md")
        assert len(blocks) >= 4, "validation.md lost its worked example"
        monkeypatch.chdir(tmp_path)
        namespace = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"validation.md[block {i}]", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(
                    f"docs/validation.md block {i} failed: {exc!r}\n{block}"
                )


class TestServingDocExecutes:
    """docs/serving.md is executable documentation.

    The worked example (tiered execute, memory-tier repeat, the
    in-process HTTP stack, graceful drain) runs top-to-bottom in one
    shared namespace, so the documented API semantics -- tier names,
    /stats shape, status codes, drain behaviour -- can never drift
    from what the serve package implements.
    """

    def test_every_code_block_runs(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO / "docs" / "serving.md")
        assert len(blocks) >= 4, "serving.md lost its worked example"
        monkeypatch.chdir(tmp_path)
        namespace = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"serving.md[block {i}]", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(
                    f"docs/serving.md block {i} failed: {exc!r}\n{block}"
                )


class TestIntraRepoLinks:
    def test_markdown_links_resolve(self):
        from scripts.check_docs_links import broken_links

        broken = broken_links(REPO)
        assert not broken, "broken intra-repo Markdown links:\n" + "\n".join(
            f"  {src}: {target}" for src, target in broken
        )


class TestPublicDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in (REPO / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None:
                missing.append(str(path))
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for path in (REPO / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    if node.name.startswith("_"):
                        continue
                    if ast.get_docstring(node) is None:
                        undocumented.append(f"{path.name}:{node.name}")
        assert not undocumented, f"undocumented public items: {undocumented}"
