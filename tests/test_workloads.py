"""Unit tests for workload profiles, mapping, and the closed-loop generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mechanisms import make_mechanism
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads import (
    ClosedLoopWorkload,
    MIX_COMPOSITION,
    WORKLOAD_NAMES,
    WORKLOADS,
    contiguous_mapping,
    get_profile,
    modules_for_footprint,
    page_interleaved_mapping,
)
from repro.workloads.mapping import AddressMapping

GB = 1024**3


class TestProfiles:
    def test_fourteen_workloads(self):
        assert len(WORKLOAD_NAMES) == 14
        assert len(WORKLOADS) == 14

    def test_seven_hpc_seven_mixes(self):
        hpc = [w for w in WORKLOAD_NAMES if w.endswith(".D")]
        mixes = [w for w in WORKLOAD_NAMES if w.startswith("mix")]
        assert len(hpc) == 7 and len(mixes) == 7

    def test_average_footprint_near_17gb(self):
        # Section III-C: the average memory footprint is 17 GB.
        avg = sum(p.footprint_gb for p in WORKLOADS.values()) / len(WORKLOADS)
        assert 14 <= avg <= 19

    def test_average_channel_utilization_near_43pct(self):
        # Figure 9: average channel utilization is 43 %.
        avg = sum(p.channel_util for p in WORKLOADS.values()) / len(WORKLOADS)
        assert 0.38 <= avg <= 0.48

    def test_mixb_highest_spd_lowest(self):
        utils = {n: p.channel_util for n, p in WORKLOADS.items()}
        assert max(utils, key=utils.get) == "mixB"
        assert min(utils, key=utils.get) == "sp.D"

    def test_avg_small_network_has_about_5_hmcs(self):
        # ceil(17/4) = 5 HMCs on average for the small study.
        sizes = [modules_for_footprint(p.footprint_gb, "small") for p in WORKLOADS.values()]
        assert 4 <= sum(sizes) / len(sizes) <= 6

    def test_mix_compositions_from_table3(self):
        assert "mcf" in MIX_COMPOSITION["mixB"]
        assert "bwaves" in MIX_COMPOSITION["mixA"]
        assert len(MIX_COMPOSITION) == 7

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_profile("mixZ")

    def test_cdf_endpoints(self):
        for p in WORKLOADS.values():
            assert p.access_fraction_below(0) == 0.0
            assert p.access_fraction_below(p.footprint_gb) == 1.0

    def test_cdf_monotone(self):
        p = get_profile("cg.D")
        prev = -1.0
        for gb10 in range(0, int(p.footprint_gb * 10) + 1):
            val = p.access_fraction_below(gb10 / 10)
            assert val >= prev
            prev = val

    def test_inverse_cdf_roundtrip(self):
        p = get_profile("is.D")
        for u in (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999):
            gb = p.sample_address_gb(u)
            assert 0 <= gb <= p.footprint_gb
            assert p.access_fraction_below(gb) == pytest.approx(u, abs=1e-6)

    def test_cold_ranges_exist(self):
        # is.D's middle (Figure 4's flat segment) receives little traffic.
        p = get_profile("is.D")
        mass_6_24 = p.access_fraction_below(24) - p.access_fraction_below(6)
        assert mass_6_24 < 0.15


class TestMapping:
    def test_contiguous_module_of(self):
        m = AddressMapping(num_modules=4, granularity_bytes=4 * GB)
        assert m.module_of(0) == 0
        assert m.module_of(4 * GB) == 1
        assert m.module_of(16 * GB - 64) == 3

    def test_contiguous_rejects_out_of_range(self):
        m = AddressMapping(num_modules=2, granularity_bytes=GB)
        with pytest.raises(ValueError):
            m.module_of(2 * GB)

    def test_interleaved_wraps(self):
        m = AddressMapping(num_modules=3, granularity_bytes=4096, interleaved=True)
        assert m.module_of(0) == 0
        assert m.module_of(4096) == 1
        assert m.module_of(3 * 4096) == 0

    def test_negative_address_rejected(self):
        m = AddressMapping(num_modules=2, granularity_bytes=GB)
        with pytest.raises(ValueError):
            m.module_of(-64)

    def test_modules_for_footprint(self):
        assert modules_for_footprint(17.0, "small") == 5
        assert modules_for_footprint(17.0, "big") == 17
        assert modules_for_footprint(4.0, "small") == 1
        assert modules_for_footprint(4.5, "small") == 2

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            modules_for_footprint(8.0, "huge")

    def test_factory_functions(self):
        small = contiguous_mapping(9.0, "small")
        assert small.num_modules == 3 and not small.interleaved
        inter = page_interleaved_mapping(9.0, "big")
        assert inter.num_modules == 9 and inter.interleaved
        assert inter.granularity_bytes == 4096


def build_workload(name="lu.D", topology="daisychain", stop_ns=50_000.0, seed=1):
    profile = get_profile(name)
    mapping = contiguous_mapping(profile.footprint_gb, "small")
    sim = Simulator()
    topo = build_topology(topology, mapping.num_modules)
    net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
    wl = ClosedLoopWorkload(net, profile, stop_ns=stop_ns, seed=seed)
    return sim, net, wl


class TestGenerator:
    def test_generates_traffic(self):
        sim, net, wl = build_workload()
        net.start()
        wl.start()
        sim.run(until=50_000.0)
        assert net.completed_reads > 100
        assert net.completed_writes > 0

    def test_deterministic_across_runs(self):
        def run():
            sim, net, wl = build_workload(seed=42)
            net.start()
            wl.start()
            sim.run(until=30_000.0)
            return (net.completed_reads, net.completed_writes,
                    net.sum_read_latency_ns)

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            sim, net, wl = build_workload(seed=seed)
            net.start()
            wl.start()
            sim.run(until=30_000.0)
            return net.completed_reads

        assert run(1) != run(2)

    def test_addresses_respect_footprint(self):
        sim, net, wl = build_workload("lu.D")
        seen = []
        original = net.inject_read
        net.inject_read = lambda addr, now, stream=0: (
            seen.append(addr), original(addr, now, stream))[-1]
        net.start()
        wl.start()
        sim.run(until=20_000.0)
        assert seen
        limit = int(9 * GB)
        assert all(0 <= a < limit for a in seen)

    def test_read_fraction_approximate(self):
        sim, net, wl = build_workload("lu.D")  # read_fraction 0.75
        net.start()
        wl.start()
        sim.run(until=100_000.0)
        total = net.injected_reads + net.injected_writes
        frac = net.injected_reads / total
        assert 0.65 <= frac <= 0.85

    def test_stops_at_stop_ns(self):
        sim, net, wl = build_workload(stop_ns=10_000.0)
        net.start()
        wl.start()
        sim.run()  # run to quiescence
        assert sim.now < 30_000.0

    def test_hot_modules_receive_more_traffic(self):
        sim, net, wl = build_workload("cg.D", topology="daisychain")
        net.start()
        wl.start()
        sim.run(until=60_000.0)
        reads = [m.dram_reads for m in net.modules]
        # cg.D's CDF puts 85 % of traffic in the first 4 GB (module 0).
        assert reads[0] > sum(reads[1:])

    def test_throughput_reporting(self):
        sim, net, wl = build_workload()
        net.start()
        wl.start()
        sim.run(until=50_000.0)
        thr = wl.throughput_per_s(50_000.0)
        assert thr == pytest.approx(
            (net.completed_reads + net.completed_writes) / 50e-6
        )

    def test_channel_utilization_tracks_target(self):
        from repro.harness.metrics import channel_utilization

        sim, net, wl = build_workload("lu.D", stop_ns=200_000.0)
        net.start()
        wl.start()
        sim.run(until=200_000.0)
        util = channel_utilization(net, 200_000.0)
        target = get_profile("lu.D").channel_util
        assert abs(util - target) < 0.15


@settings(max_examples=10, deadline=None)
@given(
    u=st.floats(min_value=0.0, max_value=0.999),
    name=st.sampled_from(sorted(WORKLOADS)),
)
def test_sample_address_in_range(u, name):
    p = get_profile(name)
    gb = p.sample_address_gb(u)
    assert 0.0 <= gb <= p.footprint_gb
