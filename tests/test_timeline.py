"""Tests for the link state sampler."""

import pytest

from repro.core.mechanisms import LinkModeState, make_mechanism
from repro.harness.timeline import StateSampler
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


def make(mechanism="ROO", n=2):
    sim = Simulator()
    topo = build_topology("daisychain", n)
    mapping = AddressMapping(num_modules=n, granularity_bytes=4 * GB)
    net = MemoryNetwork(sim, topo, make_mechanism(mechanism), mapping)
    net.start()
    return sim, net


class TestSampling:
    def test_collects_samples_at_period(self):
        sim, net = make()
        sampler = StateSampler(net, period_ns=100.0)
        sampler.start()
        sim.run(until=1000.0)
        series = sampler.samples[net.channel_req]
        assert len(series) == 10
        assert series[1].time_ns - series[0].time_ns == pytest.approx(100.0)

    def test_stop_halts_collection(self):
        sim, net = make()
        sampler = StateSampler(net, period_ns=100.0)
        sampler.start()
        sim.run(until=300.0)
        sampler.stop()
        sim.run(until=1000.0)
        assert len(sampler.samples[net.channel_req]) <= 4

    def test_double_start_is_idempotent(self):
        sim, net = make()
        sampler = StateSampler(net, period_ns=100.0)
        sampler.start()
        sampler.start()
        sim.run(until=500.0)
        assert len(sampler.samples[net.channel_req]) == 5

    def test_invalid_period(self):
        _sim, net = make()
        with pytest.raises(ValueError):
            StateSampler(net, period_ns=0.0)


class TestSummaries:
    def test_off_duty_cycle_observed(self):
        sim, net = make("ROO")
        link = net.channel_req
        link.set_mode(LinkModeState(0, 3), 0.0)  # sleep after 32 ns idle
        sampler = StateSampler(net, period_ns=100.0)
        sampler.start()
        sim.run(until=5000.0)
        duty = sampler.duty_cycles()[link]
        assert duty["off"] > 0.9

    def test_width_duty_cycle(self):
        sim, net = make("VWL")
        link = net.channel_req
        link.set_mode(LinkModeState(2, None), 0.0)
        sampler = StateSampler(net, period_ns=500.0)
        sampler.start()
        sim.run(until=10_000.0)
        duty = sampler.duty_cycles()[link]
        assert duty["width_2"] > 0.9
        assert duty["off"] == 0.0

    def test_transitions_detected(self):
        sim, net = make("ROO")
        link = net.channel_req
        link.set_mode(LinkModeState(0, 3), 0.0)
        sampler = StateSampler(net, period_ns=10.0)
        sampler.start()
        # Sleep, then wake via traffic at t=2000.
        sim.schedule_at(2000.0, lambda: net.inject_read(0, sim.now))
        sim.run(until=3000.0)
        events = sampler.transitions(link)
        kinds = [k for _t, k in events]
        assert "off" in kinds and "on" in kinds

    def test_max_queue_depth(self):
        sim, net = make("FP")

        def burst():
            for i in range(20):
                net.inject_read(i * 64, sim.now)

        sim.schedule(100.0, burst)
        sampler = StateSampler(net, period_ns=1.0)
        sampler.start()
        sim.run(until=300.0)
        assert sampler.max_queue_depth(net.channel_req) > 0

    def test_empty_sampler_summaries(self):
        _sim, net = make()
        sampler = StateSampler(net)
        assert sampler.duty_cycles()[net.channel_req] == {}
        assert sampler.transitions(net.channel_req) == []
        assert sampler.max_queue_depth(net.channel_req) == 0
