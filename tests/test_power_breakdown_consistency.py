"""Cross-cutting consistency: simulated power obeys structural bounds."""

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.network.topology import build_topology
from repro.power.hmc_power import DEFAULT_POWER_MODEL

FAST = dict(window_ns=60_000.0, epoch_ns=15_000.0)


@pytest.fixture(scope="module")
def fp_result():
    return run_experiment(ExperimentConfig(workload="lu.D", topology="star", **FAST))


class TestStructuralBounds:
    def test_io_power_bounded_by_connected_links(self, fp_result):
        # Per HMC: exactly one connectivity link pair = 4 endpoints at
        # 0.586 W each when always on at full width.
        per_hmc_io_max = 4 * DEFAULT_POWER_MODEL.link_endpoint_w()
        assert fp_result.io_power_w <= per_hmc_io_max * 1.001

    def test_io_power_at_least_off_floor(self, fp_result):
        per_hmc_io_min = 4 * DEFAULT_POWER_MODEL.link_endpoint_w() * 0.01
        assert fp_result.io_power_w >= per_hmc_io_min

    def test_fp_network_io_equals_full_on(self, fp_result):
        # Full-power networks never modulate links: I/O power equals the
        # always-on constant exactly.
        expected = 4 * DEFAULT_POWER_MODEL.link_endpoint_w()
        assert fp_result.io_power_w == pytest.approx(expected, rel=1e-6)

    def test_leakage_matches_topology(self, fp_result):
        topo = build_topology("star", fp_result.num_modules)
        dram_leak = sum(
            DEFAULT_POWER_MODEL.dram_leakage_w(r) for r in topo.radix
        ) / topo.num_modules
        logic_leak = sum(
            DEFAULT_POWER_MODEL.logic_leakage_w(r) for r in topo.radix
        ) / topo.num_modules
        assert fp_result.breakdown.watts["dram_leak"] == pytest.approx(dram_leak)
        assert fp_result.breakdown.watts["logic_leak"] == pytest.approx(logic_leak)

    def test_dynamic_power_scales_with_traffic(self):
        low = run_experiment(ExperimentConfig(workload="sp.D", **FAST))
        high = run_experiment(ExperimentConfig(workload="mixB", **FAST))
        assert high.breakdown.watts["dram_dyn"] > low.breakdown.watts["dram_dyn"]
        assert high.breakdown.watts["active_io"] > low.breakdown.watts["active_io"]

    def test_managed_power_never_exceeds_fp(self):
        base = ExperimentConfig(workload="sp.D", **FAST)
        fp = run_experiment(base)
        managed = run_experiment(
            base.replace(mechanism="VWL+ROO", policy="aware", alpha=0.05)
        )
        assert managed.network_power_w <= fp.network_power_w * 1.001

    def test_idle_plus_active_io_conserved_under_fp(self, fp_result):
        # Splitting I/O into idle/active must not create or lose energy.
        total_io = (
            fp_result.breakdown.watts["idle_io"]
            + fp_result.breakdown.watts["active_io"]
        )
        assert total_io == pytest.approx(fp_result.io_power_w)
