"""Unit tests for the I/O power-control mechanism tables (Section IV)."""

import pytest

from repro.core.mechanisms import (
    DVFS_MODES,
    FLIT_TIME_FULL_NS,
    FULL_LANES,
    LinkModeState,
    MECHANISM_NAMES,
    ROO_FULL_POWER_THRESHOLD_NS,
    ROO_THRESHOLDS_NS,
    SERDES_FULL_NS,
    VWL_MODES,
    WidthMode,
    make_mechanism,
)


class TestConstants:
    def test_full_flit_time_is_064ns(self):
        # 16 B over 16 lanes at 12.5 Gbps.
        assert FLIT_TIME_FULL_NS == pytest.approx(0.64)

    def test_serdes_latency(self):
        assert SERDES_FULL_NS == pytest.approx(3.2)

    def test_roo_thresholds(self):
        assert ROO_THRESHOLDS_NS == (2048.0, 512.0, 128.0, 32.0)
        assert ROO_FULL_POWER_THRESHOLD_NS == 2048.0


class TestVwlModes:
    def test_lane_counts(self):
        assert [m.name for m in VWL_MODES] == [
            "16-lane", "8-lane", "4-lane", "1-lane",
        ]

    def test_power_formula(self):
        # Power with l lanes on is (l+1)/(16+1): clock costs one lane.
        for mode, lanes in zip(VWL_MODES, (16, 8, 4, 1)):
            assert mode.power_fraction == pytest.approx((lanes + 1) / 17)

    def test_bandwidth_scales_with_lanes(self):
        for mode, lanes in zip(VWL_MODES, (16, 8, 4, 1)):
            assert mode.bw_fraction == pytest.approx(lanes / 16)

    def test_serdes_unchanged(self):
        # VWL does not touch the I/O clock, so SERDES latency is fixed.
        assert all(m.serdes_ns == SERDES_FULL_NS for m in VWL_MODES)

    def test_flit_time_scales_inversely(self):
        assert VWL_MODES[1].flit_time_ns() == pytest.approx(2 * FLIT_TIME_FULL_NS)
        assert VWL_MODES[3].flit_time_ns() == pytest.approx(16 * FLIT_TIME_FULL_NS)


class TestDvfsModes:
    def test_bandwidth_points(self):
        assert [m.bw_fraction for m in DVFS_MODES] == [1.0, 0.8, 0.5, 0.14]

    def test_power_reductions(self):
        # Section IV-B: 0/30/65/92 % power reduction.
        assert [round(1 - m.power_fraction, 2) for m in DVFS_MODES] == [
            0.0, 0.30, 0.65, 0.92,
        ]

    def test_serdes_stretches_with_frequency(self):
        # DVFS slows the I/O clock that also clocks the SERDES.
        for mode in DVFS_MODES:
            assert mode.serdes_ns == pytest.approx(SERDES_FULL_NS / mode.bw_fraction)

    def test_dvfs_saves_more_than_vwl_at_same_bandwidth(self):
        # At 50 % bandwidth: DVFS also cuts energy per bit.
        vwl_8 = VWL_MODES[1]
        dvfs_50 = DVFS_MODES[2]
        assert dvfs_50.power_fraction < vwl_8.power_fraction


class TestWidthModeValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            WidthMode("bad", 0.0, 0.5, 3.2)

    def test_over_unity_power_rejected(self):
        with pytest.raises(ValueError):
            WidthMode("bad", 0.5, 1.5, 3.2)


class TestMakeMechanism:
    def test_fp_has_no_control(self):
        m = make_mechanism("FP")
        assert not m.has_roo
        assert not m.has_width_scaling
        assert m.num_states() == 1

    def test_vwl(self):
        m = make_mechanism("VWL")
        assert m.has_width_scaling and not m.has_roo
        assert m.width_transition_ns == 1000.0

    def test_roo(self):
        m = make_mechanism("ROO")
        assert m.has_roo and not m.has_width_scaling
        assert m.wake_ns == 14.0
        assert m.off_power_fraction == 0.01

    def test_roo_sensitivity_wake(self):
        assert make_mechanism("ROO", wake_ns=20.0).wake_ns == 20.0

    def test_dvfs_transition_is_3us(self):
        # Two 8-lane bundles scaled one at a time: up to 3 us total.
        assert make_mechanism("DVFS").width_transition_ns == 3000.0

    def test_combos(self):
        m = make_mechanism("VWL+ROO")
        assert m.has_roo and m.has_width_scaling
        assert m.num_states() == 16

    def test_case_insensitive(self):
        assert make_mechanism("vwl+roo").name == "VWL+ROO"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_mechanism("MAGIC")

    def test_all_names_constructible(self):
        for name in MECHANISM_NAMES:
            assert make_mechanism(name).name == name


class TestLinkModeState:
    def test_full_power_detection(self):
        assert LinkModeState(0, 0).is_full_power()
        assert LinkModeState(0, None).is_full_power()
        assert not LinkModeState(1, 0).is_full_power()
        assert not LinkModeState(0, 2).is_full_power()
