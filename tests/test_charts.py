"""Tests for the terminal chart renderers."""

from repro.harness.charts import bar_chart, histogram, line_chart, stacked_bar_chart


class TestBarChart:
    def test_renders_all_labels_and_values(self):
        out = bar_chart([("alpha", 1.0), ("beta", 2.0)], width=10)
        assert "alpha" in out and "beta" in out
        assert "1" in out and "2" in out

    def test_longest_bar_fills_width(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        a_line, b_line = out.splitlines()
        assert a_line.count("█") == 10
        assert 4 <= b_line.count("█") <= 5

    def test_title_and_unit(self):
        out = bar_chart([("x", 3.0)], title="Power", unit="W")
        assert out.splitlines()[0] == "Power"
        assert "3W" in out

    def test_empty(self):
        assert bar_chart([], title="T") == "T"

    def test_zero_values(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "█" not in out

    def test_explicit_vmax_scales(self):
        out = bar_chart([("a", 5.0)], width=10, vmax=10.0)
        assert out.count("█") == 5


class TestStackedBarChart:
    def test_total_reported(self):
        out = stacked_bar_chart(
            [("fp", {"idle": 1.0, "active": 0.5})],
            categories=["idle", "active"],
        )
        assert "1.5" in out

    def test_legend_lists_categories(self):
        out = stacked_bar_chart(
            [("x", {"a": 1.0, "b": 1.0})], categories=["a", "b"]
        )
        assert "=a" in out and "=b" in out

    def test_missing_categories_treated_as_zero(self):
        out = stacked_bar_chart([("x", {"a": 2.0})], categories=["a", "b"])
        assert "2" in out

    def test_empty(self):
        assert stacked_bar_chart([], categories=["a"], title="S") == "S"


class TestLineChart:
    def test_axes_ranges_shown(self):
        out = line_chart([("s", [(0.0, 0.0), (10.0, 5.0)])], width=20, height=5)
        assert "x: 0 .. 10" in out
        assert "y: 0 .. 5" in out

    def test_series_legend(self):
        out = line_chart(
            [("up", [(0, 0), (1, 1)]), ("down", [(0, 1), (1, 0)])],
            width=10, height=4,
        )
        assert "0=up" in out and "1=down" in out

    def test_marks_present(self):
        out = line_chart([("s", [(0, 0), (1, 1)])], width=10, height=4)
        assert "0" in out

    def test_flat_series_does_not_crash(self):
        out = line_chart([("flat", [(0, 2.0), (5, 2.0)])], width=10, height=4)
        assert "flat" in out

    def test_empty(self):
        assert line_chart([], title="L") == "L"


class TestHistogram:
    def test_counts_distributed(self):
        out = histogram([1.0] * 5 + [9.0] * 5, bins=2, width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("█") == lines[1].count("█")

    def test_single_value(self):
        out = histogram([3.0, 3.0], bins=4)
        assert "█" in out

    def test_empty(self):
        assert histogram([], title="H") == "H"
