"""Focused tests for Iterative Slowdown Propagation internals."""

import pytest

from repro.core.aware import NetworkAwarePolicy
from repro.core.mechanisms import LinkModeState, make_mechanism
from repro.network import MemoryNetwork, build_topology
from repro.network.links import LinkDir
from repro.sim import Simulator
from repro.workloads.mapping import AddressMapping

GB = 1024**3


def make_policy(topology="daisychain", n=4, mechanism="VWL", alpha=0.05):
    sim = Simulator()
    topo = build_topology(topology, n)
    mapping = AddressMapping(num_modules=n, granularity_bytes=GB)
    net = MemoryNetwork(sim, topo, make_mechanism(mechanism), mapping)
    policy = NetworkAwarePolicy(net, alpha=alpha, epoch_ns=10_000.0)
    net.start()
    policy.start()
    return sim, net, policy


def drive_traffic(sim, net, reads_per_module):
    """Inject a fixed number of reads per module and drain them."""
    t = 0.0
    for module, count in enumerate(reads_per_module):
        for i in range(count):
            net.inject_read(module * GB + (i * 64) % GB, t)
            t += 5.0
    sim.run(until=max(t + 2000.0, 9000.0))


class TestPrepare:
    def test_all_width_links_are_src_candidates(self):
        sim, net, policy = make_policy(mechanism="VWL")
        policy._prepare_isp()
        for link in net.all_links():
            assert link.isp_src  # width scaling available everywhere
            assert link.ams == 0.0
            assert link.isp_sel == LinkModeState(0, None)

    def test_roo_only_excludes_response_links(self):
        sim, net, policy = make_policy(mechanism="ROO")
        policy._prepare_isp()
        for m in net.modules:
            assert m.req_in.isp_src
            assert not m.resp_out.isp_src

    def test_response_candidates_pin_lowest_threshold(self):
        sim, net, policy = make_policy(mechanism="VWL+ROO")
        policy._prepare_isp()
        for m in net.modules:
            for cand in policy._cands[m.resp_out]:
                assert cand[0].roo_index == 3


class TestGather:
    def test_dsrc_counts_subtree_srcs(self):
        sim, net, policy = make_policy(topology="daisychain", n=4)
        policy._prepare_isp()
        policy._gather()
        # Chain of 4: the head's request link has 3 downstream SRCs.
        assert net.modules[0].req_in.isp_dsrc == 3
        assert net.modules[2].req_in.isp_dsrc == 1
        assert net.modules[3].req_in.isp_dsrc == 0

    def test_dsrc_on_tree(self):
        sim, net, policy = make_policy(topology="ternary_tree", n=4)
        policy._prepare_isp()
        policy._gather()
        assert net.modules[0].req_in.isp_dsrc == 3
        for child in (1, 2, 3):
            assert net.modules[child].req_in.isp_dsrc == 0

    def test_enforce_raises_upstream_power(self):
        sim, net, policy = make_policy(topology="daisychain", n=2)
        policy._prepare_isp()
        up = net.modules[0].req_in
        down = net.modules[1].req_in
        up.isp_sel = LinkModeState(3, None)  # 1-lane upstream
        down.isp_sel = LinkModeState(1, None)  # 8-lane downstream
        policy._gather()
        assert up.isp_sel.width_index <= down.isp_sel.width_index

    def test_enforce_never_touches_downstream(self):
        sim, net, policy = make_policy(topology="daisychain", n=2)
        policy._prepare_isp()
        down = net.modules[1].req_in
        down.isp_sel = LinkModeState(2, None)
        policy._gather()
        assert down.isp_sel.width_index == 2


class TestScatter:
    def test_budget_distributes_to_idle_links(self):
        sim, net, policy = make_policy(topology="daisychain", n=4)
        # Traffic only to module 0: links to 1..3 are idle.
        drive_traffic(sim, net, [300, 0, 0, 0])
        policy._prepare_isp()
        policy._gather()
        pools = {LinkDir.REQUEST: 10_000.0, LinkDir.RESPONSE: 10_000.0}
        policy._scatter(pools)
        # Idle links (zero FLO) select the lowest-power mode.
        assert net.modules[2].req_in.isp_sel.width_index == 3
        assert net.modules[3].resp_out.isp_sel.width_index == 3

    def test_negative_budget_keeps_full_power(self):
        sim, net, policy = make_policy(topology="daisychain", n=3)
        drive_traffic(sim, net, [100, 100, 100])
        policy._prepare_isp()
        policy._gather()
        pools = {LinkDir.REQUEST: -1e6, LinkDir.RESPONSE: -1e6}
        policy._scatter(pools)
        for m in net.modules:
            # Busy links with negative budgets cannot leave full power.
            if m.req_in.ep_reads > 0:
                assert m.req_in.isp_sel.width_index == 0

    def test_src_flag_clears_at_lowest_mode(self):
        sim, net, policy = make_policy(topology="daisychain", n=2)
        policy._prepare_isp()
        policy._gather()
        policy._scatter({LinkDir.REQUEST: 1e9, LinkDir.RESPONSE: 1e9})
        # With an enormous budget every link hits the lowest mode and
        # stops being a slowdown-receiving candidate.
        for link in net.all_links():
            assert link.isp_sel.width_index == 3
            assert not link.isp_src

    def test_next_lower_lookup(self):
        sim, net, policy = make_policy()
        policy._prepare_isp()
        link = net.modules[0].req_in
        cands = policy._cands[link]
        first = cands[0][0]
        nxt = policy._next_lower(cands, first)
        assert nxt is cands[1]
        last = cands[-1][0]
        assert policy._next_lower(cands, last) is None


class TestDiscountedTotals:
    def test_no_traffic_zero_totals(self):
        sim, net, policy = make_policy()
        sim.run(until=1000.0)
        fel, overhead = policy._discounted_epoch_totals()
        assert fel == 0.0
        assert overhead == pytest.approx(0.0)

    def test_fel_counts_dram_term(self):
        sim, net, policy = make_policy(n=1)
        drive_traffic(sim, net, [10])
        fel, _ = policy._discounted_epoch_totals()
        # At least the DRAM term: 10 reads x 30 ns.
        assert fel >= 10 * 30.0

    def test_discount_never_inflates_overhead(self):
        sim, net, policy = make_policy(topology="daisychain", n=3)
        drive_traffic(sim, net, [200, 200, 200])
        fel, discounted = policy._discounted_epoch_totals()
        # Compare with the undiscounted recursion (QF = 0 everywhere).
        from repro.core.ams import module_fel_ael

        raw = sum(
            module_fel_ael(m, policy.dram_read_latency_ns)[1]
            - module_fel_ael(m, policy.dram_read_latency_ns)[0]
            for m in net.modules
        )
        assert discounted <= raw + 1e-6


class TestFullAssignment:
    def test_assignment_covers_every_link(self):
        sim, net, policy = make_policy(topology="star", n=7, mechanism="VWL+ROO")
        drive_traffic(sim, net, [100, 50, 20, 10, 0, 0, 0])
        assignments = policy._assign_budgets()
        assert set(assignments) == set(net.all_links())
        for link, (ams, state) in assignments.items():
            assert state is not None
            assert 0 <= state.width_index < 4

    def test_grant_pool_nonnegative(self):
        sim, net, policy = make_policy(topology="star", n=7)
        drive_traffic(sim, net, [100, 0, 0, 0, 0, 0, 0])
        policy._assign_budgets()
        assert policy._grant_pool >= 0.0
        assert policy._grant_unit == pytest.approx(policy._grant_pool / 16, abs=1e-6) \
            or policy._grant_pool == 0.0

    def test_monotone_after_assignment(self):
        sim, net, policy = make_policy(topology="daisychain", n=5, mechanism="VWL")
        drive_traffic(sim, net, [500, 200, 80, 10, 0])
        policy._assign_budgets()
        topo = net.topology
        for m in range(topo.num_modules):
            for c in topo.children[m]:
                assert (
                    net.modules[m].req_in.isp_sel.width_index
                    <= net.modules[c].req_in.isp_sel.width_index
                )
                assert (
                    net.modules[m].resp_out.isp_sel.width_index
                    <= net.modules[c].resp_out.isp_sel.width_index
                )
