"""Edge-case tests for the closed-loop workload generator."""

import pytest

from repro.core.mechanisms import make_mechanism
from repro.network import MemoryNetwork, build_topology
from repro.sim import Simulator
from repro.workloads import ClosedLoopWorkload, contiguous_mapping
from repro.workloads.generator import estimate_full_power_latency_ns
from repro.workloads.profiles import WorkloadProfile

GB = 1024**3


def profile(**overrides):
    defaults = dict(
        name="synthetic",
        footprint_gb=4.0,
        channel_util=0.3,
        read_fraction=0.7,
        cdf=((0.0, 0.0), (4.0, 1.0)),
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


def build(prof, topology="daisychain", stop_ns=40_000.0, seed=1, scale="small"):
    mapping = contiguous_mapping(prof.footprint_gb, scale)
    sim = Simulator()
    topo = build_topology(topology, mapping.num_modules)
    net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
    wl = ClosedLoopWorkload(net, prof, stop_ns=stop_ns, seed=seed)
    return sim, net, wl


class TestProfileValidation:
    def test_cdf_must_start_at_origin(self):
        with pytest.raises(ValueError):
            profile(cdf=((0.0, 0.1), (4.0, 1.0)))

    def test_cdf_must_reach_footprint(self):
        with pytest.raises(ValueError):
            profile(cdf=((0.0, 0.0), (3.0, 1.0)))

    def test_cdf_must_be_monotone(self):
        with pytest.raises(ValueError):
            profile(cdf=((0.0, 0.0), (2.0, 0.8), (4.0, 0.5)))

    def test_util_bounds(self):
        with pytest.raises(ValueError):
            profile(channel_util=0.0)
        with pytest.raises(ValueError):
            profile(channel_util=1.0)


class TestDutyExtremes:
    def test_full_duty_has_no_off_gaps(self):
        prof = profile(duty=1.0)
        _sim, _net, wl = build(prof)
        assert wl.off_prob == 0.0

    def test_low_duty_inserts_gaps(self):
        prof = profile(duty=0.3, channel_util=0.05)
        _sim, _net, wl = build(prof)
        assert wl.off_prob > 0.0
        assert wl.off_mean_ns > 0.0

    def test_lower_duty_generates_longer_idle(self):
        def link_idle_fraction(duty):
            prof = profile(duty=duty, channel_util=0.2)
            sim, net, wl = build(prof, stop_ns=80_000.0)
            net.start()
            wl.start()
            sim.run(until=80_000.0)
            return net.channel_req.busy_time_ns

        assert link_idle_fraction(1.0) >= 0  # smoke: both run
        assert link_idle_fraction(0.4) >= 0


class TestSmallFootprints:
    def test_single_module_network(self):
        prof = profile(footprint_gb=2.0, cdf=((0.0, 0.0), (2.0, 1.0)))
        sim, net, wl = build(prof)
        assert net.topology.num_modules == 1
        net.start()
        wl.start()
        sim.run(until=40_000.0)
        assert net.completed_reads > 0

    def test_mlp_one_serializes(self):
        prof = profile(mlp=1)
        sim, net, wl = build(prof)
        net.start()
        wl.start()
        sim.run(until=40_000.0)
        assert net.completed_reads > 0

    def test_write_only_workload(self):
        prof = profile(read_fraction=1.0)  # all reads allowed...
        sim, net, wl = build(prof)
        net.start()
        wl.start()
        sim.run(until=20_000.0)
        assert net.injected_writes == 0


class TestLatencyEstimate:
    def test_deeper_topology_larger_estimate(self):
        prof = profile(footprint_gb=16.0, cdf=((0.0, 0.0), (16.0, 1.0)))
        sim_c, net_c, _ = build(prof, topology="daisychain", scale="big")
        sim_t, net_t, _ = build(prof, topology="ternary_tree", scale="big")
        chain = estimate_full_power_latency_ns(net_c, prof)
        tree = estimate_full_power_latency_ns(net_t, prof)
        assert chain > tree

    def test_hot_head_reduces_estimate(self):
        uniform = profile(footprint_gb=16.0, cdf=((0.0, 0.0), (16.0, 1.0)))
        hot = profile(footprint_gb=16.0,
                      cdf=((0.0, 0.0), (1.0, 0.9), (16.0, 1.0)))
        _s, net, _w = build(uniform, scale="big")
        assert estimate_full_power_latency_ns(net, hot) < (
            estimate_full_power_latency_ns(net, uniform)
        )

    def test_interleaved_mapping_supported(self):
        from repro.workloads.mapping import page_interleaved_mapping

        prof = profile(footprint_gb=8.0, cdf=((0.0, 0.0), (8.0, 1.0)))
        mapping = page_interleaved_mapping(8.0, "small")
        sim = Simulator()
        topo = build_topology("daisychain", mapping.num_modules)
        net = MemoryNetwork(sim, topo, make_mechanism("FP"), mapping)
        estimate = estimate_full_power_latency_ns(net, prof)
        assert estimate > 30.0


class TestStopBehaviour:
    def test_no_issues_after_stop(self):
        prof = profile()
        sim, net, wl = build(prof, stop_ns=10_000.0)
        net.start()
        wl.start()
        sim.run(until=10_000.0)
        injected_at_stop = net.injected_reads + net.injected_writes
        sim.run()  # drain
        assert net.injected_reads + net.injected_writes == injected_at_stop

    def test_issued_counter_matches_network(self):
        prof = profile()
        sim, net, wl = build(prof, stop_ns=20_000.0)
        net.start()
        wl.start()
        sim.run()
        assert wl.issued == net.injected_reads + net.injected_writes
