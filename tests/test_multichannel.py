"""Tests for the multi-channel extension."""

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.multichannel import MultiChannelResult, run_multichannel

FAST = dict(window_ns=60_000.0, epoch_ns=15_000.0)


@pytest.fixture(scope="module")
def result():
    cfg = ExperimentConfig(workload="sp.D", topology="star", **FAST)
    return run_multichannel(cfg, channels=3)


class TestRunMultichannel:
    def test_channel_count(self, result):
        assert result.num_channels == 3
        assert len(result.channels) == 3

    def test_totals_are_sums(self, result):
        assert result.total_network_power_w == pytest.approx(
            sum(c.network_power_w for c in result.channels)
        )
        assert result.total_throughput_per_s == pytest.approx(
            sum(c.throughput_per_s for c in result.channels)
        )
        assert result.total_modules == sum(c.num_modules for c in result.channels)

    def test_channels_use_distinct_seeds(self, result):
        seeds = {c.config.seed for c in result.channels}
        assert len(seeds) == 3

    def test_channels_statistically_similar(self, result):
        # The paper's single-channel methodology relies on channels
        # looking alike; the spread across seeds should be small.
        assert result.channel_power_spread() < 0.10

    def test_avg_power_per_hmc_matches_single_channel_scale(self, result):
        per_hmc = result.avg_power_per_hmc_w
        singles = [c.power_per_hmc_w for c in result.channels]
        assert min(singles) <= per_hmc <= max(singles)

    def test_idle_io_fraction_bounded(self, result):
        assert 0.0 < result.idle_io_fraction < 1.0

    def test_invalid_channel_count(self):
        cfg = ExperimentConfig(workload="sp.D", **FAST)
        with pytest.raises(ValueError):
            run_multichannel(cfg, channels=0)


class TestAggregationEdgeCases:
    def test_empty_modules_guard(self):
        empty = MultiChannelResult(channels=[])
        assert empty.avg_power_per_hmc_w == 0.0
        assert empty.idle_io_fraction == 0.0
