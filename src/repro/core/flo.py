"""Offline reference implementations of the FLO estimators.

The link controllers estimate future latency overhead (FLO) *online*
with constant-space hardware-style counters (virtual queues, idle
histograms).  This module provides straightforward offline replays of
the same quantities from full event records.  They serve two purposes:

* property tests assert the online counters match these references;
* analysis code can replay recorded traffic under hypothetical modes.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "replay_aggregate_read_latency",
    "offline_wakeups",
    "offline_off_time",
    "idle_intervals_from_busy_periods",
]


def replay_aggregate_read_latency(
    arrivals: Sequence[Tuple[float, int, bool]],
    flit_time_ns: float,
    serdes_ns: float,
) -> float:
    """Aggregate read-packet latency of a FIFO link replay.

    ``arrivals`` is a time-ordered sequence of ``(arrival_time, flits,
    is_read)``.  Every packet (reads and writes) occupies the link for
    ``flits * flit_time_ns``; only read packets accumulate latency,
    measured arrival to last-flit-out plus SERDES -- exactly what the
    online per-mode virtual queues compute.
    """
    free = 0.0
    total = 0.0
    for arrival, flits, is_read in arrivals:
        start = max(arrival, free)
        done = start + flits * flit_time_ns
        free = done
        if is_read:
            total += (done + serdes_ns) - arrival
    return total


def idle_intervals_from_busy_periods(
    busy_periods: Sequence[Tuple[float, float]], start: float, end: float
) -> List[float]:
    """Idle-interval lengths between ``busy_periods`` over [start, end]."""
    intervals: List[float] = []
    cursor = start
    for b0, b1 in busy_periods:
        if b0 > cursor:
            intervals.append(b0 - cursor)
        cursor = max(cursor, b1)
    if end > cursor:
        intervals.append(end - cursor)
    return intervals


def offline_wakeups(idle_intervals: Iterable[float], threshold_ns: float) -> int:
    """Number of wakeups a ROO mode with ``threshold_ns`` would incur.

    Every idle interval at least as long as the threshold powers the
    link off once, hence costs one wakeup.
    """
    return sum(1 for length in idle_intervals if length >= threshold_ns)


def offline_off_time(idle_intervals: Iterable[float], threshold_ns: float) -> float:
    """Total powered-off time under a ROO mode with ``threshold_ns``."""
    return sum(
        length - threshold_ns
        for length in idle_intervals
        if length >= threshold_ns
    )
