"""Management-policy base: the 100 us epoch loop and mode selection.

Both management schemes (network-unaware, Section V; network-aware,
Section VI) share the same skeleton:

1. during an epoch, link controllers accumulate hardware counters;
2. at the epoch boundary the policy computes AMS budgets (Equation 1),
   estimates each candidate mode's future latency overhead (FLO), and
   sets every link to the lowest-power mode whose FLO fits its budget;
3. during the next epoch, links that exceed their budget trip the
   violation hook and fall back to full power (Li et al.'s
   performance-directed feedback control).

Subclasses implement :meth:`_assign_budgets` which maps this epoch's
counters to a per-link AMS (and, for the network-aware scheme, runs
ISP).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.core.mechanisms import LinkModeState
from repro.registry import Registry

if TYPE_CHECKING:  # import-cycle-free type hints only
    from repro.network.links import LinkController
    from repro.network.network import MemoryNetwork

__all__ = [
    "ManagementPolicy",
    "EPOCH_NS",
    "select_lowest_power_mode",
    "ordered_candidates",
    "POLICIES",
    "POLICY_NAMES",
    "make_policy",
]

#: Epoch length (Section V, after Ahn et al. DAC'14).
EPOCH_NS: float = 100_000.0

#: Registry of management-policy factories.  Each factory is called as
#: ``factory(network, alpha, epoch_ns)`` and returns an object with a
#: ``start()`` method, or ``None`` for the unmanaged baseline.  The
#: concrete policy classes are imported lazily inside the factories so
#: this module (which they subclass from) stays import-cycle free.
POLICIES: Registry = Registry("policy")


@POLICIES.register("none")
def _policy_none(network: MemoryNetwork, alpha: float, epoch_ns: float) -> None:
    return None


@POLICIES.register("unaware")
def _policy_unaware(network: MemoryNetwork, alpha: float, epoch_ns: float):
    from repro.core.unaware import NetworkUnawarePolicy

    return NetworkUnawarePolicy(network, alpha, epoch_ns)


@POLICIES.register("aware")
def _policy_aware(network: MemoryNetwork, alpha: float, epoch_ns: float):
    from repro.core.aware import NetworkAwarePolicy

    return NetworkAwarePolicy(network, alpha, epoch_ns)


@POLICIES.register("static")
def _policy_static(network: MemoryNetwork, alpha: float, epoch_ns: float):
    from repro.core.static_baseline import StaticBaselinePolicy

    return StaticBaselinePolicy(network)


#: Recognized management policies (canonical registration order).
POLICY_NAMES = POLICIES.names()


def make_policy(name: str, network: MemoryNetwork, alpha: float, epoch_ns: float):
    """Build policy ``name`` for ``network`` (ValueError when unknown).

    Returns ``None`` for the ``"none"`` policy.
    """
    return POLICIES.get(name)(network, alpha, epoch_ns)


def ordered_candidates(
    link: LinkController, epoch_ns: float, restrict_roo_lowest: bool = False
) -> List[tuple]:
    """Candidate states of ``link`` sorted from highest to lowest power.

    Returns ``(state, predicted_power, flo)`` triples.  With
    ``restrict_roo_lowest`` only the most aggressive idleness threshold
    is considered and the ROO FLO term is dropped -- used by the
    network-aware scheme for response links whose wakeups it hides.
    """
    states = link.candidate_states()
    if restrict_roo_lowest and link.mech.has_roo:
        lowest = len(link.mech.roo_thresholds) - 1
        states = [s for s in states if s.roo_index == lowest]
    out = []
    for state in states:
        power = link.predicted_power_fraction(state, epoch_ns)
        if restrict_roo_lowest:
            flo = link.flo_width(state.width_index)
        else:
            flo = link.estimate_flo(state)
        out.append((state, power, flo))
    out.sort(key=lambda t: (-t[1], t[0].width_index))
    return out


def select_lowest_power_mode(candidates: List[tuple], ams: float) -> tuple:
    """Pick the lowest-power candidate whose FLO fits within ``ams``.

    Falls back to the first (highest-power) candidate when nothing fits.
    Returns ``(state, flo)``.
    """
    best = candidates[0]
    for cand in candidates:
        if cand[2] <= ams:
            best = cand
    return best[0], best[2]


class ManagementPolicy:
    """Skeleton epoch-driven link power management."""

    #: Response-link wakeup strategy configured on the network.
    response_wake_mode = "none"
    #: Whether response links refuse to sleep with subtree reads pending.
    aware_sleep_gating = False

    def __init__(
        self,
        network: MemoryNetwork,
        alpha: float,
        epoch_ns: float = EPOCH_NS,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.network = network
        self.alpha = alpha
        self.epoch_ns = epoch_ns
        self.sim = network.sim
        self.epochs_run = 0
        self.violations = 0
        self.dram_read_latency_ns = network.timing.read_latency_ns
        #: Optional hook ``f(links, epoch_ns)`` fired at each epoch
        #: boundary *before* counters reset -- used by the harness to
        #: collect per-epoch link statistics (e.g. Figure 13 link-hours).
        self.epoch_observer: Optional[
            Callable[[Sequence["LinkController"], float], None]
        ] = None
        #: Optional :class:`repro.obs.Tracer` for ``epoch`` events;
        #: installed by :func:`repro.obs.install_tracer`.
        self.trace = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install hooks and schedule the first epoch boundary."""
        if self.network.has_roo_links:
            self.network.response_wake_mode = self.response_wake_mode
            self.network.aware_sleep_gating = self.aware_sleep_gating
        for link in self.network.all_links():
            link.on_violation = self._on_violation
            link.ams = 0.0
        self.sim.schedule(self.epoch_ns, self._epoch_tick)

    def _epoch_tick(self) -> None:
        now = self.sim.now
        trace = self.trace
        if trace is not None:
            trace.emit(
                now,
                "epoch",
                "epoch.boundary",
                index=self.epochs_run,
                policy=type(self).__name__,
                violations=self.violations,
            )
        if self.epoch_observer is not None:
            self.epoch_observer(self.network.all_links(), self.epoch_ns)
        assignments = self._assign_budgets()
        for link in self.network.all_links():
            budget, state = assignments.get(link, (0.0, None))
            if trace is not None and state is not None:
                trace.emit(
                    now,
                    "epoch",
                    "ams.link",
                    link=link.name,
                    ams=budget,
                    width=state.width_index,
                    roo=state.roo_index,
                )
            link.reset_epoch(now)
            link.ams = budget
            if state is not None:
                link.set_mode(state, now)
        for module in self.network.modules:
            module.reset_epoch()
        self.epochs_run += 1
        self.sim.schedule(self.epoch_ns, self._epoch_tick)

    # ------------------------------------------------------------------
    def _assign_budgets(self) -> Dict[LinkController, tuple]:
        """Map each link to ``(ams_budget, LinkModeState-or-None)``.

        Called at the epoch boundary *before* counters reset; subclasses
        read the epoch counters here.
        """
        raise NotImplementedError

    def _on_violation(self, link: LinkController) -> None:
        """Default violation response: full power until the epoch ends."""
        self.violations += 1
        link.force_full_power(self.sim.now)
