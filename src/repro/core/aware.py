"""Network-aware power management (Section VI) -- the paper's contribution.

Three ideas on top of the network-unaware scheme:

**Iterative Slowdown Propagation (ISP, Section VI-A)** -- instead of
each module keeping the AMS it generated, the network-level AMS
(Equation 1, computed at the head module) is redistributed over the
whole network by a distributed scatter/gather message-passing algorithm
(capped at three iterations):

* *scatter* pushes a per-candidate-slowdown (PCS) value downstream; each
  slowdown-receiving candidate (SRC) link adds the PCS to its budget,
  selects the lowest-power mode whose FLO fits, and forwards its surplus
  split evenly over its downstream SRCs;
* *gather* counts downstream SRCs, collects unused AMS, and enforces
  that an upstream link always runs at an equal-or-higher power mode
  than any downstream link of the same type (traffic only attenuates
  moving away from the processor, so utilization is monotone).

**Response-link wakeup hiding (Section VI-B)** -- response links along
the whole return path wake proactively, staggered so the packet never
waits (``response_wake_mode="path"``), and refuse to sleep while reads
are outstanding in their subtree.  Response links therefore contribute
no ROO latency overhead: under ROO-only they are not SRCs, and under
width+ROO combos the head assigns three quarters of the unused AMS to
request links.

**Congestion discount (Section VI-C)** -- latency overhead suffered
downstream of a congested response link is not *memory* latency
overhead (the packet would merely have queued upstream sooner), so each
response link subtracts ``min(downstream_overhead * QF, QD)`` from the
overhead it reports upstream during the first gather.

Leftover AMS after ISP parks at the head module; links that trip their
AMS mid-epoch may request up to four grants of 1/16th of the pool each
before being forced to full power (Section VI-A3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.ams import SlowdownAccount, module_fel_ael
from repro.core.mechanisms import LinkModeState
from repro.core.policy import (
    ManagementPolicy,
    ordered_candidates,
    select_lowest_power_mode,
)
from repro.network.direction import LinkDir

if TYPE_CHECKING:  # import-cycle-free type hints only
    from repro.network.links import LinkController
    from repro.network.network import MemoryNetwork

__all__ = ["NetworkAwarePolicy"]


class NetworkAwarePolicy(ManagementPolicy):
    """ISP-based AMS redistribution with wakeup hiding and QD/QF discount."""

    response_wake_mode = "path"
    aware_sleep_gating = True

    #: Cap on scatter/gather rounds (Section VI-A).
    ISP_ITERATIONS: int = 3
    #: Each violation grant hands out 1/16th of the original leftover.
    GRANT_FRACTION: float = 1.0 / 16.0
    #: A link may claim at most a quarter of the pool (4 grants).
    MAX_GRANTS_PER_LINK: int = 4
    #: "Big fraction" of the next-lower mode's FLO for SRC eligibility.
    SRC_THRESHOLD: float = 0.25
    #: Share of unused AMS scattered to request links for width+ROO combos.
    REQUEST_POOL_SHARE: float = 0.75

    def __init__(
        self,
        network: MemoryNetwork,
        alpha: float,
        epoch_ns: float = 100_000.0,
        isp_iterations: int = 3,
        enable_wakeup_hiding: bool = True,
        enable_congestion_discount: bool = True,
        enable_grant_pool: bool = True,
    ) -> None:
        super().__init__(network, alpha, epoch_ns)
        if isp_iterations < 1:
            raise ValueError("need at least one ISP iteration")
        #: Ablation knobs (all on = the paper's scheme).
        self.isp_iterations = isp_iterations
        self.enable_wakeup_hiding = enable_wakeup_hiding
        self.enable_congestion_discount = enable_congestion_discount
        self.enable_grant_pool = enable_grant_pool
        if not enable_wakeup_hiding:
            # Fall back to the unaware scheme's destination-module-only
            # proactive wakeup (Section VI-B disabled).
            self.response_wake_mode = "module"
            self.aware_sleep_gating = False
        self.account = SlowdownAccount()
        self._grant_pool = 0.0
        self._grant_unit = 0.0
        self.grants_issued = 0
        # Aggregate over the (possibly heterogeneous) link set: with
        # per-link mechanism overrides the pool split keys off what any
        # link can do, not the network-wide default.
        self._roo_only = (
            network.has_roo_links and not network.has_width_scaling_links
        )
        self._combo = (
            network.has_roo_links and network.has_width_scaling_links
        )
        # Per-epoch candidate caches: link -> ordered candidate list and
        # state -> flo lookup.
        self._cands: Dict[LinkController, List[tuple]] = {}
        self._flo: Dict[LinkController, Dict[Tuple[int, Optional[int]], float]] = {}

    # ------------------------------------------------------------------
    # Epoch boundary
    # ------------------------------------------------------------------
    def _assign_budgets(self) -> Dict[LinkController, tuple]:
        trace = self.trace
        network_fel, network_overhead = self._discounted_epoch_totals()
        self.account.record_epoch(network_fel, network_fel + network_overhead)
        budget = self.account.ams(self.alpha)
        if trace is not None:
            trace.emit(
                self.sim.now,
                "epoch",
                "isp.epoch",
                fel=network_fel,
                overhead=network_overhead,
                budget=budget,
            )

        self._prepare_isp()
        for iteration in range(self.isp_iterations):
            self._gather()
            unused = self._unused(budget)
            if trace is not None:
                trace.emit(
                    self.sim.now,
                    "epoch",
                    "isp.round",
                    round=iteration,
                    pool_req=unused[LinkDir.REQUEST],
                    pool_resp=unused[LinkDir.RESPONSE],
                )
            self._scatter(unused)
        self._gather()
        leftover = max(0.0, self._unused_total(budget))
        self._grant_pool = leftover if self.enable_grant_pool else 0.0
        self._grant_unit = self._grant_pool * self.GRANT_FRACTION
        if trace is not None:
            trace.emit(
                self.sim.now,
                "epoch",
                "isp.leftover",
                leftover=leftover,
                pool=self._grant_pool,
                grant_unit=self._grant_unit,
            )

        assignments: Dict[LinkController, tuple] = {}
        for link in self.network.all_links():
            assignments[link] = (link.ams, link.isp_sel)
        return assignments

    # ------------------------------------------------------------------
    # Equation 1 with the Section VI-C congestion discount
    # ------------------------------------------------------------------
    def _discounted_epoch_totals(self) -> Tuple[float, float]:
        topo = self.network.topology
        modules = self.network.modules
        n = topo.num_modules
        own = [0.0] * n
        total_fel = 0.0
        for i, module in enumerate(modules):
            fel, ael = module_fel_ael(module, self.dram_read_latency_ns)
            total_fel += fel
            own[i] = ael - fel
        # Leaves first: contribution = own + discounted child contributions.
        order = sorted(range(n), key=topo.depth, reverse=True)
        contribution = [0.0] * n
        for m in order:
            down = sum(contribution[c] for c in topo.children[m])
            if down > 0 and self.enable_congestion_discount:
                resp = modules[m].resp_out
                qf = (
                    resp.ep_queued / resp.ep_resp_packets
                    if resp.ep_resp_packets
                    else 0.0
                )
                discounted = down - min(down * qf, resp.ep_qd)
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        "epoch",
                        "isp.discount",
                        module=m,
                        qf=qf,
                        qd=resp.ep_qd,
                        raw=down,
                        discounted=discounted,
                    )
                down = discounted
            contribution[m] = own[m] + down
        return total_fel, contribution[0]

    # ------------------------------------------------------------------
    # ISP
    # ------------------------------------------------------------------
    def _link_of(self, module_id: int, direction: LinkDir) -> LinkController:
        module = self.network.modules[module_id]
        return module.req_in if direction is LinkDir.REQUEST else module.resp_out

    def _prepare_isp(self) -> None:
        self._cands.clear()
        self._flo.clear()
        hiding = self.enable_wakeup_hiding
        for link in self.network.all_links():
            is_resp = link.direction is LinkDir.RESPONSE
            restrict = is_resp and link.mech.has_roo and hiding
            cands = ordered_candidates(link, self.epoch_ns, restrict_roo_lowest=restrict)
            self._cands[link] = cands
            self._flo[link] = {
                (c[0].width_index, c[0].roo_index): c[2] for c in cands
            }
            link.ams = 0.0
            link.isp_sel = cands[0][0]
            if (
                is_resp
                and hiding
                and link.mech.has_roo
                and not link.mech.has_width_scaling
            ):
                # Wakeup hiding absorbs this link's only overhead source,
                # so it is not a slowdown-receiving candidate.  Checked
                # per link: under overrides a ROO-only response link is
                # excluded even when other links run width-scaling mechs.
                link.isp_src = False
            else:
                link.isp_src = len(cands) > 1
            link.isp_dsrc = 0

    def _sel_flo(self, link: LinkController) -> float:
        sel = link.isp_sel
        return self._flo[link].get((sel.width_index, sel.roo_index), 0.0)

    def _gather(self) -> None:
        """Count downstream SRCs and enforce upstream >= downstream power."""
        topo = self.network.topology
        order = sorted(range(topo.num_modules), key=topo.depth, reverse=True)
        for direction in (LinkDir.REQUEST, LinkDir.RESPONSE):
            dsrc = [0] * topo.num_modules
            for m in order:
                up = self._link_of(m, direction)
                total = 0
                for c in topo.children[m]:
                    down = self._link_of(c, direction)
                    total += dsrc[c] + (1 if down.isp_src else 0)
                    self._enforce_pair(up, down)
                dsrc[m] = total
                up.isp_dsrc = total

    def _enforce_pair(self, up: LinkController, down: LinkController) -> None:
        """Raise ``up``'s power so it is never below ``down``'s."""
        u, d = up.isp_sel, down.isp_sel
        new_w = min(u.width_index, d.width_index)
        new_r = u.roo_index
        if u.roo_index is not None and d.roo_index is not None:
            new_r = min(u.roo_index, d.roo_index)
        if new_w != u.width_index or new_r != u.roo_index:
            up.isp_sel = LinkModeState(new_w, new_r)
            up.ams = self._sel_flo(up)

    def _unused_total(self, budget: float) -> float:
        spent = sum(self._sel_flo(link) for link in self.network.all_links())
        return budget - spent

    def _unused(self, budget: float) -> Dict[LinkDir, float]:
        """Split the unused network AMS into per-direction scatter pools."""
        total = self._unused_total(budget)
        n_req = sum(
            1
            for m in self.network.modules
            if m.req_in.isp_src
        )
        n_resp = sum(
            1
            for m in self.network.modules
            if m.resp_out.isp_src
        )
        if self._roo_only and self.enable_wakeup_hiding:
            return {LinkDir.REQUEST: total, LinkDir.RESPONSE: 0.0}
        if self._combo and self.enable_wakeup_hiding:
            return {
                LinkDir.REQUEST: total * self.REQUEST_POOL_SHARE,
                LinkDir.RESPONSE: total * (1.0 - self.REQUEST_POOL_SHARE),
            }
        # Width-only mechanisms share one pool: identical PCS both ways.
        n = n_req + n_resp
        if n == 0:
            return {LinkDir.REQUEST: 0.0, LinkDir.RESPONSE: 0.0}
        return {
            LinkDir.REQUEST: total * n_req / n,
            LinkDir.RESPONSE: total * n_resp / n,
        }

    def _scatter(self, pools: Dict[LinkDir, float]) -> None:
        topo = self.network.topology
        for direction in (LinkDir.REQUEST, LinkDir.RESPONSE):
            head = self._link_of(0, direction)
            n_src = head.isp_dsrc + (1 if head.isp_src else 0)
            if n_src == 0:
                continue
            pcs0 = pools[direction] / n_src
            stack = [(0, pcs0)]
            while stack:
                m, pcs = stack.pop()
                link = self._link_of(m, direction)
                out_pcs = self._scatter_visit(link, pcs)
                for c in topo.children[m]:
                    stack.append((c, out_pcs))

    def _scatter_visit(self, link: LinkController, pcs: float) -> float:
        if not link.isp_src:
            return pcs
        new_ams = link.ams + pcs
        cands = self._cands[link]
        state, flo = select_lowest_power_mode(cands, new_ams)
        dsrc = link.isp_dsrc
        out_pcs = pcs + ((new_ams - flo) / dsrc if dsrc > 0 else 0.0)
        link.isp_sel = state
        link.ams = flo
        nxt = self._next_lower(cands, state)
        link.isp_src = nxt is not None and (
            pcs + link.ams >= self.SRC_THRESHOLD * nxt[2]
        )
        return out_pcs

    @staticmethod
    def _next_lower(cands: List[tuple], state: LinkModeState) -> Optional[tuple]:
        for i, cand in enumerate(cands):
            if cand[0] == state:
                return cands[i + 1] if i + 1 < len(cands) else None
        return None

    # ------------------------------------------------------------------
    # Leftover-AMS violation grants (Section VI-A3)
    # ------------------------------------------------------------------
    def _on_violation(self, link: LinkController) -> None:
        self.violations += 1
        if (
            link.grants_used < self.MAX_GRANTS_PER_LINK
            and self._grant_pool > 0
            and self._grant_unit > 0
        ):
            grant = min(self._grant_unit, self._grant_pool)
            self._grant_pool -= grant
            link.grants_used += 1
            link.ams += grant
            self.grants_issued += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "epoch",
                    "isp.grant",
                    link=link.name,
                    grant=grant,
                    pool_left=self._grant_pool,
                )
            return
        link.force_full_power(self.sim.now)
