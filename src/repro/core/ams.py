"""Allowable-memory-slowdown (AMS) accounting -- Equation 1 of the paper.

The paper's feedback-control budget: over the life of the run, a module
(or the whole network) may accumulate at most ``alpha`` percent of its
*full-power epoch latency* (FEL) as extra aggregate read latency.  With
``FEL_{m,t}`` the estimated aggregate latency module ``m`` would have
seen in epoch ``t`` had every link run at full power, and ``AEL_{m,t}``
the measured aggregate latency, the AMS for the next epoch is

    AMS(t+1) = alpha% * sum_t FEL_t  -  sum_t (AEL_t - FEL_t)

i.e. the allowance earned so far minus the overhead already spent.  A
negative AMS means past overshoot: the subject must run at full power
until the allowance recovers.

``FEL``/``AEL`` for a module combine its DRAM read latency term
(#reads x 30 ns) with the measured / full-power-estimated read-packet
latency over its *connectivity links* (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SlowdownAccount", "module_fel_ael"]


@dataclass
class SlowdownAccount:
    """Cumulative Equation 1 state for one module or the whole network."""

    cum_fel: float = 0.0
    cum_overhead: float = 0.0

    def record_epoch(self, fel: float, ael: float) -> None:
        """Fold one epoch's FEL/AEL pair into the running sums."""
        self.cum_fel += fel
        self.cum_overhead += ael - fel

    def ams(self, alpha: float) -> float:
        """Allowable memory slowdown for the next epoch (may be negative).

        ``alpha`` is a fraction (0.025 for the paper's 2.5 %).
        """
        return alpha * self.cum_fel - self.cum_overhead


def module_fel_ael(module, dram_read_latency_ns: float) -> tuple:
    """(FEL, AEL) of ``module`` for the epoch now ending.

    Both include the DRAM term (reads x fixed access latency) plus the
    aggregate read-packet latency over the module's connectivity links:
    measured for AEL, full-power delay-monitor estimated for FEL.
    """
    dram = module.ep_dram_reads * dram_read_latency_ns
    fel = dram
    ael = dram
    for link in module.connectivity_links():
        fel += link.ep_vlat[0]
        ael += link.ep_actual_read_lat
    return fel, ael
