"""Circuit-level I/O power-control mechanisms (Section IV of the paper).

Three mechanisms, each with the paper's published parameters:

**Rapid on/off (ROO)** -- a link turns off after sitting idle longer than
its mode's *idleness threshold* (32/128/512/2048 ns); waking costs 14 ns
(20 ns in the sensitivity study) and the off state consumes 1 % of link
power.  The 2048 ns threshold is considered the full-power ROO mode.

**Variable width links (VWL)** -- the number of active lanes drops from
16 to 8, 4 or 1.  Power with ``l`` lanes on is ``(l + 1) / (16 + 1)`` of
a full-power link because the I/O clock costs about as much as one lane.
Changing width takes 1 us.

**DVFS** -- four voltage/frequency modes providing 100/80/50/14 % of full
bandwidth at 0/30/65/92 % power reduction.  DVFS also stretches SERDES
latency (the SERDES is clocked by the I/O clock) and needs up to 3 us to
complete a voltage transition (two 8-lane bundles scaled one at a time,
0.5 us per rail adjustment).

Mechanisms compose: ``VWL+ROO`` and ``DVFS+ROO`` links support both a
width/frequency mode and an idleness threshold simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.registry import Registry

__all__ = [
    "FULL_LANES",
    "FLIT_TIME_FULL_NS",
    "SERDES_FULL_NS",
    "ROO_THRESHOLDS_NS",
    "ROO_FULL_POWER_THRESHOLD_NS",
    "WidthMode",
    "MechanismConfig",
    "LinkModeState",
    "make_mechanism",
    "canonical_mechanism",
    "MECHANISMS",
    "MECHANISM_NAMES",
]

#: Lanes per unidirectional link at full width.
FULL_LANES: int = 16
#: Time to move one 16 B flit over a full-width 12.5 Gbps/lane link:
#: 16 B / (16 lanes * 12.5 Gbps / 8) = 0.64 ns.  Also the router clock.
FLIT_TIME_FULL_NS: float = 0.64
#: SERDES (serialize/deserialize) latency at full I/O frequency.
SERDES_FULL_NS: float = 3.2

#: ROO idleness thresholds, highest power (longest threshold) first.
ROO_THRESHOLDS_NS: Tuple[float, ...] = (2048.0, 512.0, 128.0, 32.0)
#: The threshold regarded as the "full power" ROO mode.
ROO_FULL_POWER_THRESHOLD_NS: float = 2048.0


@dataclass(frozen=True)
class WidthMode:
    """One VWL or DVFS operating point of a unidirectional link.

    ``bw_fraction`` scales throughput (flit time divides by it),
    ``power_fraction`` scales on-state link power, and ``serdes_ns`` is
    the absolute SERDES latency in this mode.
    """

    name: str
    bw_fraction: float
    power_fraction: float
    serdes_ns: float

    def flit_time_ns(self) -> float:
        """Time to transfer one flit in this mode."""
        return FLIT_TIME_FULL_NS / self.bw_fraction

    def __post_init__(self) -> None:
        if not 0 < self.bw_fraction <= 1:
            raise ValueError(f"bw_fraction out of range: {self.bw_fraction}")
        if not 0 < self.power_fraction <= 1:
            raise ValueError(f"power_fraction out of range: {self.power_fraction}")


def _vwl_mode(lanes: int) -> WidthMode:
    """VWL mode with ``lanes`` active: power is (l+1)/(16+1) of full."""
    return WidthMode(
        name=f"{lanes}-lane",
        bw_fraction=lanes / FULL_LANES,
        power_fraction=(lanes + 1) / (FULL_LANES + 1),
        serdes_ns=SERDES_FULL_NS,
    )


#: VWL operating points: 16, 8, 4, 1 active lanes (Section IV-C).
VWL_MODES: Tuple[WidthMode, ...] = tuple(_vwl_mode(l) for l in (16, 8, 4, 1))

#: DVFS operating points (Section IV-B): bandwidth 100/80/50/14 % at
#: 0/30/65/92 % power reduction; SERDES latency scales with the I/O clock.
DVFS_MODES: Tuple[WidthMode, ...] = tuple(
    WidthMode(
        name=f"dvfs-{int(bw * 100)}%",
        bw_fraction=bw,
        power_fraction=1.0 - reduction,
        serdes_ns=SERDES_FULL_NS / bw,
    )
    for bw, reduction in ((1.0, 0.0), (0.8, 0.30), (0.5, 0.65), (0.14, 0.92))
)

#: A bare full-power mode for links without VWL/DVFS capability.
FULL_ONLY_MODES: Tuple[WidthMode, ...] = (VWL_MODES[0],)


@dataclass(frozen=True)
class MechanismConfig:
    """The power-control capability set of every link in a network.

    ``width_modes`` are ordered from highest to lowest power;
    ``roo_thresholds`` likewise (longest idleness threshold first).  An
    empty ``roo_thresholds`` means links never power off.
    """

    name: str
    width_modes: Tuple[WidthMode, ...]
    roo_thresholds: Tuple[float, ...] = ()
    wake_ns: float = 14.0
    off_power_fraction: float = 0.01
    width_transition_ns: float = 0.0

    @property
    def has_roo(self) -> bool:
        """Whether links can be turned off when idle."""
        return bool(self.roo_thresholds)

    @property
    def has_width_scaling(self) -> bool:
        """Whether links support more than the full-power width mode."""
        return len(self.width_modes) > 1

    def num_states(self) -> int:
        """Number of distinct (width, roo) mode combinations."""
        return len(self.width_modes) * max(1, len(self.roo_thresholds))


@dataclass(frozen=True)
class LinkModeState:
    """A concrete link operating state: a width mode plus a ROO threshold.

    ``roo_index`` is an index into ``MechanismConfig.roo_thresholds`` or
    ``None`` for mechanisms without ROO.
    """

    width_index: int = 0
    roo_index: Optional[int] = None

    def is_full_power(self) -> bool:
        """True when both dimensions sit at their highest-power setting."""
        return self.width_index == 0 and self.roo_index in (None, 0)


#: Registry of mechanism factories (``(wake_ns) -> MechanismConfig``).
#: Lookups are case-insensitive and ignore spaces; the reversed combo
#: spellings (``ROO+VWL``, ``ROO+DVFS``) are registered as aliases so
#: scenario-override specs may use either order.
MECHANISMS: Registry = Registry(
    "mechanism", canonicalize=lambda s: s.upper().replace(" ", "")
)


@MECHANISMS.register("FP")
def _fp(wake_ns: float) -> MechanismConfig:
    return MechanismConfig(name="FP", width_modes=FULL_ONLY_MODES)


@MECHANISMS.register("VWL")
def _vwl(wake_ns: float) -> MechanismConfig:
    return MechanismConfig(
        name="VWL", width_modes=VWL_MODES, width_transition_ns=1000.0
    )


@MECHANISMS.register("ROO")
def _roo(wake_ns: float) -> MechanismConfig:
    return MechanismConfig(
        name="ROO",
        width_modes=FULL_ONLY_MODES,
        roo_thresholds=ROO_THRESHOLDS_NS,
        wake_ns=wake_ns,
    )


@MECHANISMS.register("DVFS")
def _dvfs(wake_ns: float) -> MechanismConfig:
    return MechanismConfig(
        name="DVFS", width_modes=DVFS_MODES, width_transition_ns=3000.0
    )


@MECHANISMS.register("VWL+ROO", aliases=("ROO+VWL",))
def _vwl_roo(wake_ns: float) -> MechanismConfig:
    return MechanismConfig(
        name="VWL+ROO",
        width_modes=VWL_MODES,
        roo_thresholds=ROO_THRESHOLDS_NS,
        wake_ns=wake_ns,
        width_transition_ns=1000.0,
    )


@MECHANISMS.register("DVFS+ROO", aliases=("ROO+DVFS",))
def _dvfs_roo(wake_ns: float) -> MechanismConfig:
    return MechanismConfig(
        name="DVFS+ROO",
        width_modes=DVFS_MODES,
        roo_thresholds=ROO_THRESHOLDS_NS,
        wake_ns=wake_ns,
        width_transition_ns=3000.0,
    )


def make_mechanism(name: str, wake_ns: float = 14.0) -> MechanismConfig:
    """Build the mechanism configuration for ``name``.

    Supported names: ``FP`` (full power, no control), ``VWL``, ``ROO``,
    ``DVFS``, ``VWL+ROO``, ``DVFS+ROO`` (plus the reversed combo
    aliases).  ``wake_ns`` applies to the ROO component only (the paper
    studies 14 ns and 20 ns).
    """
    return MECHANISMS.get(name)(wake_ns)


def canonical_mechanism(name: str) -> str:
    """Resolve ``name`` (case-insensitive, aliases ok) to its canonical
    spelling, raising ``ValueError`` for unknown names."""
    return MECHANISMS.canonical(name)


#: All recognized mechanism names (canonical spellings).
MECHANISM_NAMES: Tuple[str, ...] = MECHANISMS.names()
