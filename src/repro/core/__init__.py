"""The paper's contribution: I/O power-control mechanisms and management."""

from repro.core.ams import SlowdownAccount, module_fel_ael
from repro.core.aware import NetworkAwarePolicy
from repro.core.hardware_cost import (
    CounterBudget,
    link_counter_bits,
    module_counter_bits,
    network_overhead,
)
from repro.core.mechanisms import (
    DVFS_MODES,
    FULL_LANES,
    LinkModeState,
    MECHANISM_NAMES,
    MechanismConfig,
    ROO_THRESHOLDS_NS,
    VWL_MODES,
    WidthMode,
    make_mechanism,
)
from repro.core.overrides import (
    LinkMechanism,
    OverrideClause,
    OverrideError,
    canonical_override_spec,
    parse_mechanism_overrides,
    resolve_link_mechanisms,
)
from repro.core.policy import EPOCH_NS, ManagementPolicy
from repro.core.static_baseline import StaticBaselinePolicy, static_width_fractions
from repro.core.unaware import NetworkUnawarePolicy

__all__ = [
    "MechanismConfig",
    "WidthMode",
    "LinkModeState",
    "make_mechanism",
    "MECHANISM_NAMES",
    "VWL_MODES",
    "DVFS_MODES",
    "ROO_THRESHOLDS_NS",
    "FULL_LANES",
    "OverrideError",
    "OverrideClause",
    "LinkMechanism",
    "parse_mechanism_overrides",
    "canonical_override_spec",
    "resolve_link_mechanisms",
    "SlowdownAccount",
    "module_fel_ael",
    "ManagementPolicy",
    "EPOCH_NS",
    "NetworkUnawarePolicy",
    "NetworkAwarePolicy",
    "StaticBaselinePolicy",
    "static_width_fractions",
    "CounterBudget",
    "link_counter_bits",
    "module_counter_bits",
    "network_overhead",
]
