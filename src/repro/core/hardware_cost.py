"""Hardware-overhead accounting for the management schemes.

The paper argues its schemes are cheap: a handful of counters per link
controller, per-module Equation 1 accumulators, and -- for ISP -- one
64-byte message per module per gather step.  This module makes those
claims quantitative for any concrete network, so design-space studies
can weigh power savings against controller cost:

* :func:`link_counter_bits` -- storage per link controller, itemized;
* :func:`module_counter_bits` -- per-module Equation 1 state;
* :func:`network_overhead` -- totals for a topology: bits of state,
  ISP messages and bytes per epoch, and the wire time those messages
  occupy (a sanity check that management traffic is negligible).

Counter widths follow the quantities they hold: latency accumulators
cover an epoch of aggregate nanoseconds (48 bits is conservative),
histogram buckets and packet counts fit in 24 bits at HMC rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mechanisms import MechanismConfig
from repro.network.topology import Topology

__all__ = [
    "CounterBudget",
    "link_counter_bits",
    "module_counter_bits",
    "network_overhead",
    "LATENCY_COUNTER_BITS",
    "COUNT_COUNTER_BITS",
    "ISP_MESSAGE_BYTES",
]

#: Width of an aggregate-latency accumulator (ns over one epoch).
LATENCY_COUNTER_BITS: int = 48
#: Width of an event counter (packets, wakeups, histogram bucket).
COUNT_COUNTER_BITS: int = 24
#: Section VI-A2: each module sends a single 64 B packet per gather.
ISP_MESSAGE_BYTES: int = 64


@dataclass(frozen=True)
class CounterBudget:
    """Bits of counter state, itemized by purpose."""

    delay_monitors: int = 0
    actual_latency: int = 0
    idle_histogram: int = 0
    wake_sampling: int = 0
    congestion: int = 0
    equation1: int = 0

    @property
    def total_bits(self) -> int:
        """All state bits."""
        return (
            self.delay_monitors
            + self.actual_latency
            + self.idle_histogram
            + self.wake_sampling
            + self.congestion
            + self.equation1
        )

    @property
    def total_bytes(self) -> float:
        """All state, in bytes."""
        return self.total_bits / 8


def link_counter_bits(mechanism: MechanismConfig, network_aware: bool) -> CounterBudget:
    """Per-link-controller counter storage for a mechanism/scheme."""
    n_width = len(mechanism.width_modes)
    # One virtual queue per width mode: a next-free timestamp plus a
    # latency accumulator (the Ahn'14 delay monitor + counter pair).
    delay = n_width * 2 * LATENCY_COUNTER_BITS
    actual = LATENCY_COUNTER_BITS
    hist = 0
    sampling = 0
    if mechanism.has_roo:
        buckets = len(mechanism.roo_thresholds)
        # Per bucket: a count and a summed-length register.
        hist = buckets * (COUNT_COUNTER_BITS + LATENCY_COUNTER_BITS)
        # Sample window end, in-window count, total, sample count.
        sampling = LATENCY_COUNTER_BITS + 3 * COUNT_COUNTER_BITS
    congestion = 0
    if network_aware:
        # QD accumulator + queued/total packet counters (Section VI-C).
        congestion = LATENCY_COUNTER_BITS + 2 * COUNT_COUNTER_BITS
    return CounterBudget(
        delay_monitors=delay,
        actual_latency=actual,
        idle_histogram=hist,
        wake_sampling=sampling,
        congestion=congestion,
    )


def module_counter_bits() -> CounterBudget:
    """Per-module Equation 1 state: cumulative FEL and overhead sums
    plus the epoch's DRAM read count."""
    return CounterBudget(
        equation1=2 * LATENCY_COUNTER_BITS + COUNT_COUNTER_BITS
    )


@dataclass(frozen=True)
class NetworkOverhead:
    """Totals for one network under one scheme."""

    total_counter_bits: int
    counter_bytes_per_module: float
    isp_messages_per_epoch: int
    isp_bytes_per_epoch: int
    isp_wire_time_ns: float
    isp_wire_fraction_of_epoch: float


def network_overhead(
    topology: Topology,
    mechanism: MechanismConfig,
    network_aware: bool,
    epoch_ns: float = 100_000.0,
    isp_iterations: int = 3,
) -> NetworkOverhead:
    """Aggregate hardware/management overheads for a whole network."""
    n = topology.num_modules
    per_link = link_counter_bits(mechanism, network_aware).total_bits
    per_module = module_counter_bits().total_bits
    links = 2 * n  # one request + one response controller per module
    total_bits = links * per_link + n * per_module

    messages = 0
    message_bytes = 0
    wire_ns = 0.0
    if network_aware:
        # Per iteration: one gather message per module upstream and one
        # scatter message per module downstream (64 B each).
        messages = isp_iterations * 2 * n
        message_bytes = messages * ISP_MESSAGE_BYTES
        # Each 64 B message is 4 flits at 0.64 ns per flit.
        wire_ns = messages * 4 * 0.64
    return NetworkOverhead(
        total_counter_bits=total_bits,
        counter_bytes_per_module=total_bits / 8 / n,
        isp_messages_per_epoch=messages,
        isp_bytes_per_epoch=message_bytes,
        isp_wire_time_ns=wire_ns,
        isp_wire_fraction_of_epoch=wire_ns / epoch_ns if epoch_ns > 0 else 0.0,
    )
