"""Network-unaware power management (Section V).

The first-ever adaptation of prior single-module memory power management
to memory networks.  Every module *independently*:

1. tracks its full-power epoch latency (FEL) and actual epoch latency
   (AEL) with the Section V-A hardware counters;
2. computes its own AMS via Equation 1 (:mod:`repro.core.ams`);
3. splits the AMS equally among its connectivity links;
4. each link picks the lowest-power mode whose estimated future latency
   overhead (FLO) fits its share (Section V-B);
5. a link that exceeds its AMS mid-epoch trips to full power for the
   remainder of the epoch.

Response-link wakeups of the module being accessed are hidden under the
DRAM access (the MemBlaze adaptation): ``response_wake_mode="module"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.ams import SlowdownAccount, module_fel_ael
from repro.core.policy import (
    ManagementPolicy,
    ordered_candidates,
    select_lowest_power_mode,
)
if TYPE_CHECKING:  # import-cycle-free type hints only
    from repro.network.links import LinkController
    from repro.network.network import MemoryNetwork

__all__ = ["NetworkUnawarePolicy"]


class NetworkUnawarePolicy(ManagementPolicy):
    """Per-module AMS budgeting with no cross-module coordination."""

    response_wake_mode = "module"
    aware_sleep_gating = False

    def __init__(self, network: MemoryNetwork, alpha: float, epoch_ns: float = 100_000.0) -> None:
        super().__init__(network, alpha, epoch_ns)
        self.accounts: List[SlowdownAccount] = [
            SlowdownAccount() for _ in network.modules
        ]

    def _assign_budgets(self) -> Dict[LinkController, tuple]:
        assignments: Dict[LinkController, tuple] = {}
        for module, account in zip(self.network.modules, self.accounts):
            fel, ael = module_fel_ael(module, self.dram_read_latency_ns)
            account.record_epoch(fel, ael)
            module_ams = account.ams(self.alpha)
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "epoch",
                    "ams.module",
                    module=module.module_id,
                    fel=fel,
                    ael=ael,
                    ams=module_ams,
                )
            links = module.connectivity_links()
            share = module_ams / len(links) if links else 0.0
            for link in links:
                candidates = ordered_candidates(link, self.epoch_ns)
                state, _flo = select_lowest_power_mode(candidates, share)
                assignments[link] = (share, state)
        return assignments
