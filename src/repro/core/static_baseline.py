"""Static fat/tapered-tree bandwidth selection (Section VII-A).

The alternative the paper argues against: pick each link's bandwidth
*statically* from the topology.  With ``S(d)`` the number of links at
hop distance ``d`` and ``T`` the total number of links, a hybrid
fat+tapered tree sets the bandwidth of a link at hop distance ``d`` to

    1/S(d) * (1 - sum_{i=1}^{d-1} S(i) / T)

of the maximum, raised to the nearest available width option.  Combined
with page-interleaved address mapping the *queuing* overhead is nil when
traffic is uniform, but packets still serialize more slowly over narrow
links, so the scheme offers a single untunable power/performance point
with unpredictable worst-case overheads -- which is what the Section
VII-A comparison shows.
"""

from __future__ import annotations

from typing import Dict

from repro.core.mechanisms import LinkModeState
from typing import TYPE_CHECKING

from repro.network.topology import Topology

if TYPE_CHECKING:  # import-cycle-free type hint only
    from repro.network.network import MemoryNetwork

__all__ = ["static_width_fractions", "StaticBaselinePolicy"]


def static_width_fractions(topology: Topology) -> Dict[int, float]:
    """Per-module target bandwidth fraction for its connectivity link.

    Returns ``{module_id: fraction}`` following the fat+tapered-tree
    formula above (before rounding to an available width option).
    """
    counts = topology.links_by_depth()
    total = topology.num_modules
    fractions: Dict[int, float] = {}
    for module in range(topology.num_modules):
        d = topology.depth(module)
        upstream = sum(counts[i] for i in range(1, d))
        frac = (1.0 / counts[d]) * (1.0 - upstream / total)
        fractions[module] = max(0.0, min(1.0, frac))
    return fractions


class StaticBaselinePolicy:
    """Applies the static width selection once, at simulation start.

    Selects, per link, the narrowest width mode whose bandwidth still
    meets the formula's fraction.  ROO modes are never engaged (the
    paper's static alternative covers bandwidth only).
    """

    def __init__(self, network: MemoryNetwork) -> None:
        self.network = network
        self.fractions = static_width_fractions(network.topology)
        self.selected: Dict[int, int] = {}

    def start(self) -> None:
        """Set every connectivity link's static width mode."""
        for module in self.network.modules:
            target = self.fractions[module.module_id]
            for link in module.connectivity_links():
                # Widths come from each link's own mechanism, so a
                # heterogeneous network tapers within whatever width
                # menu each link actually has.
                mech = link.mech
                width_idx = 0
                for i, mode in enumerate(mech.width_modes):
                    if mode.bw_fraction >= target:
                        width_idx = i
                    else:
                        break
                self.selected[module.module_id] = width_idx
                state = LinkModeState(
                    width_idx, 0 if mech.has_roo else None
                )
                link.roo_enabled = False
                link.set_mode(state, self.network.sim.now)
