"""Scenario overrides: per-link mechanism assignment specs.

The paper evaluates every network with one homogeneous I/O mechanism,
but its own depth-resolved data (Figure 13 link-hours, Figure 9
utilizations) shows links near the processor behave nothing like links
near the leaves.  ``ExperimentConfig.mechanism_overrides`` lets a
scenario express that heterogeneity as a compact spec string::

    depth>=3:ROO+VWL,link:m2-up:FP

Grammar (whitespace around tokens is ignored)::

    spec      = clause ("," clause)*
    clause    = selector ":" MECH
    selector  = "depth" OP INT          # OP in  >=  <=  ==  <  >  (or "=")
              | "link:m" INT "-up"      # module INT's response link
              | "link:m" INT "-down"    # request link into module INT
              | "link:m" INT            # both connectivity links of INT
    MECH      = any registered mechanism name or alias (FP, VWL, ROO,
                DVFS, VWL+ROO, ROO+VWL, DVFS+ROO, ROO+DVFS)

A link's *depth* is the hop distance of the module whose connectivity
link it is (root modules sit at depth 1).  ``-up`` is the response link
carrying read data toward the processor; ``-down`` is the request link
into the module.  Clauses are applied in order and **the last matching
clause wins**, so broad depth bands can be layered and then pinned with
targeted per-link exceptions.

Specs are canonicalized (case, spacing, mechanism aliases) by
:func:`canonical_override_spec` so that equivalent spellings produce
identical :meth:`ExperimentConfig.cache_key` values.  The empty spec
canonicalizes to ``""`` and resolves to no overrides at all, keeping
homogeneous configs bit-identical to their pre-override form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.mechanisms import (
    MechanismConfig,
    canonical_mechanism,
    make_mechanism,
)
from repro.network.topology import Topology

__all__ = [
    "OverrideError",
    "OverrideClause",
    "LinkMechanism",
    "parse_mechanism_overrides",
    "canonical_override_spec",
    "resolve_link_mechanisms",
]


class OverrideError(ValueError):
    """Raised for malformed or unsatisfiable mechanism-override specs."""


#: Depth comparison operators, longest first so ``>=`` wins over ``>``.
_DEPTH_OPS: Tuple[str, ...] = (">=", "<=", "==", "<", ">")

_DEPTH_RE = re.compile(r"^depth\s*(>=|<=|==|=|<|>)\s*(\d+)$")
_LINK_RE = re.compile(r"^link\s*:\s*m(\d+)(?:-(up|down))?$")


@dataclass(frozen=True)
class OverrideClause:
    """One parsed ``selector:MECH`` clause.

    ``kind`` is ``"depth"`` or ``"link"``.  For depth clauses ``op`` and
    ``value`` hold the comparison; for link clauses ``value`` is the
    module id and ``direction`` is ``"up"``, ``"down"`` or ``""`` (both).
    ``mechanism`` is always the canonical mechanism name.
    """

    kind: str
    mechanism: str
    op: str = ""
    value: int = 0
    direction: str = ""

    def matches(self, module: int, depth: int, direction: str) -> bool:
        """Whether this clause selects the given connectivity link."""
        if self.kind == "depth":
            return {
                ">=": depth >= self.value,
                "<=": depth <= self.value,
                "==": depth == self.value,
                "<": depth < self.value,
                ">": depth > self.value,
            }[self.op]
        return module == self.value and self.direction in ("", direction)

    def selector_text(self) -> str:
        """Canonical selector spelling of this clause."""
        if self.kind == "depth":
            return f"depth{self.op}{self.value}"
        suffix = f"-{self.direction}" if self.direction else ""
        return f"link:m{self.value}{suffix}"

    def text(self) -> str:
        """Canonical ``selector:MECH`` spelling of this clause."""
        return f"{self.selector_text()}:{self.mechanism}"


@dataclass(frozen=True)
class LinkMechanism:
    """The resolved mechanism assignment for one unidirectional link.

    ``direction`` is ``"up"`` (response toward the processor) or
    ``"down"`` (request into the module); ``source`` records the clause
    text that produced the assignment, for introspection and tracing.
    """

    link_name: str
    module: int
    direction: str
    depth: int
    mechanism: MechanismConfig
    source: str


def parse_mechanism_overrides(spec: str) -> Tuple[OverrideClause, ...]:
    """Parse an override spec into clauses (empty tuple for ``""``).

    Raises :class:`OverrideError` (a ``ValueError``) on syntax errors or
    unknown mechanism names; validation against a concrete topology
    happens later, in :func:`resolve_link_mechanisms`.
    """
    spec = spec.strip()
    if not spec:
        return ()
    clauses = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            raise OverrideError(f"empty clause in override spec {spec!r}")
        selector, sep, mech_name = raw.rpartition(":")
        if not sep or not selector.strip() or not mech_name.strip():
            raise OverrideError(
                f"override clause {raw!r} must look like 'selector:MECH' "
                "(e.g. 'depth>=3:ROO+VWL' or 'link:m2-up:FP')"
            )
        try:
            mechanism = canonical_mechanism(mech_name.strip())
        except ValueError as exc:
            raise OverrideError(f"override clause {raw!r}: {exc}") from None
        selector = selector.strip().lower()
        m = _DEPTH_RE.match(selector)
        if m:
            op = m.group(1)
            if op == "=":
                op = "=="
            clauses.append(
                OverrideClause(
                    kind="depth", mechanism=mechanism,
                    op=op, value=int(m.group(2)),
                )
            )
            continue
        m = _LINK_RE.match(selector)
        if m:
            clauses.append(
                OverrideClause(
                    kind="link", mechanism=mechanism,
                    value=int(m.group(1)), direction=m.group(2) or "",
                )
            )
            continue
        raise OverrideError(
            f"unknown override selector {selector!r} in clause {raw!r}; "
            "expected 'depth<op><N>' or 'link:m<id>[-up|-down]'"
        )
    return tuple(clauses)


def canonical_override_spec(spec: str) -> str:
    """Canonical spelling of ``spec`` (identity for already-canonical).

    Normalizes case, spacing, ``=`` vs ``==``, and mechanism aliases
    (``ROO+VWL`` becomes ``VWL+ROO``) while preserving clause order,
    which is semantically significant (last match wins).
    """
    return ",".join(c.text() for c in parse_mechanism_overrides(spec))


def resolve_link_mechanisms(
    spec: Union[str, Sequence[OverrideClause]],
    topology: Topology,
    base_mechanism: MechanismConfig,
    wake_ns: float = 14.0,
) -> Dict[str, LinkMechanism]:
    """Resolve override clauses to concrete per-link assignments.

    Returns ``{link_name: LinkMechanism}`` for every connectivity link
    selected by at least one clause (the last matching clause wins);
    unselected links keep ``base_mechanism`` and are absent from the
    result, so an empty spec returns ``{}``.

    Raises :class:`OverrideError` when a link clause names a module the
    topology does not have.
    """
    clauses = (
        parse_mechanism_overrides(spec) if isinstance(spec, str) else tuple(spec)
    )
    if not clauses:
        return {}
    n = topology.num_modules
    for clause in clauses:
        if clause.kind == "link" and not 0 <= clause.value < n:
            raise OverrideError(
                f"override clause {clause.text()!r} names module "
                f"{clause.value}, but the topology has modules 0..{n - 1}"
            )
    # One MechanismConfig instance per distinct name: links freely share
    # the frozen config object.
    mechs: Dict[str, MechanismConfig] = {}

    def mech_for(name: str) -> MechanismConfig:
        if name not in mechs:
            mechs[name] = make_mechanism(name, wake_ns=wake_ns)
        return mechs[name]

    out: Dict[str, LinkMechanism] = {}
    for i in range(n):
        parent = topology.parent[i]
        depth = topology.depth(i)
        for direction, link_name in (
            ("down", f"req:{parent}->{i}"),
            ("up", f"resp:{i}->{parent}"),
        ):
            winner: Optional[OverrideClause] = None
            for clause in clauses:
                if clause.matches(i, depth, direction):
                    winner = clause
            if winner is None:
                continue
            if winner.mechanism == base_mechanism.name:
                # Matching the base mechanism is a no-op assignment;
                # reuse the base config so homogeneous behavior (and
                # object identity checks) are preserved exactly.
                mechanism = base_mechanism
            else:
                mechanism = mech_for(winner.mechanism)
            out[link_name] = LinkMechanism(
                link_name=link_name,
                module=i,
                direction=direction,
                depth=depth,
                mechanism=mechanism,
                source=winner.text(),
            )
    return out
