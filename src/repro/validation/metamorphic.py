"""Metamorphic relations over whole experiments.

Unlike the checkers in :mod:`repro.validation.checks`, which inspect a
single simulation's internal accounting, metamorphic relations compare
*multiple* runs whose results must be ordered or related in a known
way even though no single run has a known-correct answer:

* **alpha monotonicity** -- a larger degradation budget can only let a
  management policy save more power (total power non-increasing in
  alpha) at the cost of no less degradation (non-decreasing in alpha);
* **traffic monotonicity** -- under full power, traffic-driven power
  (active I/O + logic dynamic + DRAM dynamic) is non-decreasing in
  workload channel utilization;
* **topology scaling** -- at full power every link endpoint always
  burns its full endpoint wattage, so per-HMC I/O power must equal
  ``sum(2 * endpoint_w) / num_modules`` exactly on every topology;
* **window scaling** -- doubling the measurement window leaves per-HMC
  power approximately unchanged (energy is linear in time).

Each relation runs a handful of short windows via
:func:`~repro.harness.experiment.run_experiment` and returns
:class:`~repro.validation.violations.Violation` objects on breach.
Slack bands are deliberately generous where the simulator is *allowed*
to wobble (epoch granularity, discrete width menus, warmup) and exact
where it is not (full-power I/O).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import performance_degradation
from repro.validation.violations import Violation

__all__ = [
    "METAMORPHIC_RELATIONS",
    "check_alpha_monotonicity",
    "check_traffic_monotonicity",
    "check_topology_scaling",
    "check_window_scaling",
]

#: Monotonicity slack: discrete width menus and epoch-granular budget
#: assignment make power/degradation only *approximately* monotone; a
#: correct simulator stays within these bands on the suite's windows.
POWER_SLACK_REL = 0.02
DEGRADATION_SLACK_ABS = 0.02
#: Traffic-driven power comparisons span workloads with >= 2x channel
#: utilization gaps, so a small relative slack suffices.
TRAFFIC_SLACK_REL = 0.05
#: Window scaling tolerates warmup/tail effects on short windows.
WINDOW_SLACK_REL = 0.05


def _violation(check: str, message: str, config: str, quantities, tolerance=None):
    return Violation(
        check=check,
        message=message,
        config=config,
        quantities=quantities,
        tolerance=tolerance,
    )


def check_alpha_monotonicity(
    topology: str = "daisychain",
    workload: str = "mixB",
    mechanism: str = "VWL+ROO",
    policy: str = "unaware",
    alphas: Sequence[float] = (0.01, 0.05, 0.15),
    window_ns: float = 200_000.0,
) -> List[Violation]:
    """Power non-increasing and degradation non-decreasing in alpha.

    Runs the matching full-power baseline once, then the managed config
    at each budget in ``alphas`` (ascending).  A larger budget gives
    the policy strictly more freedom, so within the declared slack it
    must not *increase* power nor *decrease* degradation.
    """
    base_cfg = ExperimentConfig(
        workload=workload, topology=topology, window_ns=window_ns
    )
    baseline = run_experiment(base_cfg)
    label = f"{workload}/{topology}/small/{mechanism}/{policy}"
    points: List[Tuple[float, float, float]] = []
    for alpha in sorted(alphas):
        result = run_experiment(
            base_cfg.replace(mechanism=mechanism, policy=policy, alpha=alpha)
        )
        degradation = performance_degradation(
            baseline.throughput_per_s, result.throughput_per_s
        )
        points.append((alpha, result.power_per_hmc_w, degradation))
    out: List[Violation] = []
    for (a0, p0, d0), (a1, p1, d1) in zip(points, points[1:]):
        if p1 > p0 * (1.0 + POWER_SLACK_REL):
            out.append(_violation(
                "metamorphic_alpha",
                f"power increased when alpha grew {a0:g} -> {a1:g}",
                label,
                {"alpha_lo": a0, "power_lo_w": p0, "alpha_hi": a1, "power_hi_w": p1},
                tolerance=POWER_SLACK_REL,
            ))
        if d1 < d0 - DEGRADATION_SLACK_ABS:
            out.append(_violation(
                "metamorphic_alpha",
                f"degradation decreased when alpha grew {a0:g} -> {a1:g}",
                label,
                {
                    "alpha_lo": a0,
                    "degradation_lo": d0,
                    "alpha_hi": a1,
                    "degradation_hi": d1,
                },
                tolerance=DEGRADATION_SLACK_ABS,
            ))
    return out


def check_traffic_monotonicity(
    topology: str = "daisychain",
    workloads: Sequence[str] = ("sp.D", "mixD", "mixB"),
    window_ns: float = 200_000.0,
) -> List[Violation]:
    """Traffic-driven power non-decreasing in channel utilization.

    ``workloads`` must be ordered by ascending channel utilization
    (the defaults span 0.08 -> 0.30 -> 0.75).  Under full power the
    idle-I/O and leakage floor is constant, so active I/O + logic
    dynamic + DRAM dynamic must grow with delivered traffic.
    """
    out: List[Violation] = []
    prev_name = ""
    prev_dyn = -1.0
    for name in workloads:
        result = run_experiment(
            ExperimentConfig(workload=name, topology=topology, window_ns=window_ns)
        )
        watts = result.breakdown.watts
        dyn = watts["active_io"] + watts["logic_dyn"] + watts["dram_dyn"]
        if prev_dyn >= 0.0 and dyn < prev_dyn * (1.0 - TRAFFIC_SLACK_REL):
            out.append(_violation(
                "metamorphic_traffic",
                f"traffic-driven power fell from {prev_name} to {name} "
                f"despite higher channel utilization",
                f"{name}/{topology}/small/FP/none",
                {"dyn_lo_w": dyn, "dyn_hi_w": prev_dyn},
                tolerance=TRAFFIC_SLACK_REL,
            ))
        prev_name, prev_dyn = name, dyn
    return out


def check_topology_scaling(
    topologies: Sequence[str] = ("daisychain", "ternary_tree", "star", "ddrx_like"),
    workload: str = "mixB",
    window_ns: float = 100_000.0,
) -> List[Violation]:
    """Full-power I/O power obeys the endpoint-count scaling law.

    At full power every link endpoint burns ``endpoint_w`` for the
    whole window regardless of traffic, so per-HMC I/O power is
    exactly ``sum over links of 2 * endpoint_w / num_modules`` on every
    topology -- the idle/active split moves with traffic but the total
    cannot.
    """
    from repro.harness.builder import SimulationBuilder

    out: List[Violation] = []
    for topology in topologies:
        config = ExperimentConfig(
            workload=workload, topology=topology, window_ns=window_ns
        )
        simulation = SimulationBuilder(config).build()
        simulation.run()
        expected = (
            sum(2.0 * link.endpoint_w for link in simulation.network.all_links())
            / simulation.topology.num_modules
        )
        io_j = sum(
            m.ledger.idle_io_j + m.ledger.active_io_j
            for m in simulation.network.modules
        )
        io_w = io_j / (window_ns * 1e-9) / simulation.topology.num_modules
        if abs(io_w - expected) > 1e-9 * max(io_w, expected):
            out.append(_violation(
                "metamorphic_topology",
                "full-power I/O power deviates from the endpoint scaling law",
                f"{workload}/{topology}/small/FP/none",
                {"io_w": io_w, "expected_w": expected, "diff_w": io_w - expected},
                tolerance=1e-9,
            ))
    return out


def check_window_scaling(
    topology: str = "daisychain",
    workload: str = "mixB",
    window_ns: float = 200_000.0,
) -> List[Violation]:
    """Per-HMC power approximately invariant under window doubling.

    Energy must be linear in time: simulating twice the window shifts
    warmup/tail fractions but cannot change steady-state power by more
    than the declared slack.
    """
    short = run_experiment(
        ExperimentConfig(workload=workload, topology=topology, window_ns=window_ns)
    )
    long = run_experiment(
        ExperimentConfig(
            workload=workload, topology=topology, window_ns=2.0 * window_ns
        )
    )
    out: List[Violation] = []
    if abs(long.power_per_hmc_w - short.power_per_hmc_w) > WINDOW_SLACK_REL * short.power_per_hmc_w:
        out.append(_violation(
            "metamorphic_window",
            f"power changed by more than {WINDOW_SLACK_REL:.0%} when the "
            f"window doubled",
            f"{workload}/{topology}/small/FP/none",
            {
                "short_window_w": short.power_per_hmc_w,
                "long_window_w": long.power_per_hmc_w,
                "window_ns": window_ns,
            },
            tolerance=WINDOW_SLACK_REL,
        ))
    return out


#: Suite-level metamorphic relations: (name, description, callable).
#: Each callable takes no arguments and returns a violation list; the
#: defaults are tuned so the whole set stays under ~20 short windows.
METAMORPHIC_RELATIONS: Tuple[Tuple[str, str, object], ...] = (
    (
        "metamorphic_alpha",
        "degradation monotone (and power anti-monotone) in alpha",
        check_alpha_monotonicity,
    ),
    (
        "metamorphic_traffic",
        "traffic-driven power monotone in channel utilization",
        check_traffic_monotonicity,
    ),
    (
        "metamorphic_topology",
        "full-power I/O power follows the endpoint scaling law",
        check_topology_scaling,
    ),
    (
        "metamorphic_window",
        "per-HMC power invariant under window doubling",
        check_window_scaling,
    ),
)
