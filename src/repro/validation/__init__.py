"""Runtime invariant auditing and differential validation.

The paper's headline results are power *breakdowns*, and accounting
models drift silently as hot paths get rewritten -- this package turns
the simulator's scattered conservation properties into a first-class,
registry-driven validation layer:

* :mod:`repro.validation.checks` -- invariant checkers (energy
  conservation, residency x power, flit/packet conservation, queue
  balance, per-epoch accounting, differential vs the closed-form
  model), registered in :data:`~repro.validation.checks.CHECKS`;
* :mod:`repro.validation.audit` -- the opt-in ``--audit[=strict|warn]``
  runtime mode (per-epoch auditor + end-of-run finalization);
* :mod:`repro.validation.metamorphic` -- cross-run relations
  (monotonicity in alpha and traffic, topology/window scaling laws);
* :mod:`repro.validation.suite` -- the ``repro-mnet validate`` matrix,
  sabotage self-tests, and report assembly;
* :mod:`repro.validation.violations` -- structured violation records
  and JSON/markdown reports.

See docs/validation.md for every invariant's physical meaning and
tolerance.
"""

from repro.validation.audit import (
    AuditViolationError,
    EpochAuditor,
    audit_simulation,
    finalize_audit,
)
from repro.validation.checks import CHECKS, CheckContext, register_check, run_checks
from repro.validation.metamorphic import METAMORPHIC_RELATIONS
from repro.validation.suite import (
    SABOTAGES,
    full_matrix,
    quick_matrix,
    run_suite,
    validate_config,
    validate_matrix,
)
from repro.validation.violations import ValidationReport, Violation

__all__ = [
    "CHECKS",
    "CheckContext",
    "register_check",
    "run_checks",
    "Violation",
    "ValidationReport",
    "AuditViolationError",
    "EpochAuditor",
    "audit_simulation",
    "finalize_audit",
    "METAMORPHIC_RELATIONS",
    "SABOTAGES",
    "validate_config",
    "validate_matrix",
    "quick_matrix",
    "full_matrix",
    "run_suite",
]
