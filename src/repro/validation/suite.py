"""The ``repro-mnet validate`` suite: config matrices, sabotage
self-tests, and the orchestration glue.

:func:`validate_config` runs one experiment with the epoch auditor
wired and every end-of-run checker applied; :func:`validate_matrix`
folds a list of configs into one report;
:func:`quick_matrix`/:func:`full_matrix` enumerate the shipped
coverage (topologies x mechanisms x overrides x fault specs).

``SABOTAGES`` holds deliberate mis-accounting mutators used to prove
the checkers can actually fail: ``repro-mnet validate --sabotage KIND``
corrupts one counter after a clean run and must exit non-zero with a
structured report naming the broken invariant.  This is the suite's
own self-test -- a validation layer that cannot detect a seeded error
is worse than none.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.harness.experiment import ExperimentConfig
from repro.network.links import BUFFER_ENTRIES
from repro.validation.audit import audit_simulation
from repro.validation.metamorphic import METAMORPHIC_RELATIONS
from repro.validation.violations import ValidationReport

__all__ = [
    "SABOTAGES",
    "validate_config",
    "validate_matrix",
    "quick_matrix",
    "full_matrix",
    "run_suite",
]

#: The paper's four evaluated topologies (``box`` is an extra).
VALIDATE_TOPOLOGIES = ("daisychain", "ternary_tree", "star", "ddrx_like")

#: Suite windows: short enough that the quick matrix stays in CI
#: budget, long enough for several management epochs per run.
QUICK_WINDOW_NS = 120_000.0
QUICK_EPOCH_NS = 30_000.0
FULL_WINDOW_NS = 300_000.0


def _sabotage_io_skew(simulation) -> None:
    """Inflate module 0's idle-I/O ledger by 5% (unbacked energy)."""
    simulation.network.modules[0].ledger.idle_io_j *= 1.05


def _sabotage_flit_drop(simulation) -> None:
    """Lose 1% of module 0's routed-flit count (energy now unbacked)."""
    module = simulation.network.modules[0]
    module.flits_routed = int(module.flits_routed * 0.99)


def _sabotage_residency_skew(simulation) -> None:
    """Add 500 ns of phantom full-width residency to the first link."""
    link = simulation.network.all_links()[0]
    link.mode_time_ns[0] += 500.0


def _sabotage_read_leak(simulation) -> None:
    """Leak one outstanding read at the root (never completed)."""
    simulation.network.modules[0].outstanding_subtree_reads += 1


def _sabotage_queue_overflow(simulation) -> None:
    """Reserve more buffer slots than the link physically has."""
    simulation.network.all_links()[0].reserved += BUFFER_ENTRIES + 1


#: name -> (description, post-run mutator).  Mutators corrupt one
#: counter *after* a clean run so exactly the targeted invariant (and
#: any invariant genuinely entangled with it) fires.
SABOTAGES: Dict[str, Tuple[str, Callable]] = {
    "io-skew": (
        "inflate an idle-I/O ledger (breaks residency x power)",
        _sabotage_io_skew,
    ),
    "flit-drop": (
        "drop routed flits (breaks logic-dynamic energy attribution)",
        _sabotage_flit_drop,
    ),
    "residency-skew": (
        "add phantom link residency (breaks the time partition)",
        _sabotage_residency_skew,
    ),
    "read-leak": (
        "leak an outstanding read (breaks flit/packet conservation)",
        _sabotage_read_leak,
    ),
    "queue-overflow": (
        "overbook a link buffer (breaks queue-occupancy balance)",
        _sabotage_queue_overflow,
    ),
}


def validate_config(
    config: ExperimentConfig, sabotage: Optional[str] = None
) -> ValidationReport:
    """Run one config with full auditing and return its report.

    The config is forced to ``audit="strict"`` so the builder wires the
    epoch auditor (audit never changes what is simulated), but failures
    are *collected*, not raised -- the caller decides policy.  When
    ``sabotage`` names a :data:`SABOTAGES` entry, its mutator corrupts
    the finished simulation before the checkers run.
    """
    from repro.harness.builder import SimulationBuilder

    simulation = SimulationBuilder(config.replace(audit="strict")).build()
    simulation.run()
    if sabotage is not None:
        SABOTAGES[sabotage][1](simulation)
    return audit_simulation(simulation)


def validate_matrix(
    configs: Iterable[ExperimentConfig],
    sabotage: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Validate every config, merging all findings into one report."""
    report = ValidationReport()
    for config in configs:
        one = validate_config(config, sabotage=sabotage)
        if progress is not None:
            status = "ok" if one.passed else f"{len(one.errors)} violation(s)"
            progress(f"{one.configs[0]}: {status}")
        report.merge(one)
    return report


def quick_matrix() -> List[ExperimentConfig]:
    """CI-sized coverage: all four topologies, unmanaged + managed.

    Full-power/no-policy runs exercise the differential check against
    the closed-form model; VWL+ROO under the unaware policy exercises
    width transitions, ROO sleep/wake, and the per-epoch auditor.
    """
    configs: List[ExperimentConfig] = []
    for topology in VALIDATE_TOPOLOGIES:
        for mechanism, policy in (("FP", "none"), ("VWL+ROO", "unaware")):
            configs.append(ExperimentConfig(
                workload="mixB",
                topology=topology,
                mechanism=mechanism,
                policy=policy,
                window_ns=QUICK_WINDOW_NS,
                epoch_ns=QUICK_EPOCH_NS,
            ))
    return configs


def full_matrix() -> List[ExperimentConfig]:
    """Extended coverage: more mechanisms, the aware policy,
    heterogeneous overrides, and fault injection."""
    configs = quick_matrix()
    for topology in VALIDATE_TOPOLOGIES:
        configs.append(ExperimentConfig(
            workload="mixB",
            topology=topology,
            mechanism="DVFS+ROO",
            policy="aware",
            window_ns=FULL_WINDOW_NS,
        ))
    configs.append(ExperimentConfig(
        workload="mixA",
        topology="ternary_tree",
        mechanism="VWL+ROO",
        policy="unaware",
        mechanism_overrides="depth>=2:FP",
        window_ns=FULL_WINDOW_NS,
    ))
    configs.append(ExperimentConfig(
        workload="mixB",
        topology="daisychain",
        mechanism="VWL+ROO",
        policy="unaware",
        fault_spec="seed=7,crc=0.2,crc_bursts=2,burst_ns=5000",
        window_ns=FULL_WINDOW_NS,
    ))
    return configs


def run_suite(
    quick: bool = True,
    sabotage: Optional[str] = None,
    metamorphic: Optional[bool] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Run the shipped validation suite and return the merged report.

    ``quick`` selects :func:`quick_matrix` (the CI configuration) over
    :func:`full_matrix`; metamorphic relations default to running only
    in full mode (override with ``metamorphic=``).  ``sabotage``
    applies one named corruption to *every* matrix run -- used by the
    self-test path, where a passing report is a failure.
    """
    report = validate_matrix(
        quick_matrix() if quick else full_matrix(),
        sabotage=sabotage,
        progress=progress,
    )
    if metamorphic is None:
        metamorphic = not quick
    if metamorphic:
        for name, _desc, relation in METAMORPHIC_RELATIONS:
            if progress is not None:
                progress(f"{name}: running")
            found = relation()
            report.checks_run += 1
            report.extend(found)
            if progress is not None:
                status = "ok" if not found else f"{len(found)} violation(s)"
                progress(f"{name}: {status}")
    return report
