"""Opt-in runtime invariant auditing for experiment runs.

The audit mode (``ExperimentConfig.audit`` / ``repro-mnet run --audit``)
threads two hooks through a normal experiment:

* an :class:`EpochAuditor` installed as an ``epoch_observer`` on
  managed policies, running every ``scope="epoch"`` checker at each
  epoch boundary (before counters reset, so per-epoch quantities are
  still live);
* :func:`finalize_audit`, called by
  :func:`~repro.harness.experiment.run_experiment` after the window
  completes, running the ``scope="end"`` checkers and folding in the
  auditor's per-epoch findings.

``audit="strict"`` raises :class:`AuditViolationError` on any
error-severity violation; ``audit="warn"`` prints each violation to
stderr and lets the run succeed.  When audit is off, none of this
module is imported on the hot path and simulation results are
bit-identical either way -- the auditor never mutates simulation state
(see the module docstring of :mod:`repro.validation.checks`).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, List, Optional

from repro.validation.checks import CheckContext, checks_for_scope, run_checks
from repro.validation.violations import ValidationReport, Violation

if TYPE_CHECKING:
    from repro.harness.builder import Simulation
    from repro.harness.experiment import ExperimentResult
    from repro.network.links import LinkController

__all__ = ["AuditViolationError", "EpochAuditor", "audit_simulation", "finalize_audit"]

#: Valid values of ``ExperimentConfig.audit`` (empty string = off).
AUDIT_MODES = ("", "warn", "strict")


class AuditViolationError(RuntimeError):
    """Raised by strict audits when an invariant is violated.

    Carries the full :class:`~repro.validation.violations.ValidationReport`
    as :attr:`report` so callers can inspect or serialize the breach.
    """

    def __init__(self, report: ValidationReport) -> None:
        self.report = report
        head = [v.describe() for v in report.errors[:5]]
        more = len(report.errors) - len(head)
        lines = "\n  ".join(head) + (f"\n  ... and {more} more" if more > 0 else "")
        super().__init__(
            f"audit failed with {len(report.errors)} violation(s):\n  {lines}"
        )


class EpochAuditor:
    """Per-epoch invariant auditor, installed as an ``epoch_observer``.

    Runs every ``scope="epoch"`` checker at each epoch boundary and
    accumulates violations plus a per-module cumulative-energy snapshot
    for cross-epoch monotonicity.  Strictly read-only with respect to
    the simulation: audited runs stay bit-identical to unaudited ones.
    """

    def __init__(self, simulation: "Simulation", label: str = "") -> None:
        self.simulation = simulation
        self.label = label
        self.epoch = 0
        self.checks_run = 0
        self.violations: List[Violation] = []
        self._prev_energy: Optional[List[float]] = None

    def __call__(self, links: List["LinkController"], epoch_ns: float) -> None:
        """Observer hook: audit the epoch that just ended."""
        ctx = CheckContext(
            self.simulation,
            epoch=self.epoch,
            prev_energy=self._prev_energy,
            label=self.label,
        )
        self.violations.extend(run_checks(ctx, scope="epoch"))
        self.checks_run += len(checks_for_scope("epoch"))
        self._prev_energy = [
            m.ledger.total_j for m in self.simulation.network.modules
        ]
        self.epoch += 1


def audit_simulation(
    simulation: "Simulation",
    result: Optional["ExperimentResult"] = None,
    label: str = "",
) -> ValidationReport:
    """Run all end-of-run checkers over a finished simulation.

    Folds in any per-epoch findings from the simulation's
    :class:`EpochAuditor` (when one was wired by the builder).  Returns
    the combined :class:`~repro.validation.violations.ValidationReport`
    without raising -- policy on failure is the caller's (see
    :func:`finalize_audit`).
    """
    report = ValidationReport()
    auditor = getattr(simulation, "auditor", None)
    if auditor is not None:
        report.extend(auditor.violations)
        report.checks_run += auditor.checks_run
        if not label:
            label = auditor.label
    ctx = CheckContext(simulation, result=result, label=label)
    report.extend(run_checks(ctx, scope="end"))
    report.checks_run += len(checks_for_scope("end"))
    report.configs.append(ctx.label)
    return report


def finalize_audit(
    simulation: "Simulation",
    result: Optional["ExperimentResult"] = None,
    mode: str = "strict",
) -> ValidationReport:
    """Apply the configured audit policy after a run.

    ``strict`` raises :class:`AuditViolationError` when any
    error-severity violation was found; ``warn`` prints violations to
    stderr and returns normally.  Always returns the report when it
    does not raise.
    """
    if mode not in ("warn", "strict"):
        raise ValueError(f"bad audit mode {mode!r} (expected 'warn' or 'strict')")
    report = audit_simulation(simulation, result=result)
    if report.violations:
        if mode == "strict" and not report.passed:
            raise AuditViolationError(report)
        for violation in report.violations:
            print(f"audit: {violation.describe()}", file=sys.stderr)
        print(f"audit: {report.summary()}", file=sys.stderr)
    return report
