"""Violation records and the structured validation report.

Every invariant checker in :mod:`repro.validation.checks` reports
problems as :class:`Violation` objects rather than raising: a violation
carries the simulated time, the epoch index (when detected by the
per-epoch auditor), and the offending quantities, so a failed check
doubles as a debugging breadcrumb -- the trace of *what* disagreed,
*by how much*, and *when*.

:class:`ValidationReport` aggregates violations across checks and
configs and renders them as JSON (machine-readable, for CI artifacts)
or markdown (human-readable, for issue reports).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["Violation", "ValidationReport"]

#: Report schema identifier, bumped on layout changes so downstream
#: tooling never misparses an old report.
REPORT_SCHEMA = "repro-mnet-validate/v1"


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to debug it.

    Attributes
    ----------
    check:
        Registered name of the checker that fired (see
        :data:`repro.validation.checks.CHECKS`).
    message:
        Human-readable statement of what disagreed.
    sim_time_ns:
        Simulated time at which the check ran (window end for
        end-of-run checks, the epoch boundary for per-epoch checks).
    epoch:
        Epoch index for violations found by the runtime auditor;
        ``None`` for end-of-run and matrix-level checks.
    config:
        Short label of the experiment config being validated (empty
        for standalone simulations).
    quantities:
        The offending numbers, keyed by name -- e.g. the two sides of
        a failed equality and their difference.
    tolerance:
        The declared tolerance the discrepancy exceeded (absolute or
        relative depending on the check; documented per-check in
        docs/validation.md).  ``None`` for structural checks with no
        numeric band.
    severity:
        ``"error"`` (default) or ``"warning"`` for advisory findings.
    """

    check: str
    message: str
    sim_time_ns: float = 0.0
    epoch: Optional[int] = None
    config: str = ""
    quantities: Dict[str, float] = field(default_factory=dict)
    tolerance: Optional[float] = None
    severity: str = "error"

    def to_dict(self) -> Dict:
        """JSON-safe dict form (quantities copied)."""
        return {
            "check": self.check,
            "message": self.message,
            "sim_time_ns": self.sim_time_ns,
            "epoch": self.epoch,
            "config": self.config,
            "quantities": dict(self.quantities),
            "tolerance": self.tolerance,
            "severity": self.severity,
        }

    def describe(self) -> str:
        """One-line rendering used by CLI and warning output."""
        where = f"t={self.sim_time_ns:g}ns"
        if self.epoch is not None:
            where += f" epoch={self.epoch}"
        prefix = f"[{self.check}] " + (f"({self.config}) " if self.config else "")
        qty = ""
        if self.quantities:
            qty = " {" + ", ".join(
                f"{k}={v:g}" for k, v in self.quantities.items()
            ) + "}"
        return f"{prefix}{self.message} ({where}){qty}"


class ValidationReport:
    """Aggregated outcome of a validation run.

    Collects violations across checks and configs plus bookkeeping on
    what actually ran, so "no violations" is distinguishable from "no
    checks executed".
    """

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        #: Total individual check invocations (per config, per scope).
        self.checks_run: int = 0
        #: Labels of every config the suite covered, in run order.
        self.configs: List[str] = []

    # ------------------------------------------------------------------
    def add(self, violation: Violation) -> None:
        """Record one violation."""
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        """Record many violations."""
        self.violations.extend(violations)

    def merge(self, other: "ValidationReport") -> None:
        """Fold another report's violations and bookkeeping into this one."""
        self.violations.extend(other.violations)
        self.checks_run += other.checks_run
        self.configs.extend(c for c in other.configs if c not in self.configs)

    @property
    def passed(self) -> bool:
        """True when no error-severity violation was recorded."""
        return not any(v.severity == "error" for v in self.violations)

    @property
    def errors(self) -> List[Violation]:
        """Error-severity violations only."""
        return [v for v in self.violations if v.severity == "error"]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict:
        """Schema-versioned JSON-safe dict of the full report."""
        return {
            "schema": REPORT_SCHEMA,
            "passed": self.passed,
            "checks_run": self.checks_run,
            "configs": list(self.configs),
            "violations": [v.to_dict() for v in self.violations],
        }

    def write_json(self, path: str) -> None:
        """Write the JSON report to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2)
            fh.write("\n")

    def to_markdown(self) -> str:
        """Markdown rendering: a summary line plus one table row per
        violation (empty table omitted)."""
        lines = [
            "# repro-mnet validation report",
            "",
            f"* result: **{'PASS' if self.passed else 'FAIL'}**",
            f"* checks run: {self.checks_run}",
            f"* configs: {len(self.configs)}",
            f"* violations: {len(self.violations)}",
        ]
        if self.violations:
            lines += [
                "",
                "| check | config | epoch | sim time (ns) | message | quantities |",
                "|---|---|---|---|---|---|",
            ]
            for v in self.violations:
                qty = "; ".join(f"{k}={val:g}" for k, val in v.quantities.items())
                epoch = "" if v.epoch is None else str(v.epoch)
                lines.append(
                    f"| {v.check} | {v.config} | {epoch} | {v.sim_time_ns:g} "
                    f"| {v.message} | {qty} |"
                )
        lines.append("")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line human summary for CLI/stderr output."""
        status = "PASS" if self.passed else "FAIL"
        return (
            f"validate: {status} -- {self.checks_run} checks over "
            f"{len(self.configs)} configs, {len(self.violations)} violations"
        )
