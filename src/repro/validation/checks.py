"""Registry-driven invariant checkers over a completed (or running)
simulation.

Every checker inspects a :class:`CheckContext` -- a read-only view of an
assembled :class:`~repro.harness.builder.Simulation` -- and returns a
list of :class:`~repro.validation.violations.Violation` objects.
Checkers are registered in :data:`CHECKS` with a *scope*:

* ``"end"`` -- runs once after the window finishes (links flushed by
  ``MemoryNetwork.finalize``);
* ``"epoch"`` -- runs at every epoch boundary via the
  :class:`~repro.validation.audit.EpochAuditor` observer, *before*
  counters reset;
* ``"both"`` -- runs in both scopes.

The invariants themselves are derived from how the simulator charges
energy (see docs/validation.md for each one's physical meaning and
tolerance):

* dynamic logic energy is charged per routed flit, dynamic DRAM energy
  per vault access, leakage per window -- all exactly reconstructable
  from counters;
* link I/O energy is charged per power-state segment, so power-state
  residency times state power must reproduce the ledgers' I/O buckets
  (up to a bounded width-transition slack -- transitions charge the
  *higher* of the two widths' power while residency is attributed to
  the new width);
* flits and packets are conserved end-to-end, and module 0 sits on
  every path, so its outstanding-read counter must equal the global
  in-flight read count;
* queue occupancy can never exceed the 128-entry link buffers.

CRITICAL: checkers must never mutate simulation state.  In particular
they must not call ``LinkController.accrue`` -- flushing an open energy
segment early changes floating-point summation order, and audited runs
are required to stay bit-identical to unaudited ones.  Open segments
are accounted read-only via ``now - link._seg_start``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.network.links import BUFFER_ENTRIES
from repro.registry import Registry
from repro.validation.violations import Violation

if TYPE_CHECKING:  # import-cycle-free type hints only
    from repro.harness.builder import Simulation
    from repro.harness.experiment import ExperimentResult

__all__ = [
    "CHECKS",
    "CheckContext",
    "register_check",
    "checks_for_scope",
    "run_checks",
]

#: Registry of invariant checkers.  Each entry is a callable
#: ``check(ctx) -> List[Violation]`` carrying ``scope``, ``tolerance``
#: and ``description`` attributes (set by :func:`register_check`).
CHECKS: Registry = Registry("check")

#: Relative tolerance for quantities that are *exact* up to
#: floating-point summation order (energies accumulated over ~1e6
#: segments: per-op error 1e-16, headroom 1e7).
REL_EXACT = 1e-9

#: Declared band for the analytical logic-dynamic term, as bounds on
#: the simulated/predicted *ratio*.  The closed form assumes every
#: access moves ``6 * avg_depth`` flits through routers, but real
#: traffic weights depth by access frequency -- and the paper's
#: contiguous mapping puts hot data near the processor, so the model
#: systematically *over*-predicts (measured ratios 0.19-0.50 across
#: the four topologies and workload extremes).  Underprediction, by
#: contrast, would mean the simulator routed flits the model cannot
#: explain, so that side of the band is tight.
LOGIC_DYN_RATIO_BOUNDS = (0.10, 1.05)

#: Relative tolerance for the remaining differential categories, which
#: the closed form predicts from simulated utilization and access rate
#: with no modeling gap.
REL_DIFFERENTIAL = 1e-6


def register_check(
    name: str,
    *,
    scope: str = "end",
    tolerance: Optional[float] = None,
    description: str = "",
) -> Callable:
    """Decorator registering a checker in :data:`CHECKS` with metadata."""
    if scope not in ("end", "epoch", "both"):
        raise ValueError(f"bad check scope {scope!r}")

    def deco(fn: Callable) -> Callable:
        fn.scope = scope  # type: ignore[attr-defined]
        fn.tolerance = tolerance  # type: ignore[attr-defined]
        fn.description = description or (fn.__doc__ or "").strip().splitlines()[0]  # type: ignore[attr-defined]
        CHECKS.add(name, fn)
        return fn

    return deco


class CheckContext:
    """Read-only view of a simulation handed to every checker.

    ``epoch`` is ``None`` for end-of-run checks and the epoch index for
    per-epoch audit invocations; ``result`` is the assembled
    :class:`~repro.harness.experiment.ExperimentResult` when available
    (end-of-run only).  ``prev_energy`` carries the previous epoch's
    per-module cumulative energy snapshot for monotonicity checks.
    """

    def __init__(
        self,
        simulation: "Simulation",
        epoch: Optional[int] = None,
        result: Optional["ExperimentResult"] = None,
        prev_energy: Optional[List[float]] = None,
        label: str = "",
    ) -> None:
        self.simulation = simulation
        self.config = simulation.config
        self.network = simulation.network
        self.topology = simulation.topology
        self.sim = simulation.sim
        self.now = simulation.sim.now
        self.window_ns = simulation.config.window_ns
        self.epoch = epoch
        self.result = result
        self.prev_energy = prev_energy
        self.label = label or self._default_label()

    def _default_label(self) -> str:
        c = self.config
        label = f"{c.workload}/{c.topology}/{c.scale}/{c.mechanism}/{c.policy}"
        if c.mechanism_overrides:
            label += f"[{c.mechanism_overrides}]"
        if c.fault_spec:
            label += f"+faults"
        return label

    def violation(
        self,
        check: str,
        message: str,
        quantities: Optional[Dict[str, float]] = None,
        tolerance: Optional[float] = None,
        severity: str = "error",
    ) -> Violation:
        """Build a violation stamped with this context's time/epoch."""
        return Violation(
            check=check,
            message=message,
            sim_time_ns=self.now,
            epoch=self.epoch,
            config=self.label,
            quantities=quantities or {},
            tolerance=tolerance,
            severity=severity,
        )


def _close(a: float, b: float, rel: float, abs_tol: float = 1e-15) -> bool:
    """Two-sided closeness with relative + tiny absolute floor."""
    return abs(a - b) <= max(abs_tol, rel * max(abs(a), abs(b)))


# ----------------------------------------------------------------------
# Energy conservation
# ----------------------------------------------------------------------
@register_check(
    "energy_conservation",
    scope="end",
    tolerance=REL_EXACT,
    description="component energies reconstruct every ledger bucket",
)
def check_energy_conservation(ctx: CheckContext) -> List[Violation]:
    """Per-module ledger buckets equal their counter reconstructions.

    Dynamic logic energy is charged as ``e_flit_j`` per routed flit,
    dynamic DRAM energy as ``e_access_j`` per vault access, and leakage
    as ``leak_w * window`` at finalize -- so each non-I/O bucket must
    equal its closed-form reconstruction to floating-point accuracy,
    and every bucket must be finite and non-negative.
    """
    out: List[Violation] = []
    model = ctx.network.power_model
    window_s = ctx.window_ns * 1e-9
    for module in ctx.network.modules:
        ledger = module.ledger
        buckets = {
            "idle_io_j": ledger.idle_io_j,
            "active_io_j": ledger.active_io_j,
            "logic_leak_j": ledger.logic_leak_j,
            "logic_dyn_j": ledger.logic_dyn_j,
            "dram_leak_j": ledger.dram_leak_j,
            "dram_dyn_j": ledger.dram_dyn_j,
        }
        for name, value in buckets.items():
            if not (value >= 0.0) or value != value or value == float("inf"):
                out.append(ctx.violation(
                    "energy_conservation",
                    f"module {module.module_id}: {name} is not a finite "
                    f"non-negative energy",
                    {name: value},
                ))
        expect_logic = module.flits_routed * module.e_flit_j
        if not _close(ledger.logic_dyn_j, expect_logic, REL_EXACT):
            out.append(ctx.violation(
                "energy_conservation",
                f"module {module.module_id}: logic_dyn_j != "
                f"flits_routed * e_flit_j",
                {
                    "logic_dyn_j": ledger.logic_dyn_j,
                    "flits_routed": float(module.flits_routed),
                    "expected_j": expect_logic,
                    "diff_j": ledger.logic_dyn_j - expect_logic,
                },
                tolerance=REL_EXACT,
            ))
        accesses = module.vaults.reads + module.vaults.writes
        expect_dram = accesses * module.e_access_j
        if not _close(ledger.dram_dyn_j, expect_dram, REL_EXACT):
            out.append(ctx.violation(
                "energy_conservation",
                f"module {module.module_id}: dram_dyn_j != "
                f"vault accesses * e_access_j",
                {
                    "dram_dyn_j": ledger.dram_dyn_j,
                    "accesses": float(accesses),
                    "expected_j": expect_dram,
                    "diff_j": ledger.dram_dyn_j - expect_dram,
                },
                tolerance=REL_EXACT,
            ))
        for bucket, leak_w in (
            ("dram_leak_j", model.dram_leakage_w(module.radix)),
            ("logic_leak_j", model.logic_leakage_w(module.radix)),
        ):
            expect = leak_w * window_s
            got = buckets[bucket]
            if not _close(got, expect, REL_EXACT):
                out.append(ctx.violation(
                    "energy_conservation",
                    f"module {module.module_id}: {bucket} != leakage_w * window",
                    {bucket: got, "expected_j": expect, "diff_j": got - expect},
                    tolerance=REL_EXACT,
                ))
    if ctx.result is not None:
        from repro.power.accounting import PowerBreakdown

        recomputed = PowerBreakdown.from_ledgers(
            (m.ledger for m in ctx.network.modules),
            ctx.window_ns,
            ctx.topology.num_modules,
        )
        for cat, watts in recomputed.watts.items():
            reported = ctx.result.breakdown.watts[cat]
            if not _close(reported, watts, REL_EXACT):
                out.append(ctx.violation(
                    "energy_conservation",
                    f"result breakdown {cat} disagrees with ledger recomputation",
                    {"reported_w": reported, "ledger_w": watts},
                    tolerance=REL_EXACT,
                ))
    return out


# ----------------------------------------------------------------------
# Link power-state residency vs accrued I/O energy
# ----------------------------------------------------------------------
@register_check(
    "link_residency_energy",
    scope="end",
    tolerance=REL_EXACT,
    description="power-state residency x state power == accrued I/O energy",
)
def check_link_residency_energy(ctx: CheckContext) -> List[Violation]:
    """Residency-reconstructed I/O energy brackets the I/O ledgers.

    Each link endpoint burns ``endpoint_w * power_fraction`` in every
    power state, so summing ``2 * endpoint_w * residency * fraction``
    over states and links must reproduce the total I/O energy the
    ledgers accrued (this is the network-wide generalization of the
    per-link trace check in ``tests/test_obs.py``).  The one modeled
    exception: during a width transition the link is *charged* at the
    higher of the old/new widths' power while residency is *attributed*
    to the new width, so reconstruction is a lower bound and the gap is
    bounded by ``width_transitions * width_transition_ns`` per link at
    the link's power-fraction spread.
    """
    recon = 0.0
    slack = 0.0
    actual = 0.0
    for link in ctx.network.all_links():
        fracs = link._power_fracs
        per_state = sum(
            t * f for t, f in zip(link.mode_time_ns, fracs)
        ) + link.off_time_ns * link._off_frac
        recon += 2.0 * link.endpoint_w * per_state * 1e-9
        spread = max(fracs) - min(fracs)
        slack += (
            2.0 * link.endpoint_w * 1e-9
            * link.width_transitions * link.mech.width_transition_ns * spread
        )
    for module in ctx.network.modules:
        actual += module.ledger.idle_io_j + module.ledger.active_io_j
    eps = max(1e-15, REL_EXACT * max(abs(recon), abs(actual)))
    out: List[Violation] = []
    if not (recon - eps <= actual <= recon + slack + eps):
        out.append(ctx.violation(
            "link_residency_energy",
            "I/O ledgers outside [residency reconstruction, "
            "reconstruction + transition slack]",
            {
                "reconstructed_j": recon,
                "accrued_j": actual,
                "transition_slack_j": slack,
                "diff_j": actual - recon,
            },
            tolerance=REL_EXACT,
        ))
    return out


@register_check(
    "residency_partition",
    scope="both",
    tolerance=REL_EXACT,
    description="power-state residencies partition each link's lifetime",
)
def check_residency_partition(ctx: CheckContext) -> List[Violation]:
    """Per link: mode residencies + off time (+ the open segment)
    account for every simulated nanosecond exactly once.

    The open segment since the link's last ``accrue`` is included
    read-only (``now - _seg_start``); after ``finalize`` it is zero.
    Also pins ``busy_time_ns <= sum(mode_time_ns)``: a link only
    transmits while powered on.
    """
    out: List[Violation] = []
    now = ctx.now
    for link in ctx.network.all_links():
        attributed = sum(link.mode_time_ns) + link.off_time_ns
        open_ns = now - link._seg_start
        total = attributed + open_ns
        if open_ns < -1e-9 or not _close(total, now, REL_EXACT, abs_tol=1e-6):
            out.append(ctx.violation(
                "residency_partition",
                f"link {link.name}: residencies do not partition the window",
                {
                    "attributed_ns": attributed,
                    "open_segment_ns": open_ns,
                    "now_ns": now,
                    "diff_ns": total - now,
                },
                tolerance=REL_EXACT,
            ))
        on_time = sum(link.mode_time_ns)
        if link.busy_time_ns > on_time + max(1e-6, REL_EXACT * on_time) + open_ns:
            out.append(ctx.violation(
                "residency_partition",
                f"link {link.name}: busy time exceeds powered-on residency",
                {"busy_time_ns": link.busy_time_ns, "on_time_ns": on_time},
                tolerance=REL_EXACT,
            ))
    return out


# ----------------------------------------------------------------------
# Flit / packet conservation
# ----------------------------------------------------------------------
@register_check(
    "flit_conservation",
    scope="end",
    description="packets and flits are conserved end-to-end",
)
def check_flit_conservation(ctx: CheckContext) -> List[Violation]:
    """End-to-end packet conservation through the network.

    Every request path passes module 0, so its outstanding-subtree-read
    counter must equal injected minus completed reads; reads reach DRAM
    at most once (``completed <= sum(vault reads) <= injected``); each
    module's DRAM-read counter matches its vaults'; and per-link flit
    counts are consistent with packet counts (1..5 flits per packet).
    """
    out: List[Violation] = []
    net = ctx.network
    in_flight = net.injected_reads - net.completed_reads
    root_outstanding = net.modules[0].outstanding_subtree_reads
    if root_outstanding != in_flight:
        out.append(ctx.violation(
            "flit_conservation",
            "module 0 outstanding reads != injected - completed reads",
            {
                "outstanding": float(root_outstanding),
                "injected_reads": float(net.injected_reads),
                "completed_reads": float(net.completed_reads),
            },
        ))
    vault_reads = sum(m.vaults.reads for m in net.modules)
    vault_writes = sum(m.vaults.writes for m in net.modules)
    if not (net.completed_reads <= vault_reads <= net.injected_reads):
        out.append(ctx.violation(
            "flit_conservation",
            "vault read count outside [completed, injected] reads",
            {
                "vault_reads": float(vault_reads),
                "completed_reads": float(net.completed_reads),
                "injected_reads": float(net.injected_reads),
            },
        ))
    if not (net.completed_writes <= vault_writes <= net.injected_writes):
        out.append(ctx.violation(
            "flit_conservation",
            "vault write count outside [completed, injected] writes",
            {
                "vault_writes": float(vault_writes),
                "completed_writes": float(net.completed_writes),
                "injected_writes": float(net.injected_writes),
            },
        ))
    for module in net.modules:
        if module.dram_reads != module.vaults.reads:
            out.append(ctx.violation(
                "flit_conservation",
                f"module {module.module_id}: dram_reads != vault reads",
                {
                    "dram_reads": float(module.dram_reads),
                    "vault_reads": float(module.vaults.reads),
                },
            ))
        if module.outstanding_subtree_reads < 0:
            out.append(ctx.violation(
                "flit_conservation",
                f"module {module.module_id}: negative outstanding reads",
                {"outstanding": float(module.outstanding_subtree_reads)},
            ))
    for link in net.all_links():
        if not (link.packets_tx <= link.flits_tx <= 5 * link.packets_tx):
            out.append(ctx.violation(
                "flit_conservation",
                f"link {link.name}: flits_tx inconsistent with packets_tx "
                f"(packets carry 1..5 flits)",
                {
                    "flits_tx": float(link.flits_tx),
                    "packets_tx": float(link.packets_tx),
                },
            ))
    return out


# ----------------------------------------------------------------------
# Queue occupancy
# ----------------------------------------------------------------------
@register_check(
    "queue_balance",
    scope="both",
    description="link buffer occupancy stays within capacity",
)
def check_queue_balance(ctx: CheckContext) -> List[Violation]:
    """Per link: occupancy (queued + reserved) within the 128-entry
    buffer and reservations never negative."""
    out: List[Violation] = []
    for link in ctx.network.all_links():
        if link.reserved < 0:
            out.append(ctx.violation(
                "queue_balance",
                f"link {link.name}: negative reservation count",
                {"reserved": float(link.reserved)},
            ))
        occupancy = len(link.read_q) + len(link.write_q) + link.reserved
        if occupancy > BUFFER_ENTRIES:
            out.append(ctx.violation(
                "queue_balance",
                f"link {link.name}: buffer occupancy exceeds "
                f"{BUFFER_ENTRIES} entries",
                {
                    "occupancy": float(occupancy),
                    "read_q": float(len(link.read_q)),
                    "write_q": float(len(link.write_q)),
                    "reserved": float(link.reserved),
                },
            ))
    return out


# ----------------------------------------------------------------------
# Per-epoch accounting (auditor only)
# ----------------------------------------------------------------------
@register_check(
    "epoch_accounting",
    scope="epoch",
    tolerance=REL_EXACT,
    description="epoch counters bounded by the epoch; energy monotone",
)
def check_epoch_accounting(ctx: CheckContext) -> List[Violation]:
    """At each epoch boundary (before counters reset): per-epoch busy
    and residency counters fit within one epoch, and every module's
    cumulative energy is monotone non-decreasing across epochs."""
    out: List[Violation] = []
    epoch_ns = ctx.config.epoch_ns
    bound = epoch_ns * (1.0 + REL_EXACT) + 1e-6
    for link in ctx.network.all_links():
        open_ns = max(0.0, ctx.now - link._seg_start)
        if link.ep_busy_ns > bound:
            out.append(ctx.violation(
                "epoch_accounting",
                f"link {link.name}: per-epoch busy time exceeds the epoch",
                {"ep_busy_ns": link.ep_busy_ns, "epoch_ns": epoch_ns},
                tolerance=REL_EXACT,
            ))
        ep_mode = sum(link.ep_mode_time_ns)
        if ep_mode > bound:
            out.append(ctx.violation(
                "epoch_accounting",
                f"link {link.name}: per-epoch residency exceeds the epoch",
                {
                    "ep_mode_time_ns": ep_mode,
                    "open_segment_ns": open_ns,
                    "epoch_ns": epoch_ns,
                },
                tolerance=REL_EXACT,
            ))
    if ctx.prev_energy is not None:
        for module, prev in zip(ctx.network.modules, ctx.prev_energy):
            total = module.ledger.total_j
            if total < prev - 1e-15:
                out.append(ctx.violation(
                    "epoch_accounting",
                    f"module {module.module_id}: cumulative energy decreased "
                    f"between epochs",
                    {"total_j": total, "previous_j": prev},
                ))
    return out


# ----------------------------------------------------------------------
# Differential check vs the closed-form power model
# ----------------------------------------------------------------------
@register_check(
    "differential_power",
    scope="end",
    tolerance=REL_DIFFERENTIAL,
    description="simulated FP breakdown matches the analytical model",
)
def check_differential_power(ctx: CheckContext) -> List[Violation]:
    """Full-power breakdown vs ``predict_full_power_breakdown``.

    Only meaningful for homogeneous full-power runs (every other
    mechanism modulates link power by state, which the closed form does
    not model) -- the check silently passes otherwise.  Feeding the
    *simulated* utilization and access rate into the analytical model,
    the I/O split, leakage, and DRAM-dynamic categories must agree to
    floating-point accuracy; the logic-dynamic category only within
    the declared :data:`LOGIC_DYN_RATIO_BOUNDS`, because its
    ``6 * avg_depth`` flits-per-access assumption ignores the
    read/write mix and the traffic-weighted depth of real access
    streams.
    """
    config = ctx.config
    if (
        config.mechanism != "FP"
        or config.mechanism_overrides
        or config.policy != "none"
    ):
        return []
    from repro.analysis.power_model import predict_full_power_breakdown
    from repro.harness.metrics import avg_link_utilization
    from repro.power.accounting import PowerBreakdown

    net = ctx.network
    util = avg_link_utilization(net, ctx.window_ns)
    accesses = sum(m.vaults.reads + m.vaults.writes for m in net.modules)
    predicted = predict_full_power_breakdown(
        ctx.topology,
        avg_link_utilization=util,
        accesses_per_ns=accesses / ctx.window_ns,
        model=net.power_model,
    )
    simulated = PowerBreakdown.from_ledgers(
        (m.ledger for m in net.modules), ctx.window_ns, ctx.topology.num_modules
    ).watts
    bands = {
        "idle_io": REL_DIFFERENTIAL,
        "active_io": REL_DIFFERENTIAL,
        "logic_leak": REL_DIFFERENTIAL,
        "dram_leak": REL_DIFFERENTIAL,
        "dram_dyn": REL_DIFFERENTIAL,
    }
    out: List[Violation] = []
    for cat, band in bands.items():
        if not _close(simulated[cat], predicted[cat], band, abs_tol=1e-12):
            out.append(ctx.violation(
                "differential_power",
                f"simulated {cat} outside the {band:g} tolerance band of "
                f"the analytical prediction",
                {
                    "simulated_w": simulated[cat],
                    "predicted_w": predicted[cat],
                    "diff_w": simulated[cat] - predicted[cat],
                },
                tolerance=band,
            ))
    lo, hi = LOGIC_DYN_RATIO_BOUNDS
    if predicted["logic_dyn"] > 0.0:
        ratio = simulated["logic_dyn"] / predicted["logic_dyn"]
        if not (lo <= ratio <= hi):
            out.append(ctx.violation(
                "differential_power",
                f"simulated/predicted logic_dyn ratio outside the declared "
                f"[{lo:g}, {hi:g}] band",
                {
                    "simulated_w": simulated["logic_dyn"],
                    "predicted_w": predicted["logic_dyn"],
                    "ratio": ratio,
                },
                tolerance=hi,
            ))
    elif simulated["logic_dyn"] > 1e-12:
        out.append(ctx.violation(
            "differential_power",
            "simulator burned logic-dynamic power on a run the model "
            "predicts to be traffic-free",
            {"simulated_w": simulated["logic_dyn"], "predicted_w": 0.0},
        ))
    return out


# ----------------------------------------------------------------------
# Execution helpers
# ----------------------------------------------------------------------
def checks_for_scope(scope: str) -> List[Callable]:
    """Registered checkers active in ``scope`` (``"end"`` or ``"epoch"``)."""
    return [
        fn
        for _name, fn in CHECKS.items()
        if fn.scope == scope or fn.scope == "both"
    ]


def run_checks(ctx: CheckContext, scope: str = "end") -> List[Violation]:
    """Run every checker registered for ``scope`` against ``ctx``."""
    out: List[Violation] = []
    for check in checks_for_scope(scope):
        out.extend(check(ctx))
    return out
