"""JSON-directory result store: the historical DiskCache layout.

:class:`JsonDirStore` *is* a :class:`~repro.harness.diskcache.DiskCache`
-- same ``<root>/v<schema>-<version>/<key>.json`` files, same atomic
writes, same ``quarantine/`` subdirectory and counter semantics -- with
the rest of the :class:`~repro.store.base.ResultStore` surface layered
on top.  Any cache directory written by earlier releases keeps working
unchanged, and anything this store writes remains readable by a plain
``DiskCache``.

Bulk reads cannot beat per-key probes here (the filesystem is the
index), so ``get_many`` is a loop; the point of the shared protocol is
that :class:`~repro.store.sqlite.SqliteStore` answers the same call
with one query.
"""

from __future__ import annotations

import shutil
from typing import Dict, Iterable, Tuple

from repro.harness.diskcache import DiskCache
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.store.base import distinct_configs

__all__ = ["JsonDirStore"]


class JsonDirStore(DiskCache):
    """``ResultStore`` backend over one-JSON-file-per-result directories."""

    def get_many(
        self, configs: Iterable[ExperimentConfig]
    ) -> Dict[str, ExperimentResult]:
        """Per-key probe loop over the directory; ``{key: result}`` hits."""
        found: Dict[str, ExperimentResult] = {}
        for key, config in distinct_configs(configs):
            result = self.get(config)
            if result is not None:
                found[key] = result
        return found

    def put_many(
        self, items: Iterable[Tuple[ExperimentConfig, ExperimentResult]]
    ) -> int:
        """Write each pair atomically; returns the number written."""
        count = 0
        for config, result in items:
            self.put(config, result)
            count += 1
        return count

    def contains(self, config: ExperimentConfig) -> bool:
        """Whether the entry file exists (counters untouched)."""
        return self.path_for(config).is_file()

    def stats(self) -> Dict[str, object]:
        """Counters plus entry count, on-disk size, and quarantine depth."""
        entries = len(self)
        size = 0
        quarantine_entries = 0
        if self.directory.is_dir():
            size = sum(
                p.stat().st_size
                for p in self.directory.glob("*.json")
                if p.is_file()
            )
            quarantine_dir = self.directory / "quarantine"
            if quarantine_dir.is_dir():
                quarantine_entries = sum(
                    1 for p in quarantine_dir.iterdir() if p.is_file()
                )
        return {
            "backend": "json",
            "path": str(self.root),
            "schema": self.schema_tag,
            "entries": entries,
            "size_bytes": size,
            "quarantine_entries": quarantine_entries,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }

    def compact(self) -> Dict[str, int]:
        """Delete stale schema-tag directories and quarantined debris.

        Live entries under the active tag are never touched.  Returns
        ``removed_entries`` (stale + quarantined files deleted) and
        ``removed_dirs`` (stale schema directories pruned).
        """
        removed_entries = 0
        removed_dirs = 0
        if self.root.is_dir():
            for child in self.root.iterdir():
                if not child.is_dir() or child.name == self.schema_tag:
                    continue
                removed_entries += sum(1 for p in child.rglob("*") if p.is_file())
                shutil.rmtree(child, ignore_errors=True)
                removed_dirs += 1
        quarantine_dir = self.directory / "quarantine"
        if quarantine_dir.is_dir():
            removed_entries += sum(
                1 for p in quarantine_dir.iterdir() if p.is_file()
            )
            shutil.rmtree(quarantine_dir, ignore_errors=True)
        return {"removed_entries": removed_entries, "removed_dirs": removed_dirs}
