"""Single-file SQLite result store with bulk lookups.

One database file holds every entry, so a sweep chunk's tier probe is
one indexed ``SELECT ... WHERE key IN (...)`` instead of N stat/open/
parse round-trips -- the point of the store layer (see
``store_bulk_lookup`` in the perf suite).  Layout:

- ``results(key PRIMARY KEY, schema, payload, created_unix)`` where
  ``payload`` is the zlib-compressed canonical JSON of exactly the
  dict a :class:`~repro.harness.diskcache.DiskCache` file would hold
  (``{"schema": tag, "key": key, "result": cache-dict}``), so entries
  migrate between backends byte-comparably;
- ``quarantine`` mirrors the JSON layout's ``quarantine/`` directory:
  corrupt rows are moved there (evidence kept for post-mortems), the
  ``quarantined`` counter bumps once, and the read reports a miss.

Concurrency: the database runs in WAL mode with a generous busy
timeout, so concurrent writers -- ParallelExecutor results landing
while serve dispatcher threads write theirs, or two CLI processes
racing on one file -- serialize safely instead of corrupting.  Each
thread gets its own connection (sqlite3 connections are not shareable
across threads); the hit/miss/write/quarantine counters are guarded by
a lock so they stay exact, matching the DiskCache contract.

Schema awareness: rows store the same ``v<schema>-<version>`` tag the
JSON layout used as its directory name.  A row written under any other
tag is a plain miss (never a stale hit); ``compact()`` deletes such
rows and vacuums the file.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.io import result_from_cache_dict, result_to_cache_dict
from repro.store.base import distinct_configs, store_schema_tag

__all__ = ["SqliteStore", "DEFAULT_SQLITE_FILENAME"]

#: File name used when a store is addressed by cache *directory* rather
#: than an explicit ``.sqlite`` path (see ``make_store``).
DEFAULT_SQLITE_FILENAME = "results.sqlite"

# Stay far under SQLite's historical 999-parameter limit.
_IN_CHUNK = 400

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    schema TEXT NOT NULL,
    payload BLOB NOT NULL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    key TEXT NOT NULL,
    schema TEXT,
    payload BLOB,
    reason TEXT NOT NULL,
    quarantined_unix REAL NOT NULL
);
"""


def _encode_payload(payload: Dict[str, object]) -> bytes:
    """Canonical compressed bytes for a cache payload dict."""
    return zlib.compress(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def _decode_payload(blob: bytes) -> Dict[str, object]:
    """Inverse of :func:`_encode_payload`; raises on corrupt input."""
    data = json.loads(zlib.decompress(blob).decode("utf-8"))
    if not isinstance(data, dict):
        raise ValueError("cache payload is not a JSON object")
    return data


class SqliteStore:
    """``ResultStore`` backend over one WAL-mode SQLite file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path).expanduser()
        if self.path.exists() and self.path.is_dir():
            raise IsADirectoryError(
                f"sqlite store path {self.path} is a directory "
                f"(expected a database file)"
            )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        # Guards the counters above; data consistency itself comes from
        # SQLite's own locking (WAL + busy timeout).
        self._lock = threading.Lock()
        self._local = threading.local()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Create tables eagerly so a freshly constructed store is a
        # valid (empty) database even before the first put.
        self._conn()

    @property
    def schema_tag(self) -> str:
        """Entry tag tying rows to schema + package version."""
        return store_schema_tag()

    def _conn(self) -> sqlite3.Connection:
        """This thread's connection, created (and configured) lazily."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        conn = sqlite3.connect(
            str(self.path), timeout=30.0, isolation_level=None
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.executescript(_SCHEMA_SQL)
        self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close the calling thread's connection (others close on exit)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- reads ---------------------------------------------------------

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The stored result for ``config``, or ``None`` on a miss."""
        found = self.get_many([config])
        return found.get(config.cache_key())

    def get_many(
        self, configs: Iterable[ExperimentConfig]
    ) -> Dict[str, ExperimentResult]:
        """One ``IN (...)`` query per chunk of 400 keys; ``{key: result}``."""
        pairs = distinct_configs(configs)
        if not pairs:
            return {}
        conn = self._conn()
        tag = self.schema_tag
        found: Dict[str, ExperimentResult] = {}
        for start in range(0, len(pairs), _IN_CHUNK):
            chunk = pairs[start : start + _IN_CHUNK]
            marks = ",".join("?" for _ in chunk)
            rows = conn.execute(
                f"SELECT key, schema, payload FROM results WHERE key IN ({marks})",
                [key for key, _ in chunk],
            ).fetchall()
            by_key = {row[0]: row for row in rows}
            for key, _config in chunk:
                row = by_key.get(key)
                if row is None or row[1] != tag:
                    # Absent, or written under another schema/version:
                    # a plain miss either way.
                    with self._lock:
                        self.misses += 1
                    continue
                try:
                    payload = _decode_payload(row[2])
                    result = result_from_cache_dict(payload["result"])
                except (zlib.error, json.JSONDecodeError, KeyError, TypeError, ValueError):
                    self._quarantine_row(key, "undecodable payload")
                    with self._lock:
                        self.misses += 1
                    continue
                found[key] = result
                with self._lock:
                    self.hits += 1
        return found

    def contains(self, config: ExperimentConfig) -> bool:
        """Whether a row exists under the active tag (counters untouched)."""
        row = self._conn().execute(
            "SELECT 1 FROM results WHERE key = ? AND schema = ?",
            (config.cache_key(), self.schema_tag),
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        """Number of rows readable under the active schema tag."""
        row = self._conn().execute(
            "SELECT COUNT(*) FROM results WHERE schema = ?", (self.schema_tag,)
        ).fetchone()
        return int(row[0])

    # -- writes --------------------------------------------------------

    def put(self, config: ExperimentConfig, result: ExperimentResult) -> None:
        """Upsert ``result`` under ``config``'s key."""
        self.put_many([(config, result)])

    def put_many(
        self, items: Iterable[Tuple[ExperimentConfig, ExperimentResult]]
    ) -> int:
        """Upsert a batch in one transaction; returns rows written."""
        tag = self.schema_tag
        rows: List[Tuple[str, str, bytes, float]] = []
        for config, result in items:
            key = config.cache_key()
            payload = {
                "schema": tag,
                "key": key,
                "result": result_to_cache_dict(result),
            }
            rows.append((key, tag, _encode_payload(payload), time.time()))
        if not rows:
            return 0
        self._write_rows(rows)
        return len(rows)

    def put_payload(self, key: str, payload: Dict[str, object]) -> None:
        """Upsert a pre-serialized cache payload dict (migration path).

        ``payload`` must be the exact shape a DiskCache file holds --
        ``{"schema": tag, "key": key, "result": cache-dict}`` -- and is
        stored verbatim, so migrated entries stay byte-comparable with
        their JSON-directory source.
        """
        schema = str(payload.get("schema", ""))
        self._write_rows([(key, schema, _encode_payload(payload), time.time())])

    def _write_rows(self, rows: List[Tuple[str, str, bytes, float]]) -> None:
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.executemany(
                "INSERT OR REPLACE INTO results (key, schema, payload, created_unix) "
                "VALUES (?, ?, ?, ?)",
                rows,
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        with self._lock:
            self.writes += len(rows)

    # -- hygiene -------------------------------------------------------

    def _quarantine_row(self, key: str, reason: str) -> None:
        """Move a corrupt row into the ``quarantine`` table, count once.

        Mirrors the JSON layout's quarantine directory: evidence is
        preserved for diagnosis and the entry stops being served.  Two
        threads racing on the same row count it once -- the loser's
        DELETE matches nothing.
        """
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT schema, payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            deleted = conn.execute(
                "DELETE FROM results WHERE key = ?", (key,)
            ).rowcount
            if deleted and row is not None:
                conn.execute(
                    "INSERT INTO quarantine "
                    "(key, schema, payload, reason, quarantined_unix) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (key, row[0], row[1], reason, time.time()),
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if deleted:
            with self._lock:
                self.quarantined += 1

    def stats(self) -> Dict[str, object]:
        """Counters plus entry/stale/quarantine counts and file size."""
        conn = self._conn()
        tag = self.schema_tag
        entries = int(
            conn.execute(
                "SELECT COUNT(*) FROM results WHERE schema = ?", (tag,)
            ).fetchone()[0]
        )
        stale = int(
            conn.execute(
                "SELECT COUNT(*) FROM results WHERE schema != ?", (tag,)
            ).fetchone()[0]
        )
        quarantine_entries = int(
            conn.execute("SELECT COUNT(*) FROM quarantine").fetchone()[0]
        )
        size = 0
        for suffix in ("", "-wal", "-shm"):
            sidecar = Path(str(self.path) + suffix)
            if sidecar.exists():
                size += sidecar.stat().st_size
        return {
            "backend": "sqlite",
            "path": str(self.path),
            "schema": tag,
            "entries": entries,
            "stale_entries": stale,
            "size_bytes": size,
            "quarantine_entries": quarantine_entries,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }

    def compact(self) -> Dict[str, int]:
        """Drop stale-schema rows and quarantine evidence, then VACUUM."""
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            removed = conn.execute(
                "DELETE FROM results WHERE schema != ?", (self.schema_tag,)
            ).rowcount
            removed_quarantine = conn.execute("DELETE FROM quarantine").rowcount
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        conn.execute("VACUUM")
        return {
            "removed_entries": removed + removed_quarantine,
            "removed_stale": removed,
            "removed_quarantine": removed_quarantine,
        }
