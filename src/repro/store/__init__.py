"""Pluggable result-store layer: one protocol, two backends.

Every cached :class:`~repro.harness.experiment.ExperimentResult` lives
behind the :class:`~repro.store.base.ResultStore` protocol, keyed by
``ExperimentConfig.cache_key()``:

- :class:`~repro.store.jsondir.JsonDirStore` -- the historical
  one-JSON-file-per-result DiskCache layout, fully back-compatible;
- :class:`~repro.store.sqlite.SqliteStore` -- a single WAL-mode SQLite
  file whose ``get_many`` answers a whole sweep chunk with one query.

``make_store`` maps the CLI's ``--store json|sqlite`` choice onto a
backend rooted at a cache directory; ``migrate_json_to_sqlite``
converts an existing JSON cache into a SQLite file with count and
byte-equality verification.  Both backends serve bit-identical results
and keep the DiskCache hit/miss/write/quarantine counter contract.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.harness.diskcache import SCHEMA_VERSION, default_cache_dir
from repro.store.base import ResultStore, store_schema_tag
from repro.store.jsondir import JsonDirStore
from repro.store.migrate import MigrationReport, migrate_json_to_sqlite
from repro.store.sqlite import DEFAULT_SQLITE_FILENAME, SqliteStore

__all__ = [
    "ResultStore",
    "JsonDirStore",
    "SqliteStore",
    "MigrationReport",
    "migrate_json_to_sqlite",
    "make_store",
    "store_schema_tag",
    "STORE_BACKENDS",
    "DEFAULT_SQLITE_FILENAME",
    "SCHEMA_VERSION",
]

#: Backend names accepted by ``make_store`` and the CLI ``--store`` flag.
STORE_BACKENDS = ("json", "sqlite")


def make_store(
    backend: str, root: Union[str, Path, None] = None
) -> ResultStore:
    """Construct a result store rooted at a cache directory.

    ``backend`` is ``"json"`` (DiskCache-layout directory of JSON
    files) or ``"sqlite"`` (one ``results.sqlite`` file inside the
    root; passing a path that already ends in ``.sqlite`` uses that
    file directly).  ``root`` defaults to the usual cache directory
    (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-mnet``).
    """
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r} "
            f"(expected one of {STORE_BACKENDS})"
        )
    root_path: Optional[Path] = Path(root).expanduser() if root else None
    if backend == "json":
        return JsonDirStore(root_path)
    base = root_path if root_path is not None else default_cache_dir()
    if base.suffix == ".sqlite":
        return SqliteStore(base)
    return SqliteStore(base / DEFAULT_SQLITE_FILENAME)
