"""JSON-directory -> SQLite cache migration with verification.

``migrate_json_to_sqlite`` walks the *active* schema-tag directory of a
:class:`~repro.store.jsondir.JsonDirStore` (stale-version directories
are never migrated -- they would be misses in either backend), copies
each payload verbatim into a :class:`~repro.store.sqlite.SqliteStore`,
then verifies the move two ways:

- **counts**: every readable source entry must be present in the
  destination (``report.ok`` is false otherwise);
- **payload equality**: a deterministic sample of migrated keys is read
  back from the destination and compared byte-for-byte against the
  source payload (both sides canonicalized with sorted keys, so JSON
  whitespace differences cannot mask or fake a mismatch).

Corrupt source files are skipped and counted, not copied -- migrating
garbage would just move the quarantine problem.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List

from repro.store.jsondir import JsonDirStore
from repro.store.sqlite import SqliteStore, _decode_payload

__all__ = ["MigrationReport", "migrate_json_to_sqlite"]


def _canonical(payload: object) -> bytes:
    """Key-sorted compact JSON bytes; the unit of byte-equality checks."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass
class MigrationReport:
    """Outcome of one JSON->SQLite migration run."""

    #: Source files considered (``*.json`` under the active schema tag).
    scanned: int = 0
    #: Entries copied into the destination.
    migrated: int = 0
    #: Source files that failed to parse and were left behind.
    skipped_corrupt: int = 0
    #: Source files whose recorded key did not match their filename.
    skipped_mismatched_key: int = 0
    #: Destination entry count after migration (active schema tag).
    dest_entries: int = 0
    #: Keys whose payloads were read back and compared byte-for-byte.
    sampled: int = 0
    #: Sampled keys whose destination payload differed from the source.
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when counts line up and every sampled payload matched."""
        return (
            self.dest_entries >= self.migrated
            and self.migrated == self.scanned - self.skipped_corrupt
            - self.skipped_mismatched_key
            and not self.mismatches
        )

    def summary_lines(self) -> List[str]:
        """Human-readable report rows for the CLI."""
        lines = [
            f"scanned            {self.scanned}",
            f"migrated           {self.migrated}",
            f"skipped (corrupt)  {self.skipped_corrupt}",
            f"skipped (bad key)  {self.skipped_mismatched_key}",
            f"dest entries       {self.dest_entries}",
            f"sampled payloads   {self.sampled} "
            f"({len(self.mismatches)} mismatched)",
            f"verified           {'OK' if self.ok else 'FAILED'}",
        ]
        return lines


def migrate_json_to_sqlite(
    source: JsonDirStore, dest: SqliteStore, sample: int = 8
) -> MigrationReport:
    """Copy every readable active-tag entry from ``source`` to ``dest``.

    ``sample`` bounds how many migrated keys are read back for the
    byte-equality spot check (the first N in sorted-key order, so the
    check is deterministic).  Returns a :class:`MigrationReport`; the
    caller decides whether a not-``ok`` report is fatal.
    """
    report = MigrationReport()
    directory = source.directory
    if not directory.is_dir():
        return report
    migrated_payloads = {}
    for path in sorted(directory.glob("*.json")):
        report.scanned += 1
        try:
            with open(path) as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict) or "result" not in payload:
                raise ValueError("not a cache payload")
        except (OSError, json.JSONDecodeError, ValueError):
            report.skipped_corrupt += 1
            continue
        key = str(payload.get("key", path.stem))
        if key != path.stem:
            report.skipped_mismatched_key += 1
            continue
        dest.put_payload(key, payload)
        migrated_payloads[key] = payload
        report.migrated += 1
    report.dest_entries = len(dest)
    conn = dest._conn()
    for key in sorted(migrated_payloads)[: max(0, sample)]:
        report.sampled += 1
        row = conn.execute(
            "SELECT payload FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            report.mismatches.append(key)
            continue
        try:
            stored = _decode_payload(row[0])
        except Exception:
            report.mismatches.append(key)
            continue
        if _canonical(stored) != _canonical(migrated_payloads[key]):
            report.mismatches.append(key)
    return report
