"""The :class:`ResultStore` protocol: what every result backend provides.

A result store maps ``ExperimentConfig.cache_key()`` to a persisted
:class:`~repro.harness.experiment.ExperimentResult`.  The protocol is
deliberately the superset of what the three consumers need:

- ``SweepRunner`` probes a whole sweep chunk at once via ``get_many``
  and writes each fresh simulation back with ``put``;
- the serve layer's disk tier does per-request ``get``/``put`` behind
  its in-memory LRU and surfaces the counters in ``/v1/stats``;
- the CLI ``store`` subcommands drive ``stats`` and ``compact`` and
  the JSON->SQLite migration helper.

Every backend is *schema-version aware*: entries are tagged with the
same ``v<SCHEMA_VERSION>-<repro.__version__>`` string the historical
:class:`~repro.harness.diskcache.DiskCache` used for its directory
name, and an entry written under any other tag is a miss (never a
stale hit, never an error).  Backends also share the DiskCache counter
contract -- ``hits``/``misses``/``writes``/``quarantined`` attributes,
exact under concurrent access -- because the serve stats payload and
the CLI cache summary read those attributes directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Tuple, runtime_checkable

from repro.harness.diskcache import SCHEMA_VERSION
from repro.harness.experiment import ExperimentConfig, ExperimentResult

__all__ = ["ResultStore", "store_schema_tag", "SCHEMA_VERSION"]


def store_schema_tag() -> str:
    """The active entry tag: ``v<SCHEMA_VERSION>-<repro.__version__>``.

    Shared by every backend so a schema or package-version bump
    invalidates all stale entries at once, exactly as the original
    DiskCache directory naming did.
    """
    import repro  # deferred: repro.__init__ imports the store facade

    return f"v{SCHEMA_VERSION}-{repro.__version__}"


@runtime_checkable
class ResultStore(Protocol):
    """Persistent result cache keyed by ``ExperimentConfig.cache_key()``.

    Implementations must be safe to share across threads (serve
    dispatcher + HTTP handler threads funnel through one instance) and
    across processes (two CLI invocations may race on the same path).
    Counter attributes (``hits``, ``misses``, ``writes``,
    ``quarantined``) must stay exact under that contention.
    """

    hits: int
    misses: int
    writes: int
    quarantined: int

    @property
    def schema_tag(self) -> str:
        """Entry tag tying stored payloads to schema + package version."""
        ...

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The stored result for ``config``, or ``None`` on a miss.

        Corrupt entries are quarantined (evidence kept, ``quarantined``
        incremented) and reported as misses; entries written under a
        different schema tag are plain misses.
        """
        ...

    def put(self, config: ExperimentConfig, result: ExperimentResult) -> None:
        """Persist ``result`` under ``config``'s key (upsert)."""
        ...

    def get_many(
        self, configs: Iterable[ExperimentConfig]
    ) -> Dict[str, ExperimentResult]:
        """Bulk lookup: ``{cache_key: result}`` for every hit.

        Missing keys are simply absent from the returned mapping.  Each
        probed config counts exactly one hit or one miss, so the
        counters match what a per-key ``get`` loop would have recorded.
        """
        ...

    def put_many(
        self, items: Iterable[Tuple[ExperimentConfig, ExperimentResult]]
    ) -> int:
        """Persist a batch of results; returns how many were written."""
        ...

    def contains(self, config: ExperimentConfig) -> bool:
        """Whether an entry exists for ``config`` (no counter changes)."""
        ...

    def __len__(self) -> int:
        """Number of entries readable under the active schema tag."""
        ...

    def stats(self) -> Dict[str, object]:
        """Backend-identifying snapshot: counters, entry count, size."""
        ...

    def compact(self) -> Dict[str, int]:
        """Drop stale-schema and quarantined debris; reclaim space.

        Returns a summary of what was removed (backend-specific keys,
        always including ``removed_entries``).
        """
        ...


def distinct_configs(
    configs: Iterable[ExperimentConfig],
) -> List[Tuple[str, ExperimentConfig]]:
    """``(cache_key, config)`` pairs with duplicate keys dropped.

    Shared helper for ``get_many`` implementations: a sweep chunk may
    contain repeated configs and each distinct key must count exactly
    once toward hits/misses.
    """
    seen: Dict[str, ExperimentConfig] = {}
    for config in configs:
        key = config.cache_key()
        if key not in seen:
            seen[key] = config
    return list(seen.items())
