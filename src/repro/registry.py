"""Generic decorator-based plugin registry for named components.

Five string-keyed component namespaces drive the simulator -- topology
builders, mechanism factories, management policies, workload profiles,
and address mappings.  Historically each kept its own dict plus its own
hand-rolled validation and "unknown name" error message; this module
gives them one shared implementation:

* **decorator registration**: ``@REGISTRY.register("name")`` at the
  definition site, so adding a component is one decorator away and the
  listing can never drift from the implementations;
* **aliases and canonicalization**: ``ROO+VWL`` resolves to ``VWL+ROO``,
  ``fp`` to ``FP`` -- every alias maps onto one canonical name so cache
  keys and display stay stable;
* **uniform errors**: every lookup failure raises
  ``unknown <kind> <name>; choose from [...]`` with a registry-specific
  exception class (preserving each namespace's historical exception
  contract, e.g. ``TopologyError`` for topologies and ``KeyError`` for
  workloads);
* **introspection**: ``names()`` / ``items()`` / mapping protocol feed
  ``repro-mnet list`` and the CLI ``choices=`` lists from one source of
  truth.

A :class:`Registry` behaves like a read-only mapping of *canonical*
names to registered objects: ``sorted(registry)``, ``name in registry``,
``registry[name]`` and ``len(registry)`` all work, so existing code
holding a plain dict (``TOPOLOGY_BUILDERS``) keeps working when handed
the registry itself.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

__all__ = ["Registry", "RegistryError"]

T = TypeVar("T")


class RegistryError(ValueError):
    """Raised for registration mistakes (duplicate or malformed names).

    Lookup failures raise the registry's configured ``error_cls``
    instead; this class covers programming errors at definition time.
    """


class Registry(Generic[T]):
    """A named, ordered mapping of component names to implementations.

    Parameters
    ----------
    kind:
        Human-readable singular noun used in error messages and CLI
        headings (``"topology"``, ``"mechanism"``, ...).
    error_cls:
        Exception class raised on unknown-name lookups.  Defaults to
        ``ValueError``; pass ``KeyError`` or a domain error type to
        preserve an existing exception contract.
    canonicalize:
        Optional name normalizer applied to every registered and looked
        up name *before* alias resolution (e.g. ``str.upper`` for
        mechanisms, so ``"fp"`` and ``"FP"`` are the same entry).
    """

    def __init__(
        self,
        kind: str,
        *,
        error_cls: Type[Exception] = ValueError,
        canonicalize: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.kind = kind
        self.error_cls = error_cls
        self._canonicalize = canonicalize
        #: canonical name -> object, in registration order.
        self._objects: Dict[str, T] = {}
        #: alias (post-canonicalization) -> canonical name.
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, *, aliases: Tuple[str, ...] = ()
    ) -> Callable[[T], T]:
        """Decorator registering the decorated object under ``name``.

        ``aliases`` are alternative spellings resolving to ``name``;
        they never appear in :meth:`names` but are accepted by every
        lookup.  Returns the object unchanged.
        """

        def deco(obj: T) -> T:
            self.add(name, obj, aliases=aliases)
            return obj

        return deco

    def add(self, name: str, obj: T, aliases: Tuple[str, ...] = ()) -> None:
        """Imperative registration (for objects built in a loop)."""
        key = self._norm(name)
        if key in self._objects or key in self._aliases:
            raise RegistryError(f"duplicate {self.kind} name {name!r}")
        self._objects[key] = obj
        for alias in aliases:
            akey = self._norm(alias)
            if akey in self._objects or akey in self._aliases:
                raise RegistryError(
                    f"duplicate {self.kind} alias {alias!r}"
                )
            self._aliases[akey] = key

    def _norm(self, name: str) -> str:
        return self._canonicalize(name) if self._canonicalize else name

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to its canonical spelling.

        Raises the registry's ``error_cls`` with the uniform
        ``unknown <kind> <name>; choose from [...]`` message when the
        name is not registered.
        """
        key = self._norm(name)
        if key in self._objects:
            return key
        if key in self._aliases:
            return self._aliases[key]
        raise self.error_cls(
            f"unknown {self.kind} {name!r}; choose from {self.names_sorted()}"
        )

    def get(self, name: str) -> T:
        """The object registered under ``name`` (aliases accepted)."""
        return self._objects[self.canonical(name)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._objects)

    def names_sorted(self) -> List[str]:
        """Canonical names, sorted (for error messages / CLI choices)."""
        return sorted(self._objects)

    def aliases(self) -> Dict[str, str]:
        """``{alias: canonical}`` for every registered alias."""
        return dict(self._aliases)

    def items(self) -> Iterator[Tuple[str, T]]:
        """(canonical name, object) pairs in registration order."""
        return iter(self._objects.items())

    def values(self) -> Iterator[T]:
        """Registered objects in registration order."""
        return iter(self._objects.values())

    def keys(self) -> Iterator[str]:
        """Canonical names in registration order (mapping protocol)."""
        return iter(self._objects)

    # Mapping protocol: lets a Registry stand in for the plain dicts it
    # replaced (``sorted(REG)``, ``REG[name]``, ``name in REG``).
    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = self._norm(name)
        return key in self._objects or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, names={list(self._objects)})"
