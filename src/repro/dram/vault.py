"""Vault (DRAM channel) timing model.

A vault is an independent DRAM channel inside an HMC: a handful of banks
sharing one data bus.  We model, per the close-page policy of Table I:

* per-bank row-cycle occupancy (tRAS + tRP per read),
* the tRRD activate-to-activate window within a vault,
* data-bus serialization (one 64 B burst per ``burst_ns``),
* a bounded command queue (``vault_buffer_entries``).

The model is *timeline based*: each resource keeps a "next free" time and
an access reserves the earliest instant satisfying all constraints.  This
reproduces queueing and bank conflicts without simulating individual DRAM
commands, which is all the paper's power study needs (it charges a fixed
30 ns read latency in its slowdown accounting and derives DRAM power from
utilization).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dram.timing import DramTiming

__all__ = ["Vault", "VaultAccess"]


class VaultAccess:
    """Outcome of scheduling one access on a vault.

    ``start`` is when the activate begins, ``data_ready`` when read data
    has fully burst (response packet can depart), ``done`` when the bank
    becomes available again.

    A plain ``__slots__`` class (one is allocated per DRAM access, which
    makes construction cost part of the simulator's hot path).
    """

    __slots__ = ("start", "data_ready", "done")

    def __init__(self, start: float, data_ready: float, done: float) -> None:
        self.start = start
        self.data_ready = data_ready
        self.done = done

    @property
    def latency_from(self) -> float:
        """Data-ready latency measured from ``start``."""
        return self.data_ready - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VaultAccess(start={self.start}, data_ready={self.data_ready}, "
            f"done={self.done})"
        )


class Vault:
    """One vault: banks plus a shared data bus, close-page policy."""

    __slots__ = (
        "timing",
        "_bank_free",
        "_bus_free",
        "_last_act",
        "_queue_free",
        "_open_rows",
        "busy_ns",
        "bank_busy_ns",
        "reads",
        "writes",
        "row_hits",
        "row_misses",
        "_open_policy",
        "_buf_entries",
        "_n_banks",
        "_burst_ns",
        "_tRRD",
        "_tRCD",
        "_tCL",
        "_tRP",
        "_tWR",
        "_read_occ",
    )

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self._bank_free: List[float] = [0.0] * timing.banks_per_vault
        self._bus_free: float = 0.0
        self._last_act: float = -1e18
        #: Departure times of queued commands (bounded FIFO occupancy).
        self._queue_free: List[float] = []
        # Cached per-access constants (timing is frozen, so these can
        # never drift from self.timing).
        self._open_policy: bool = timing.page_policy == "open"
        self._buf_entries: int = timing.vault_buffer_entries
        self._n_banks: int = timing.banks_per_vault
        self._burst_ns: float = timing.burst_ns
        self._tRRD: float = timing.tRRD
        self._tRCD: float = timing.tRCD
        self._tCL: float = timing.tCL
        self._tRP: float = timing.tRP
        self._tWR: float = timing.tWR
        self._read_occ: float = timing.read_bank_occupancy_ns
        #: Open row per bank (open-page policy only).
        self._open_rows: List[Optional[int]] = [None] * timing.banks_per_vault
        self.busy_ns: float = 0.0
        #: Per-bank occupied time (activate start to bank free) -- the
        #: bank state residency behind the observability layer's
        #: ``dram`` events and :meth:`bank_residency`.
        self.bank_busy_ns: List[float] = [0.0] * timing.banks_per_vault
        self.reads: int = 0
        self.writes: int = 0
        self.row_hits: int = 0
        self.row_misses: int = 0

    def access(self, now: float, bank: int, is_read: bool, row: int = 0) -> VaultAccess:
        """Schedule an access arriving at ``now`` on ``bank``/``row``.

        Returns the reserved timing and advances the vault state.  If the
        command queue is full the access stalls until an entry frees.
        ``row`` only matters under the open-page policy.
        """
        bank %= self._n_banks

        # Bounded command queue: wait for an entry if all are in flight.
        # Pruning departed entries is amortized: the list only needs a
        # sweep once it reaches capacity, which keeps its length bounded
        # by ``vault_buffer_entries`` + 1 and gives the same stall times
        # as pruning on every access (the stall decision below only ever
        # inspects the pruned list).
        start_earliest = now
        queue_free = self._queue_free
        if len(queue_free) >= self._buf_entries:
            queue_free = [d for d in queue_free if d > now]
            self._queue_free = queue_free
            if len(queue_free) >= self._buf_entries:
                start_earliest = min(queue_free)

        if self._open_policy:
            access = self._access_open(start_earliest, bank, is_read, row)
        else:
            access = self._access_close(start_earliest, bank, is_read)
        self.busy_ns += self._burst_ns
        self.bank_busy_ns[bank] += access.done - access.start
        queue_free.append(access.done)
        if is_read:
            self.reads += 1
        else:
            self.writes += 1
        return access

    def _access_close(self, earliest: float, bank: int, is_read: bool) -> VaultAccess:
        """Close-page: activate + access + precharge every time."""
        # Activate constraints: bank must be precharged, tRRD since the
        # previous activate in this vault.  Timing constants come from
        # the per-access caches; the arithmetic (including evaluation
        # order) matches the uncached original term for term.
        act = max(earliest, self._bank_free[bank], self._last_act + self._tRRD)
        if is_read:
            data_start = act + self._tRCD + self._tCL
            data_start = max(data_start, self._bus_free)
            data_ready = data_start + self._burst_ns
            done = max(act + self._read_occ, data_ready + self._tRP)
        else:
            data_start = max(act + self._tRCD, self._bus_free)
            data_ready = data_start + self._burst_ns
            done = data_ready + self._tWR + self._tRP

        self._last_act = act
        self._bank_free[bank] = done
        self._bus_free = data_ready
        return VaultAccess(start=act, data_ready=data_ready, done=done)

    def _access_open(self, earliest: float, bank: int, is_read: bool, row: int) -> VaultAccess:
        """Open-page: rows stay open; hits skip precharge + activate."""
        t = self.timing
        open_row = self._open_rows[bank]
        start = max(earliest, self._bank_free[bank])
        if open_row == row:
            self.row_hits += 1
            cas = start
        else:
            self.row_misses += 1
            precharge = t.tRP if open_row is not None else 0.0
            act = max(start + precharge, self._last_act + t.tRRD)
            self._last_act = act
            cas = act + t.tRCD
        if is_read:
            data_start = max(cas + t.tCL, self._bus_free)
            data_ready = data_start + t.burst_ns
            done = data_ready
        else:
            data_start = max(cas, self._bus_free)
            data_ready = data_start + t.burst_ns
            done = data_ready + t.tWR
        self._open_rows[bank] = row
        self._bank_free[bank] = done
        self._bus_free = data_ready
        return VaultAccess(start=start, data_ready=data_ready, done=done)

    @property
    def accesses(self) -> int:
        """Total accesses serviced."""
        return self.reads + self.writes

    def bank_residency(self, window_ns: float) -> List[float]:
        """Per-bank occupied fraction of ``window_ns`` (capped at 1.0).

        Occupancy counts activate-to-precharge-done time, so under the
        close-page policy it reflects full row cycles, not just bursts.
        """
        if window_ns <= 0:
            return [0.0] * len(self.bank_busy_ns)
        return [min(1.0, b / window_ns) for b in self.bank_busy_ns]


class VaultSet:
    """The 32 vaults of one HMC plus the line-interleaved address map."""

    __slots__ = (
        "timing",
        "vaults",
        "_line_bytes",
        "_n_vaults",
        "_n_banks",
        "_lines_per_row",
    )

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self.vaults: List[Vault] = [Vault(timing) for _ in range(timing.vaults)]
        # Address-map constants cached off the frozen timing config so
        # the per-access path decodes vault/bank/row from a single
        # ``line`` division.
        self._line_bytes: int = timing.line_bytes
        self._n_vaults: int = timing.vaults
        self._n_banks: int = timing.banks_per_vault
        self._lines_per_row: int = timing.row_bytes // timing.line_bytes

    def map_address(self, address: int) -> Tuple[int, int]:
        """Line-interleaved mapping: address -> (vault, bank)."""
        line = address // self.timing.line_bytes
        vault = line % self.timing.vaults
        bank = (line // self.timing.vaults) % self.timing.banks_per_vault
        return vault, bank

    def map_row(self, address: int) -> int:
        """Row index within a bank (open-page locality granularity)."""
        line = address // self.timing.line_bytes
        per_bank = line // (self.timing.vaults * self.timing.banks_per_vault)
        return per_bank // (self.timing.row_bytes // self.timing.line_bytes)

    def access(self, now: float, address: int, is_read: bool) -> VaultAccess:
        """Route ``address`` to its vault/bank and schedule the access.

        Decodes the line-interleaved map inline (one ``line`` division
        shared by the vault/bank/row computations) -- equivalent to
        :meth:`map_address` + :meth:`map_row`, which remain the readable
        reference implementations.
        """
        line = address // self._line_bytes
        n_vaults = self._n_vaults
        per_vault = line // n_vaults
        row = (per_vault // self._n_banks) // self._lines_per_row
        return self.vaults[line % n_vaults].access(
            now, per_vault % self._n_banks, is_read, row=row
        )

    @property
    def reads(self) -> int:
        """Reads serviced across all vaults."""
        return sum(v.reads for v in self.vaults)

    @property
    def writes(self) -> int:
        """Writes serviced across all vaults."""
        return sum(v.writes for v in self.vaults)

    @property
    def accesses(self) -> int:
        """Total accesses serviced across all vaults."""
        return sum(v.accesses for v in self.vaults)

    def busy_fraction(self, window_ns: float) -> float:
        """Average data-bus utilization across vaults over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        total = sum(v.busy_ns for v in self.vaults)
        return min(1.0, total / (len(self.vaults) * window_ns))

    def bank_residency(self, window_ns: float) -> float:
        """Mean bank-occupied fraction across every bank of every vault."""
        if window_ns <= 0:
            return 0.0
        fracs = [f for v in self.vaults for f in v.bank_residency(window_ns)]
        return sum(fracs) / len(fracs) if fracs else 0.0
