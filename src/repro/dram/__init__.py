"""DRAM substrate: HMC vault timing model with Table I parameters."""

from repro.dram.timing import DEFAULT_TIMING, DramTiming
from repro.dram.vault import Vault, VaultAccess, VaultSet

__all__ = ["DramTiming", "DEFAULT_TIMING", "Vault", "VaultAccess", "VaultSet"]
