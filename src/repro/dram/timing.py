"""HMC DRAM array timing parameters (Table I of the paper).

Each 4 GB HMC contains 32 vaults.  A vault's DRAM data bus runs at
2 Gbps over a 32-bit interface, so a 64 B line bursts in

    64 B * 8 bit / (32 lanes * 2 Gbps) = 8 ns.

With a close-page policy a read costs tRCD + tCL + burst = 30 ns, the
figure the paper quotes for DRAM access latency, and occupies its bank
for a full row cycle tRAS + tRP = 33 ns.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramTiming", "DEFAULT_TIMING"]


@dataclass(frozen=True)
class DramTiming:
    """Timing and organization parameters of one HMC's DRAM (Table I)."""

    capacity_bytes: int = 4 * 1024**3
    vaults: int = 32
    banks_per_vault: int = 8
    vault_data_rate_gbps: float = 2.0
    vault_io_width: int = 32
    vault_buffer_entries: int = 16
    line_bytes: int = 64
    #: Row-buffer policy: "close" (Table I's default -- every access
    #: activates and precharges) or "open" (rows stay open; hits skip
    #: tRP + tRCD at the cost of larger miss latency).
    page_policy: str = "close"
    #: DRAM row size per bank; determines open-page hit locality.
    row_bytes: int = 2048
    tCL: float = 11.0
    tRCD: float = 11.0
    tRAS: float = 22.0
    tRP: float = 11.0
    tRRD: float = 5.0
    tWR: float = 12.0

    def __post_init__(self) -> None:
        if self.vaults < 1 or self.banks_per_vault < 1:
            raise ValueError("vaults and banks_per_vault must be positive")
        if self.capacity_bytes % self.vaults:
            raise ValueError("capacity must divide evenly across vaults")
        if self.page_policy not in ("close", "open"):
            raise ValueError(f"unknown page policy {self.page_policy!r}")
        if self.row_bytes < self.line_bytes:
            raise ValueError("a row must hold at least one line")

    @property
    def burst_ns(self) -> float:
        """Time to burst one line over the vault data bus."""
        bits = self.line_bytes * 8
        return bits / (self.vault_io_width * self.vault_data_rate_gbps)

    @property
    def read_latency_ns(self) -> float:
        """Close-page read latency: activate + CAS + burst (= 30 ns)."""
        return self.tRCD + self.tCL + self.burst_ns

    @property
    def read_bank_occupancy_ns(self) -> float:
        """Bank busy time per close-page read: full row cycle tRAS + tRP."""
        return self.tRAS + self.tRP

    @property
    def write_bank_occupancy_ns(self) -> float:
        """Bank busy time per close-page write: tRCD + burst + tWR + tRP."""
        return self.tRCD + self.burst_ns + self.tWR + self.tRP

    @property
    def max_accesses_per_ns(self) -> float:
        """Peak sustainable access rate of the whole HMC.

        Each vault's data bus moves one line per ``burst_ns``; with all
        vaults streaming, the HMC tops out at ``vaults / burst_ns``
        accesses per nanosecond (4/ns = 256 GB/s for default parameters).
        """
        return self.vaults / self.burst_ns


#: The paper's Table I configuration.
DEFAULT_TIMING = DramTiming()
