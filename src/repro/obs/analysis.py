"""Reading traces back: residency reconstruction and summaries.

The JSONL trace format is the canonical interchange; these helpers load
it and answer the questions a reproduction debugging session asks
first:

* :func:`link_state_residency` -- integrate the ``link.state`` segment
  events back into per-link, per-state time totals.  By construction
  these must equal the link controllers' own ``mode_time_ns`` /
  ``off_time_ns`` accounting (pinned by the trace consistency test), so
  a mismatch between a trace and a power number localizes a bug
  immediately.
* :func:`event_counts` / :func:`format_trace_summary` -- quick shape
  checks of a captured trace.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

__all__ = [
    "read_jsonl",
    "event_counts",
    "link_state_residency",
    "format_trace_summary",
]


def read_jsonl(path) -> List[Dict]:
    """Load a JSONL trace file into a list of event dicts."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def event_counts(events: Iterable[Dict]) -> Dict[str, int]:
    """Number of events per event type, sorted by type name."""
    counts: Dict[str, int] = {}
    for event in events:
        name = event.get("ev", "?")
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def link_state_residency(events: Iterable[Dict]) -> Dict[str, Dict[str, float]]:
    """Per-link time spent in each power state, from ``link.state`` events.

    Returns ``{link_name: {state: ns}}`` where ``state`` is ``"off"`` or
    ``"w<width_index>"``.  Only closed segments count; a trace captured
    through :func:`repro.harness.experiment.run_experiment` closes every
    segment at the window end, so the per-link total equals the
    simulated window.
    """
    residency: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("ev") != "link.state":
            continue
        per_link = residency.setdefault(event["link"], {})
        state = event["state"]
        per_link[state] = per_link.get(state, 0.0) + event["dur_ns"]
    return residency


def format_trace_summary(events: List[Dict]) -> str:
    """Human-readable digest: counts per event type + link residency."""
    lines = [f"{len(events)} events"]
    for name, count in event_counts(events).items():
        lines.append(f"  {name:<16s} {count}")
    residency = link_state_residency(events)
    if residency:
        lines.append("link power-state residency (ns):")
        for link in sorted(residency):
            states = residency[link]
            parts = ", ".join(
                f"{state}={states[state]:.0f}" for state in sorted(states)
            )
            lines.append(f"  {link:<14s} {parts}")
    return "\n".join(lines)
