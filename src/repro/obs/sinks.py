"""Trace sinks: where structured events go.

Four backends behind one two-method protocol (``write(event)`` /
``close()``):

* :class:`ListSink` -- in-memory, for tests and programmatic analysis;
* :class:`JsonlTraceSink` -- one JSON object per line, the canonical
  interchange format (``repro.obs.analysis`` reads it back);
* :class:`CsvTraceSink` -- flat rows with the union of all field names
  as columns (buffered until close, since the schema is event-defined);
* :class:`ChromeTraceSink` -- Chrome trace-event JSON, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev: ``link.state``
  residency segments become duration slices on one track per link,
  everything else becomes instant events on its category track.

All file sinks take a path or an open file object; paths are opened
lazily and closed by ``close()``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TraceSink",
    "ListSink",
    "JsonlTraceSink",
    "CsvTraceSink",
    "ChromeTraceSink",
    "TRACE_FORMATS",
    "make_sink",
]

#: Formats accepted by :func:`make_sink` and the CLI ``--trace-format``.
TRACE_FORMATS: Tuple[str, ...] = ("jsonl", "csv", "chrome")

#: Reserved keys, always the leading columns/fields.
_RESERVED = ("t", "cat", "ev")


class TraceSink:
    """Protocol: accepts event dicts, releases resources on close."""

    def write(self, event: Dict) -> None:
        """Record one event (a flat dict with ``t``/``cat``/``ev``)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush buffered events and release any file handle."""


class ListSink(TraceSink):
    """Collects events in a list -- the test/analysis backend."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def write(self, event: Dict) -> None:
        """Append the event."""
        self.events.append(dict(event))


class _FileBacked(TraceSink):
    """Shared path-or-file-object handling for the file sinks."""

    def __init__(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", newline="")
            self._owns = True

    def close(self) -> None:
        """Close the file if this sink opened it."""
        if self._owns:
            self._fh.close()


class JsonlTraceSink(_FileBacked):
    """One compact JSON object per line, in emission order."""

    def write(self, event: Dict) -> None:
        """Serialize the event as one JSON line."""
        self._fh.write(json.dumps(event, separators=(",", ":")))
        self._fh.write("\n")


class CsvTraceSink(_FileBacked):
    """Flat CSV with the union of every event's fields as columns.

    Events carry heterogeneous fields, so rows are buffered and the
    header is computed at close: reserved columns first, then the
    remaining field names sorted.
    """

    def __init__(self, path_or_file) -> None:
        super().__init__(path_or_file)
        self._rows: List[Dict] = []

    def write(self, event: Dict) -> None:
        """Buffer the event for the close-time column computation."""
        self._rows.append(dict(event))

    def close(self) -> None:
        """Write header + all buffered rows, then close the file."""
        import csv

        extra = sorted(
            {k for row in self._rows for k in row} - set(_RESERVED)
        )
        writer = csv.DictWriter(self._fh, fieldnames=list(_RESERVED) + extra)
        writer.writeheader()
        writer.writerows(self._rows)
        super().close()


class ChromeTraceSink(_FileBacked):
    """Chrome trace-event ("catapult") JSON for chrome://tracing / Perfetto.

    Timestamps are converted from nanoseconds to the format's
    microseconds.  Track (``tid``) assignment: ``link.*`` events share a
    track per link name, others share a track per category; a metadata
    record names each track.
    """

    def __init__(self, path_or_file) -> None:
        super().__init__(path_or_file)
        self._events: List[Dict] = []
        self._tids: Dict[str, int] = {}

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids)
            self._tids[track] = tid
        return tid

    def write(self, event: Dict) -> None:
        """Convert one event to a trace-event record and buffer it."""
        cat = event.get("cat", "")
        name = event.get("ev", "")
        track = event.get("link", cat) if cat == "link" else cat
        args = {
            k: v for k, v in event.items() if k not in ("t", "cat", "ev")
        }
        record = {
            "name": event.get("state", name) if name == "link.state" else name,
            "cat": cat,
            "ts": event.get("t", 0.0) / 1000.0,
            "pid": 0,
            "tid": self._tid(track),
            "args": args,
        }
        if "dur_ns" in event:
            record["ph"] = "X"
            record["dur"] = event["dur_ns"] / 1000.0
        else:
            record["ph"] = "i"
            record["s"] = "t"
        self._events.append(record)

    def close(self) -> None:
        """Emit thread-name metadata + all records as one JSON document."""
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in self._tids.items()
        ]
        json.dump(
            {"traceEvents": meta + self._events, "displayTimeUnit": "ns"},
            self._fh,
            separators=(",", ":"),
        )
        super().close()


def make_sink(path, fmt: str = "jsonl") -> TraceSink:
    """Build the file sink for ``fmt`` (one of :data:`TRACE_FORMATS`)."""
    if fmt == "jsonl":
        return JsonlTraceSink(path)
    if fmt == "csv":
        return CsvTraceSink(path)
    if fmt == "chrome":
        return ChromeTraceSink(path)
    raise ValueError(f"unknown trace format {fmt!r}; choose from {TRACE_FORMATS}")
