"""The :class:`Tracer`: category-filtered structured event emission.

A trace event is a flat dict with three reserved keys -- ``t`` (sim
time, ns), ``cat`` (category), ``ev`` (event type) -- plus arbitrary
event-specific fields.  Categories group events by subsystem so a trace
can be kept small (the default set skips the very chatty per-dispatch
engine events and per-access DRAM events):

========  ==================================================  =========
category  events                                              default?
========  ==================================================  =========
meta      ``trace.begin`` ``trace.end``                       always on
link      ``link.state`` ``link.off`` ``link.wake``           yes
          ``link.mode`` ``link.violation``
epoch     ``epoch.boundary`` ``ams.module`` ``ams.link``      yes
          ``isp.epoch`` ``isp.round`` ``isp.discount``
          ``isp.leftover`` ``isp.grant``
dram      ``dram.access``                                     no
engine    ``engine.dispatch``                                 no
fault     ``fault.plan`` ``link.retry`` ``fault.down``        no
          ``fault.vault_stall``
========  ==================================================  =========

``docs/observability.md`` documents every event field-by-field.

Hot paths never pay for disabled tracing: simulation objects hold a
``trace`` attribute that stays ``None`` unless :func:`install_tracer`
wired a tracer *and* the object's category is enabled, so the only cost
is an ``is not None`` test at state-transition sites.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Union

from repro.obs.sinks import TraceSink

__all__ = [
    "ALL_CATEGORIES",
    "DEFAULT_CATEGORIES",
    "Tracer",
    "parse_categories",
    "install_tracer",
]

#: Every known trace category, in documentation order.
ALL_CATEGORIES = ("meta", "link", "epoch", "dram", "engine", "fault")

#: Categories enabled when none are given: the power-state and budget
#: events the paper's figures hinge on, without the per-event /
#: per-access firehose.
DEFAULT_CATEGORIES: FrozenSet[str] = frozenset({"meta", "link", "epoch"})


def parse_categories(spec: Union[str, Iterable[str], None]) -> FrozenSet[str]:
    """Parse a category spec into a frozen category set.

    Accepts ``None`` (the defaults), the string ``"all"``, a
    comma-separated string (``"link,epoch,dram"``), or any iterable of
    names.  ``meta`` is always included.  Unknown names raise
    ``ValueError``.
    """
    if spec is None:
        return DEFAULT_CATEGORIES
    if isinstance(spec, str):
        if spec.strip() == "all":
            return frozenset(ALL_CATEGORIES)
        names = [s.strip() for s in spec.split(",") if s.strip()]
    else:
        names = list(spec)
    unknown = set(names) - set(ALL_CATEGORIES)
    if unknown:
        raise ValueError(
            f"unknown trace categories {sorted(unknown)}; "
            f"choose from {', '.join(ALL_CATEGORIES)} or 'all'"
        )
    return frozenset(names) | {"meta"}


class Tracer:
    """Emits structured events to a :class:`~repro.obs.sinks.TraceSink`.

    The tracer itself is cheap and synchronous; buffering/formatting
    policy lives in the sink.  ``events_emitted`` counts events that
    passed the category filter.
    """

    __slots__ = ("sink", "categories", "events_emitted")

    def __init__(
        self,
        sink: TraceSink,
        categories: Union[str, Iterable[str], None] = None,
    ) -> None:
        self.sink = sink
        self.categories = parse_categories(categories)
        self.events_emitted = 0

    def wants(self, category: str) -> bool:
        """Whether events in ``category`` would be recorded."""
        return category in self.categories

    def emit(self, t: float, category: str, name: str, **fields) -> None:
        """Record one event at sim time ``t`` (ns) if its category is on."""
        if category not in self.categories:
            return
        event = {"t": t, "cat": category, "ev": name}
        event.update(fields)
        self.sink.write(event)
        self.events_emitted += 1

    def close(self) -> None:
        """Flush and close the underlying sink."""
        self.sink.close()


def install_tracer(
    tracer: Optional[Tracer],
    sim=None,
    network=None,
    policy=None,
) -> None:
    """Wire ``tracer`` into the hot-path hooks of a simulation.

    Each object's ``trace`` attribute is set only when the matching
    category is enabled, so disabled categories cost nothing at all:

    * ``sim.trace`` -- ``engine`` events (per-dispatch; very chatty);
    * ``network.trace`` + every link's ``trace`` -- ``dram`` and
      ``link`` events respectively;
    * ``policy.trace`` -- ``epoch`` events.

    Passing ``tracer=None`` is a no-op, so callers can wire
    unconditionally.
    """
    if tracer is None:
        return
    if sim is not None and tracer.wants("engine"):
        sim.trace = tracer
    if network is not None:
        if tracer.wants("dram"):
            network.trace = tracer
        if tracer.wants("link"):
            for link in network.all_links():
                link.trace = tracer
        if tracer.wants("fault"):
            # Fault hooks live on the injected fault-state objects, not
            # the links themselves, so unfaulted links stay untouched.
            for link in network.all_links():
                if link.faults is not None:
                    link.faults.trace = tracer
            if getattr(network, "vault_faults", None) is not None:
                network.vault_faults.trace = tracer
    if policy is not None and tracer.wants("epoch"):
        policy.trace = tracer
