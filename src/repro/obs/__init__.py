"""Structured simulation tracing and metrics (the observability layer).

Everything the simulator *does* -- link power-state transitions, ISP
budget flow, DRAM bank activity, raw event dispatch -- can be captured
as a stream of structured trace events and/or aggregated into per-epoch
metrics, with **zero overhead when disabled**: every hot-path hook is a
single ``is not None`` check against an attribute that defaults to
``None``.

Three pieces:

* :class:`~repro.obs.trace.Tracer` -- category-filtered event emitter;
  hot paths hold a reference only when their category is enabled.
* :mod:`~repro.obs.sinks` -- pluggable :class:`TraceSink` backends:
  JSONL (one event per line), CSV, and Chrome trace-event JSON loadable
  in ``chrome://tracing`` / Perfetto, plus an in-memory list sink.
* :class:`~repro.obs.metrics.MetricsRegistry` -- named counters, gauges
  and histograms with per-epoch snapshots.

See ``docs/observability.md`` for the full event-schema reference and a
worked example.
"""

from repro.obs.analysis import (
    event_counts,
    format_trace_summary,
    link_state_residency,
    read_jsonl,
)
from repro.obs.metrics import (
    Counter,
    EpochLinkMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    CsvTraceSink,
    JsonlTraceSink,
    ListSink,
    TRACE_FORMATS,
    TraceSink,
    make_sink,
)
from repro.obs.trace import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    Tracer,
    install_tracer,
    parse_categories,
)

__all__ = [
    "ALL_CATEGORIES",
    "DEFAULT_CATEGORIES",
    "Tracer",
    "install_tracer",
    "parse_categories",
    "TraceSink",
    "ListSink",
    "JsonlTraceSink",
    "CsvTraceSink",
    "ChromeTraceSink",
    "TRACE_FORMATS",
    "make_sink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EpochLinkMetrics",
    "read_jsonl",
    "event_counts",
    "link_state_residency",
    "format_trace_summary",
]
