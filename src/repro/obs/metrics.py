"""Metrics: named counters, gauges, and histograms with epoch snapshots.

A :class:`MetricsRegistry` owns every instrument created through it and
can snapshot the whole set -- :meth:`MetricsRegistry.mark_epoch` appends
a per-epoch record carrying each counter's *delta* since the previous
epoch alongside the running totals, which is how "per-epoch aggregated"
metrics are produced without the instruments themselves knowing about
epochs.

:class:`EpochLinkMetrics` is the stock bridge between a management
policy's ``epoch_observer`` hook and a registry: at every epoch
boundary it folds the link-controller epoch counters (busy time, flits,
reads, utilization) into the registry and marks the epoch.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "StateGauge",
    "MetricsRegistry",
    "EpochLinkMetrics",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts of observations per bucket.

    ``edges`` are ascending upper bounds; an observation lands in the
    first bucket whose edge is >= the value, or the overflow bucket.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if list(edges) != sorted(edges):
            raise ValueError(f"histogram {name}: edges must ascend")
        self.name = name
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the upper edge of the first bucket whose cumulative
        count reaches ``q * total`` -- a conservative (never
        underestimating within bucket resolution) answer suitable for
        p50/p95 service latencies.  Observations in the overflow bucket
        clamp to the last finite edge; an empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"histogram {self.name}: quantile {q} not in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts[:-1]):
            cumulative += count
            if cumulative >= target:
                return self.edges[i]
        return self.edges[-1]

    def as_dict(self) -> Dict:
        """JSON-safe summary: edges, per-bucket counts, total, mean."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "mean": self.mean,
        }


class StateGauge:
    """A gauge constrained to an ordered, finite set of named states.

    Components with a small state machine (the serve supervisor's
    ``healthy | degraded | draining | unhealthy``, a circuit breaker's
    ``closed | open | half_open``) export both the human-readable state
    string and a stable numeric value (the state's index in ``states``)
    so dashboards can graph transitions without string parsing.
    """

    __slots__ = ("name", "states", "state")

    def __init__(self, name: str, states: Sequence[str]) -> None:
        if not states or len(set(states)) != len(states):
            raise ValueError(
                f"state gauge {name}: states must be non-empty and unique"
            )
        self.name = name
        self.states = tuple(states)
        self.state = self.states[0]

    def set_state(self, state: str) -> None:
        """Record the current state (must be one of ``states``)."""
        if state not in self.states:
            raise ValueError(
                f"state gauge {self.name}: unknown state {state!r} "
                f"(expected one of {self.states})"
            )
        self.state = state

    @property
    def value(self) -> float:
        """The current state's index in ``states`` (as a float)."""
        return float(self.states.index(self.state))

    def as_dict(self) -> Dict:
        """JSON-safe summary: current state, numeric value, state set."""
        return {
            "state": self.state,
            "value": self.value,
            "states": list(self.states),
        }


class MetricsRegistry:
    """Creates, owns, and snapshots counters/gauges/histograms.

    Instruments are identified by name; asking twice returns the same
    object, so call sites need no shared references.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._states: Dict[str, StateGauge] = {}
        self.epochs: List[Dict] = []
        self._last_totals: Dict[str, float] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get or create the histogram called ``name`` with ``edges``."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges)
        return h

    def state_gauge(self, name: str, states: Sequence[str]) -> StateGauge:
        """Get or create the state gauge called ``name`` over ``states``."""
        s = self._states.get(name)
        if s is None:
            s = self._states[name] = StateGauge(name, states)
        return s

    def mark_epoch(self, t: float) -> Dict:
        """Close an epoch: snapshot totals, gauges, and counter deltas.

        Returns the appended epoch record ``{"t", "counters",
        "deltas", "gauges"}``.
        """
        totals = {name: c.value for name, c in self._counters.items()}
        record = {
            "t": t,
            "counters": totals,
            "deltas": {
                name: value - self._last_totals.get(name, 0.0)
                for name, value in totals.items()
            },
            "gauges": {name: g.value for name, g in self._gauges.items()},
        }
        self._last_totals = totals
        self.epochs.append(record)
        return record

    def as_dict(self) -> Dict:
        """JSON-safe dump of every instrument plus the epoch records."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: h.as_dict() for n, h in self._histograms.items()
            },
            "states": {n: s.as_dict() for n, s in self._states.items()},
            "epochs": self.epochs,
        }

    def write_json(self, path) -> None:
        """Write :meth:`as_dict` to ``path`` as indented JSON."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)


#: Utilization histogram edges mirroring Figure 13's buckets.
_UTIL_EDGES: Tuple[float, ...] = (0.01, 0.05, 0.10, 0.20, 1.0)


class EpochLinkMetrics:
    """``epoch_observer`` bridge: link epoch counters -> registry.

    Install on a management policy (possibly chained with other
    observers); every epoch boundary it accumulates network-wide link
    activity and marks the epoch on the registry.
    """

    def __init__(self, registry: MetricsRegistry, sim) -> None:
        self.registry = registry
        self.sim = sim

    def __call__(self, links, epoch_ns: float) -> None:
        """Fold one epoch's link counters into the registry."""
        reg = self.registry
        busy = flits = reads = wakeups = 0.0
        util_hist = reg.histogram("link.utilization", _UTIL_EDGES)
        n = 0
        for link in links:
            busy += link.ep_busy_ns
            flits += link.ep_flits
            reads += link.ep_reads
            wakeups += link.wakeups
            util_hist.observe(link.current_utilization(epoch_ns))
            n += 1
        reg.counter("link.busy_ns").inc(busy)
        reg.counter("link.flits_tx").inc(flits)
        reg.counter("link.reads").inc(reads)
        reg.gauge("link.wakeups_total").set(wakeups)
        reg.gauge("link.avg_utilization").set(
            busy / (n * epoch_ns) if n and epoch_ns > 0 else 0.0
        )
        reg.counter("epochs").inc()
        reg.mark_epoch(self.sim.now)
