"""Execution backends for experiment batches.

:class:`~repro.harness.sweep.SweepRunner` delegates the actual
simulation of cache misses to an *executor*.  Two are provided:

* :class:`SerialExecutor` -- runs each config inline, in order (the
  previous behaviour, and the default);
* :class:`ParallelExecutor` -- fans a batch out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Configs and results
  already round-trip through the plain dicts in
  :mod:`repro.harness.io`, so both are picklable by construction.

The simulation engine is seed-deterministic and every experiment is
independent, so the two executors produce bit-identical results for the
same batch (``tests/test_executor.py`` pins this).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "make_executor"]


class Executor:
    """Interface: turn a batch of configs into a batch of results."""

    #: Worker count, for display purposes.
    jobs: int = 1

    def run_many(
        self, configs: Iterable[ExperimentConfig]
    ) -> List[ExperimentResult]:
        """Simulate every config; results are returned in input order."""
        raise NotImplementedError

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Simulate a single config."""
        return self.run_many([config])[0]


@dataclass(frozen=True)
class SerialExecutor(Executor):
    """Runs every experiment inline in the calling process."""

    jobs: int = 1

    def run_many(
        self, configs: Iterable[ExperimentConfig]
    ) -> List[ExperimentResult]:
        return [run_experiment(config) for config in configs]


@dataclass(frozen=True)
class ParallelExecutor(Executor):
    """Fans a batch out over a process pool.

    ``jobs=0`` (the default) sizes the pool to the machine's CPU count.
    Single-config batches (and ``jobs=1``) run inline -- there is
    nothing to overlap, so the pool would be pure overhead.
    """

    jobs: int = 0

    def run_many(
        self, configs: Iterable[ExperimentConfig]
    ) -> List[ExperimentResult]:
        configs = list(configs)
        jobs = self.jobs if self.jobs > 0 else (os.cpu_count() or 1)
        workers = min(jobs, len(configs))
        if workers <= 1:
            return [run_experiment(config) for config in configs]
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_experiment, configs))


def make_executor(jobs: int = 1) -> Executor:
    """``jobs <= 1`` -> :class:`SerialExecutor`; otherwise a pool of ``jobs``."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)
