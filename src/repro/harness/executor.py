"""Execution backends for experiment batches (hardened).

:class:`~repro.harness.sweep.SweepRunner` delegates the actual
simulation of cache misses to an *executor*.  Two are provided:

* :class:`SerialExecutor` -- runs each config inline, in order (the
  default); with ``timeout_s`` set or ``isolate=True`` each experiment
  runs in a watched child process instead, so a hung or crashing
  simulation cannot take the caller down;
* :class:`ParallelExecutor` -- fans a batch out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with per-experiment
  wall-clock timeouts, worker-crash isolation, bounded retry with
  backoff, and graceful degradation to isolated serial execution when
  the pool keeps dying.

Failure semantics (the core of the hardening): ``run_many`` **never
aborts the batch** because one experiment failed.  Each failing config
yields a structured :class:`FailedResult` in its input-order slot --
carrying the error kind (``error`` / ``crash`` / ``timeout``), a
diagnostic message (including the simulator's crash context, see
:class:`repro.sim.engine.SimulationError`), and the attempt count --
while every other config's result is preserved.  Only
``KeyboardInterrupt``/``SystemExit`` propagate.

Determinism: the simulation engine is seed-deterministic and every
experiment is independent, so serial and parallel execution produce
bit-identical results for the same batch, *including* retried configs
(a retry re-runs the same deterministic simulation).  Results are
mapped back to configs **by submission index**, never by pool
completion order (``tests/test_executor.py`` pins this).

Thread safety: both executors are frozen dataclasses whose
``run_many`` keeps all mutable state in locals (the parallel backend
builds a fresh process pool per call), so one executor instance may be
shared by concurrent threads -- the experiment service's batch
dispatcher relies on this.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Set, Union

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "FailedResult",
    "ExperimentOutcome",
    "make_executor",
    "with_heartbeat",
]


@dataclass
class FailedResult:
    """Structured record of one experiment that could not produce a result.

    ``error_type`` is one of:

    * ``"error"`` -- the simulation raised (deterministic; retrying
      would fail identically, so it never burns retry attempts);
    * ``"crash"`` -- the worker process died (segfault, OOM-kill, ...);
    * ``"timeout"`` -- the experiment exceeded the wall-clock budget
      and the watchdog reclaimed the worker.
    """

    config: ExperimentConfig
    error_type: str
    message: str
    attempts: int = 1
    wall_time_s: float = 0.0

    @property
    def failed(self) -> bool:
        """Always True; lets callers duck-type result-ish objects."""
        return True

    def describe(self) -> str:
        """One-line human-readable summary."""
        cfg = self.config
        return (
            f"{cfg.workload}/{cfg.topology}/{cfg.mechanism}/{cfg.policy}"
            f" FAILED [{self.error_type}] after {self.attempts} attempt(s):"
            f" {self.message}"
        )


#: What batch execution hands back per config.
ExperimentOutcome = Union[ExperimentResult, FailedResult]

#: Per-completion callback: ``(index, config, outcome)``.  Invoked in
#: completion order (not input order) as soon as each outcome is final,
#: so journals checkpoint progress even if the process is killed
#: mid-batch.
OnResult = Callable[[int, ExperimentConfig, ExperimentOutcome], None]

#: Watchdog poll interval while timeouts are armed (seconds).
_WATCHDOG_TICK_S = 0.05

#: Poll interval for isolated-child result pipes while a heartbeat hook
#: is attached (seconds) -- coarse, because each wake only exists to
#: prove the watcher itself is alive.
_HEARTBEAT_TICK_S = 0.5

#: Heartbeat hook signature: receives a short event tag (``"tick"``,
#: ``"task_start"``, ``"task_done"``, ``"worker_restart"``,
#: ``"pool_rebuild"``).  Hooks are called from executor internals and
#: must be cheap; exceptions they raise are swallowed.
HeartbeatHook = Callable[[str], None]


def _failed_from_exception(
    config: ExperimentConfig, exc: BaseException, attempts: int,
    wall_time_s: float = 0.0,
) -> FailedResult:
    return FailedResult(
        config=config,
        error_type="error",
        message=f"{type(exc).__name__}: {exc}",
        attempts=attempts,
        wall_time_s=wall_time_s,
    )


class Executor:
    """Interface: turn a batch of configs into a batch of outcomes."""

    #: Worker count, for display purposes.
    jobs: int = 1

    #: Optional liveness hook (see :data:`HeartbeatHook`); the serve
    #: layer's supervisor installs one via :func:`with_heartbeat` so a
    #: wedged executor is distinguishable from a long simulation.
    heartbeat: Optional[HeartbeatHook] = None

    def _beat(self, event: str) -> None:
        """Invoke the heartbeat hook, swallowing its failures."""
        hook = getattr(self, "heartbeat", None)
        if hook is None:
            return
        try:
            hook(event)
        except Exception:  # noqa: BLE001 - liveness must not break work
            pass

    def run_many(
        self,
        configs: Iterable[ExperimentConfig],
        on_result: Optional[OnResult] = None,
    ) -> List[ExperimentOutcome]:
        """Simulate every config; outcomes are returned in input order.

        A config whose simulation fails yields a :class:`FailedResult`
        in its slot; the rest of the batch is unaffected.
        """
        raise NotImplementedError

    def run(self, config: ExperimentConfig) -> ExperimentOutcome:
        """Simulate a single config."""
        return self.run_many([config])[0]

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary of this backend (kind, jobs, hardening).

        Surfaced by the experiment service's ``/stats`` endpoint so an
        operator can see what executes cache misses without reading the
        launch command.
        """
        return {
            "kind": type(self).__name__,
            "jobs": self.jobs,
            "timeout_s": getattr(self, "timeout_s", None),
            "retries": getattr(self, "retries", 0),
        }


# ----------------------------------------------------------------------
# Isolated single-experiment execution (shared by both executors)
# ----------------------------------------------------------------------
def _isolated_child(conn, config: ExperimentConfig) -> None:
    """Child-process body: run one experiment, ship the outcome back."""
    try:
        result = run_experiment(config)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - must not escape the child
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _run_isolated(
    config: ExperimentConfig,
    timeout_s: Optional[float],
    attempts: int,
    beat: Optional[HeartbeatHook] = None,
) -> ExperimentOutcome:
    """Run one experiment in a watched child process.

    The child is daemonic (killed with the parent) and the parent waits
    on the result pipe with the timeout as its watchdog: a child that
    hangs past the budget -- or dies without reporting -- is killed and
    recorded as a structured failure instead of wedging the caller.
    The wait polls in short ticks (rather than one long ``poll``) so a
    ``beat`` hook, when given, proves the watcher alive while a long
    simulation runs.
    """
    import multiprocessing as mp

    start = time.perf_counter()
    ctx = mp.get_context()
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_isolated_child, args=(send, config), daemon=True)
    proc.start()
    send.close()
    payload = None
    timed_out = False
    deadline = None if timeout_s is None else start + timeout_s
    try:
        while True:
            tick = _HEARTBEAT_TICK_S
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    # Waits exhausted without the pipe turning readable:
                    # the *only* timeout signal (a dying child closes
                    # the pipe, which makes poll() return True and
                    # recv() raise EOFError -- the crash path below).
                    timed_out = True
                    break
                tick = min(tick, remaining)
            if recv.poll(tick):
                payload = recv.recv()
                break
            if beat is not None:
                try:
                    beat("tick")
                except Exception:  # noqa: BLE001 - liveness only
                    pass
    except (EOFError, OSError):
        payload = None
    wall = time.perf_counter() - start
    if timed_out:
        proc.kill()
        proc.join()
        recv.close()
        return FailedResult(
            config=config,
            error_type="timeout",
            message=(
                f"exceeded {timeout_s:g}s wall clock; "
                "watchdog killed the worker"
            ),
            attempts=attempts,
            wall_time_s=wall,
        )
    if payload is None:
        proc.join()
        recv.close()
        return FailedResult(
            config=config,
            error_type="crash",
            message=f"worker process died (exit code {proc.exitcode})",
            attempts=attempts,
            wall_time_s=wall,
        )
    proc.join()
    recv.close()
    kind, value = payload
    if kind == "ok":
        return value
    return FailedResult(
        config=config,
        error_type="error",
        message=value,
        attempts=attempts,
        wall_time_s=wall,
    )


@dataclass(frozen=True)
class SerialExecutor(Executor):
    """Runs every experiment in order in (or under) the calling process.

    By default experiments run inline and a raising simulation becomes
    an ``error`` :class:`FailedResult` (the batch continues).  With
    ``timeout_s`` set or ``isolate=True``, each experiment instead runs
    in its own watched child process, which additionally survives
    worker crashes and hangs; ``retries`` then re-attempts ``crash`` /
    ``timeout`` failures (``error`` failures are deterministic and are
    never retried).
    """

    jobs: int = 1
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.25
    isolate: bool = False
    heartbeat: Optional[HeartbeatHook] = field(
        default=None, compare=False, repr=False
    )

    def run_many(
        self,
        configs: Iterable[ExperimentConfig],
        on_result: Optional[OnResult] = None,
    ) -> List[ExperimentOutcome]:
        out: List[ExperimentOutcome] = []
        for index, config in enumerate(configs):
            outcome = self._run_one(config)
            if on_result is not None:
                on_result(index, config, outcome)
            out.append(outcome)
        return out

    def _run_one(self, config: ExperimentConfig) -> ExperimentOutcome:
        isolated = self.isolate or self.timeout_s is not None
        attempts = 0
        while True:
            attempts += 1
            self._beat("task_start")
            if isolated:
                outcome = _run_isolated(
                    config, self.timeout_s, attempts, beat=self.heartbeat
                )
            else:
                start = time.perf_counter()
                try:
                    result = run_experiment(config)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    self._beat("task_done")
                    return _failed_from_exception(
                        config, exc, attempts, time.perf_counter() - start
                    )
                self._beat("task_done")
                return result
            self._beat("task_done")
            retryable = (
                isinstance(outcome, FailedResult)
                and outcome.error_type in ("crash", "timeout")
            )
            if not retryable or attempts > self.retries:
                return outcome
            # The dead/hung child is being replaced with a fresh one.
            self._beat("worker_restart")
            time.sleep(self.backoff_s * attempts)


@dataclass(frozen=True)
class ParallelExecutor(Executor):
    """Fans a batch out over a process pool, surviving worker failures.

    ``jobs=0`` (the default) sizes the pool to the machine's CPU count.
    Single-config batches (and ``jobs=1``) fall back to an isolated
    :class:`SerialExecutor` with the same hardening parameters.

    Failure handling:

    * an experiment that *raises* resolves immediately to an ``error``
      :class:`FailedResult` -- no retry (deterministic), no impact on
      the rest of the batch;
    * a *worker death* breaks the pool; the phase ends, configs that
      were running are treated as crash suspects (one attempt burned),
      queued configs are innocent (no attempt burned), and a fresh
      pool runs the survivors;
    * an experiment exceeding ``timeout_s`` is recorded as a
      ``timeout`` and its worker slot is considered poisoned; the pool
      is rebuilt (and hung workers killed) at the end of the phase;
    * retries are bounded (``retries`` per config, with linear
      ``backoff_s`` between pool rebuilds); when the pool stops making
      progress entirely, the remaining configs degrade to isolated
      serial execution instead of aborting the batch.
    """

    jobs: int = 0
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.25
    heartbeat: Optional[HeartbeatHook] = field(
        default=None, compare=False, repr=False
    )

    def run_many(
        self,
        configs: Iterable[ExperimentConfig],
        on_result: Optional[OnResult] = None,
    ) -> List[ExperimentOutcome]:
        configs = list(configs)
        jobs = self.jobs if self.jobs > 0 else (os.cpu_count() or 1)
        workers = min(jobs, len(configs))
        if workers <= 1:
            # Nothing to overlap; run serially but keep the hardening
            # (process isolation means a crashing config still cannot
            # take down the orchestrating process).
            serial = SerialExecutor(
                timeout_s=self.timeout_s,
                retries=self.retries,
                backoff_s=self.backoff_s,
                isolate=True,
                heartbeat=self.heartbeat,
            )
            return serial.run_many(configs, on_result=on_result)

        results: List[Optional[ExperimentOutcome]] = [None] * len(configs)
        attempts = [0] * len(configs)

        def emit(index: int, outcome: ExperimentOutcome) -> None:
            results[index] = outcome
            if on_result is not None:
                on_result(index, configs[index], outcome)

        pending = list(range(len(configs)))
        rebuilds = 0
        max_rebuilds = (self.retries + 1) * len(configs) + 1
        while pending:
            retry = self._run_phase(pending, configs, attempts, workers, emit)
            if not retry:
                break
            rebuilds += 1
            # Survivors get a fresh pool (or isolated adjudication):
            # worker processes were lost, not just slow.
            self._beat("pool_rebuild")
            next_pending: List[int] = []
            for index in retry:
                if attempts[index] <= self.retries and rebuilds <= max_rebuilds:
                    next_pending.append(index)
                    continue
                # Pool attempts exhausted (or the pool keeps dying).
                # A broken pool cannot say *which* config killed the
                # worker, so co-scheduled innocents share the blame;
                # adjudicate in an isolated child process for a
                # definitive per-config verdict instead of declaring
                # a crash on circumstantial evidence.
                attempts[index] += 1
                emit(
                    index,
                    _run_isolated(
                        configs[index], self.timeout_s, attempts[index],
                        beat=self.heartbeat,
                    ),
                )
            if next_pending:
                time.sleep(min(self.backoff_s * rebuilds, 5.0))
            pending = next_pending
        # Every index is resolved by construction; the cast keeps the
        # public return type honest.
        return [outcome for outcome in results if outcome is not None]

    # -- one pool lifetime ---------------------------------------------
    def _run_phase(
        self,
        indices: List[int],
        configs: List[ExperimentConfig],
        attempts: List[int],
        workers: int,
        emit: Callable[[int, ExperimentOutcome], None],
    ) -> List[int]:
        """Run ``indices`` on one pool until done or the pool is lost.

        Final outcomes are streamed through ``emit`` the moment each
        future resolves — not batched per pool lifetime — so journal
        checkpoints land incrementally and a killed sweep keeps what
        already finished.  Returns the indices that should be re-run on
        a fresh pool (crash/timeout with attempts remaining, or
        never-started innocents).
        """
        from concurrent.futures import (
            FIRST_COMPLETED,
            ProcessPoolExecutor,
            wait,
        )
        from concurrent.futures.process import BrokenProcessPool

        resolved: Set[int] = set()
        retry: List[int] = []
        timed_out: Set[int] = set()
        broke = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            # FIFO submission: the pool starts the first ``workers``
            # tasks immediately and picks up the rest in order as
            # workers free up, which lets the watchdog attribute an
            # (approximate) start time to every running task.
            index_of = {}
            fut_of: Dict[int, object] = {}
            queued: List[int] = []
            started_at: Dict[int, float] = {}
            t0 = time.monotonic()
            for k, index in enumerate(indices):
                fut = pool.submit(run_experiment, configs[index])
                index_of[fut] = index
                fut_of[index] = fut
                if k < workers:
                    started_at[index] = t0
                else:
                    queued.append(index)
            queued.reverse()  # pop() from the tail = FIFO
            unfinished = set(index_of)
            lost_workers = 0
            # The bounded wait exists for the timeout watchdog and for
            # heartbeating; with neither armed, block until completion.
            armed = self.timeout_s is not None or self.heartbeat is not None
            while unfinished:
                tick = _WATCHDOG_TICK_S if armed else None
                done, _ = wait(unfinished, timeout=tick,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                self._beat("tick")
                for fut in done:
                    unfinished.discard(fut)
                    index = index_of[fut]
                    freed_slot = index in started_at
                    started_at.pop(index, None)
                    if index in timed_out:
                        # Late completion of an abandoned attempt; its
                        # outcome was already decided by the watchdog.
                        continue
                    try:
                        outcome: ExperimentOutcome = fut.result()
                    except BrokenProcessPool:
                        # Every future (started or queued) resolves
                        # with this once a worker dies; only configs
                        # that were actually *running* are suspects
                        # and burn an attempt.
                        if freed_slot:
                            attempts[index] += 1
                        broke = True
                        continue
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        # The experiment raised inside a healthy
                        # worker: deterministic, not retryable.
                        attempts[index] += 1
                        outcome = _failed_from_exception(
                            config=configs[index], exc=exc,
                            attempts=attempts[index],
                        )
                    else:
                        attempts[index] += 1
                    resolved.add(index)
                    emit(index, outcome)
                    self._beat("task_done")
                    if freed_slot and queued and not broke:
                        started_at[queued.pop()] = now
                if broke:
                    break
                if self.timeout_s is not None:
                    expired = [
                        i for i, t_start in started_at.items()
                        if now - t_start > self.timeout_s
                    ]
                    for index in expired:
                        attempts[index] += 1
                        timed_out.add(index)
                        started_at.pop(index)
                        # Abandon the future: its worker is wedged and
                        # will never complete it, so waiting on it
                        # would spin this loop forever.
                        unfinished.discard(fut_of[index])
                        lost_workers += 1
                        failure = FailedResult(
                            config=configs[index],
                            error_type="timeout",
                            message=(
                                f"exceeded {self.timeout_s:g}s wall clock; "
                                "worker abandoned"
                            ),
                            attempts=attempts[index],
                            wall_time_s=now - t0,
                        )
                        if attempts[index] > self.retries:
                            resolved.add(index)
                            emit(index, failure)
                        else:
                            retry.append(index)
                    if expired and lost_workers >= workers:
                        # Every worker is wedged; nothing queued will
                        # ever start on this pool.
                        break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            if broke or timed_out:
                _kill_pool_processes(pool)
        if broke or (timed_out and lost_workers >= workers):
            # Partition everything not yet decided: tasks that were
            # running are crash suspects (burn an attempt); queued
            # tasks are innocent bystanders (free re-run).  Nobody is
            # declared dead here -- the caller adjudicates configs
            # whose attempts are exhausted in an isolated child.
            for index in indices:
                if index in resolved or index in retry or index in timed_out:
                    continue
                if index in started_at:
                    attempts[index] += 1
                retry.append(index)
        return retry


def _kill_pool_processes(pool) -> None:
    """Best-effort SIGKILL of a broken/poisoned pool's workers.

    ``shutdown(wait=False)`` leaves hung workers running (and the
    interpreter joins them at exit); killing them directly is the only
    way to reclaim a wedged slot.  ``_processes`` is CPython
    implementation detail, hence the defensive access.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, AttributeError):  # pragma: no cover - defensive
            pass


def make_executor(
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Executor:
    """``jobs <= 1`` -> :class:`SerialExecutor`; otherwise a pool of ``jobs``.

    ``timeout_s``/``retries`` configure the hardening on either backend
    (a serial executor with a timeout runs experiments in watched child
    processes so the watchdog can reclaim hangs).
    """
    if jobs is None or jobs <= 1:
        return SerialExecutor(
            timeout_s=timeout_s,
            retries=retries,
            isolate=timeout_s is not None,
        )
    return ParallelExecutor(jobs=jobs, timeout_s=timeout_s, retries=retries)


def with_heartbeat(executor: Executor, hook: Optional[HeartbeatHook]) -> Executor:
    """Attach a heartbeat hook to an executor, preserving its behavior.

    The stock executors are frozen dataclasses, so attaching returns a
    ``dataclasses.replace`` copy (identical in every compared field --
    cache keys and equality are unaffected because ``heartbeat`` is
    excluded from comparison).  Third-party executors get the hook set
    as a plain attribute when possible; an executor that cannot accept
    one is returned unchanged -- heartbeating is strictly optional.
    """
    if hook is None:
        return executor
    if isinstance(executor, (SerialExecutor, ParallelExecutor)):
        return replace(executor, heartbeat=hook)
    try:
        executor.heartbeat = hook
    except (AttributeError, TypeError):
        pass
    return executor


