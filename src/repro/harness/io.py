"""Serialization: configs and results to/from JSON and CSV.

Batch studies want three things: declare a grid of experiments in a
file, run them reproducibly, and get machine-readable results out.

* :func:`config_to_dict` / :func:`config_from_dict` -- lossless
  round-trip of :class:`ExperimentConfig`;
* :func:`result_to_dict` -- flatten an :class:`ExperimentResult` (power
  buckets inlined) for JSON/CSV;
* :func:`result_to_cache_dict` / :func:`result_from_cache_dict` --
  lossless round-trip of a full :class:`ExperimentResult` (used by the
  persistent disk cache);
* :func:`save_results_json` / :func:`save_results_csv` -- persist a
  result list;
* :func:`load_batch` -- read a batch spec: either a JSON list of config
  objects or ``{"base": {...}, "grid": {axis: [values...]}}`` which
  expands to the cartesian product.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from typing import Dict, Iterable, List, Sequence

from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.power.accounting import PowerBreakdown

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "result_to_dict",
    "result_to_cache_dict",
    "result_from_cache_dict",
    "save_results_json",
    "save_results_csv",
    "load_batch",
    "RESULT_FIELDS",
]

#: Flat result columns, in CSV order.
RESULT_FIELDS: Sequence[str] = (
    "workload", "topology", "scale", "mechanism", "mechanism_overrides",
    "policy", "alpha",
    "seed", "fault_spec", "num_modules",
    "power_per_hmc_w", "network_power_w",
    "idle_io_w", "active_io_w", "logic_leak_w", "logic_dyn_w",
    "dram_leak_w", "dram_dyn_w",
    "idle_io_fraction", "io_fraction",
    "throughput_per_s", "avg_read_latency_ns", "max_read_latency_ns",
    "channel_utilization", "link_utilization", "avg_modules_traversed",
    "completed_reads", "completed_writes", "epochs", "violations",
    "events_processed",
    "link_retries", "retry_flits", "retry_time_ns",
    "vault_stalls", "fault_events",
)


def config_to_dict(config: ExperimentConfig) -> Dict:
    """ExperimentConfig -> plain dict (JSON-safe).

    The empty ``mechanism_overrides`` spec and the empty ``audit`` mode
    are omitted so serialized plain configs are byte-identical to those
    written before each field existed (pinned goldens, disk-cache
    payloads).
    """
    out = asdict(config)
    if not out["mechanism_overrides"]:
        del out["mechanism_overrides"]
    if not out["audit"]:
        del out["audit"]
    return out


def config_from_dict(data: Dict) -> ExperimentConfig:
    """Plain dict -> ExperimentConfig (unknown keys rejected)."""
    allowed = set(ExperimentConfig.__dataclass_fields__)
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    return ExperimentConfig(**data)


def result_to_dict(result: ExperimentResult) -> Dict:
    """Flatten a result into the RESULT_FIELDS columns."""
    cfg = result.config
    watts = result.breakdown.watts
    return {
        "workload": cfg.workload,
        "topology": cfg.topology,
        "scale": cfg.scale,
        "mechanism": cfg.mechanism,
        "mechanism_overrides": cfg.mechanism_overrides,
        "policy": cfg.policy,
        "alpha": cfg.alpha,
        "seed": cfg.seed,
        "fault_spec": cfg.fault_spec,
        "num_modules": result.num_modules,
        "power_per_hmc_w": result.power_per_hmc_w,
        "network_power_w": result.network_power_w,
        "idle_io_w": watts["idle_io"],
        "active_io_w": watts["active_io"],
        "logic_leak_w": watts["logic_leak"],
        "logic_dyn_w": watts["logic_dyn"],
        "dram_leak_w": watts["dram_leak"],
        "dram_dyn_w": watts["dram_dyn"],
        "idle_io_fraction": result.idle_io_fraction,
        "io_fraction": result.breakdown.io_fraction,
        "throughput_per_s": result.throughput_per_s,
        "avg_read_latency_ns": result.avg_read_latency_ns,
        "max_read_latency_ns": result.max_read_latency_ns,
        "channel_utilization": result.channel_utilization,
        "link_utilization": result.link_utilization,
        "avg_modules_traversed": result.avg_modules_traversed,
        "completed_reads": result.completed_reads,
        "completed_writes": result.completed_writes,
        "epochs": result.epochs,
        "violations": result.violations,
        "events_processed": result.events_processed,
        "link_retries": result.link_retries,
        "retry_flits": result.retry_flits,
        "retry_time_ns": result.retry_time_ns,
        "vault_stalls": result.vault_stalls,
        "fault_events": result.fault_events,
    }


#: Scalar ExperimentResult fields copied verbatim by the cache round-trip.
_CACHE_SCALARS: Sequence[str] = (
    "num_modules",
    "throughput_per_s",
    "avg_read_latency_ns",
    "max_read_latency_ns",
    "channel_utilization",
    "link_utilization",
    "avg_modules_traversed",
    "completed_reads",
    "completed_writes",
    "violations",
    "epochs",
    "trace_events",
    "link_retries",
    "retry_flits",
    "retry_time_ns",
    "vault_stalls",
    "fault_events",
    "events_processed",
    "wall_time_s",
)


def result_to_cache_dict(result: ExperimentResult) -> Dict:
    """Full, lossless ExperimentResult -> plain dict (JSON-safe).

    Unlike :func:`result_to_dict` (a flat row for CSV/analysis), this
    keeps everything needed to reconstruct the object: the complete
    config, the power-bucket dict, and link-hours (tuple keys encoded
    as ``[label, width, hours]`` triples).
    """
    out = {
        "config": config_to_dict(result.config),
        "watts": dict(result.breakdown.watts),
        "link_hours": (
            None
            if result.link_hours is None
            else [[label, width, hours]
                  for (label, width), hours in sorted(result.link_hours.items())]
        ),
    }
    for name in _CACHE_SCALARS:
        out[name] = getattr(result, name)
    return out


def result_from_cache_dict(data: Dict) -> ExperimentResult:
    """Inverse of :func:`result_to_cache_dict`."""
    link_hours = None
    if data.get("link_hours") is not None:
        link_hours = {
            (label, int(width)): hours for label, width, hours in data["link_hours"]
        }
    return ExperimentResult(
        config=config_from_dict(data["config"]),
        breakdown=PowerBreakdown(watts=dict(data["watts"])),
        link_hours=link_hours,
        **{name: data[name] for name in _CACHE_SCALARS},
    )


def save_results_json(path: str, results: Iterable[ExperimentResult]) -> int:
    """Write results (with their configs) as a JSON list; returns count."""
    payload = [
        {"config": config_to_dict(r.config), "metrics": result_to_dict(r)}
        for r in results
    ]
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return len(payload)


def save_results_csv(path: str, results: Iterable[ExperimentResult]) -> int:
    """Write flat result rows as CSV; returns the row count."""
    rows = [result_to_dict(r) for r in results]
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(RESULT_FIELDS))
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def load_batch(path: str) -> List[ExperimentConfig]:
    """Read a batch spec file into a config list.

    Accepted shapes::

        [ {config...}, {config...} ]                 # explicit list
        { "base": {config...}, "grid": {             # cartesian grid
            "workload": ["lu.D", "sp.D"],
            "mechanism": ["VWL", "ROO"],
            "alpha": [0.025, 0.05] } }
    """
    from repro.harness.sweep import grid_configs

    with open(path) as fh:
        spec = json.load(fh)
    if isinstance(spec, list):
        return [config_from_dict(d) for d in spec]
    if not isinstance(spec, dict) or "base" not in spec:
        raise ValueError("batch spec must be a list or {'base':..., 'grid':...}")
    base = config_from_dict(spec["base"])
    grid = spec.get("grid", {})
    allowed_axes = {"workload", "topology", "scale", "mechanism", "policy", "alpha"}
    unknown = set(grid) - allowed_axes
    if unknown:
        raise ValueError(f"unsupported grid axes: {sorted(unknown)}")
    return grid_configs(
        base,
        workloads=grid.get("workload", ()),
        topologies=grid.get("topology", ()),
        scales=grid.get("scale", ()),
        mechanisms=grid.get("mechanism", ()),
        policies=grid.get("policy", ()),
        alphas=grid.get("alpha", ()),
    )
