"""Measurement helpers: utilizations, hops, link-hours, degradation.

These compute the derived quantities the paper's figures plot from raw
simulation state:

* **channel utilization** (Figure 9): bytes moved over the processor's
  full link divided by its two-directional capacity;
* **link utilization** (Figure 9): mean busy fraction across all links;
* **modules traversed per access** (Figure 6);
* **link-hours by utilization and width mode** (Figure 13);
* **performance degradation** between a managed run and its full-power
  baseline (Figures 12/17/18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.network.links import LinkController
from repro.network.network import MemoryNetwork
from repro.network.packets import FLIT_BYTES

__all__ = [
    "channel_utilization",
    "avg_link_utilization",
    "avg_modules_traversed",
    "LinkHourCollector",
    "UTILIZATION_BUCKETS",
    "performance_degradation",
]

#: Per-direction channel bandwidth: 16 lanes x 12.5 Gbps = 25 bytes/ns.
_CHANNEL_BYTES_PER_NS: float = 25.0

#: Figure 13's utilization buckets: (label, low, high].
UTILIZATION_BUCKETS: Tuple[Tuple[str, float, float], ...] = (
    ("0-1%", 0.00, 0.01),
    ("1-5%", 0.01, 0.05),
    ("5-10%", 0.05, 0.10),
    ("10-20%", 0.10, 0.20),
    ("20-100%", 0.20, 1.01),
)


def channel_utilization(network: MemoryNetwork, window_ns: float) -> float:
    """Bandwidth utilization of the processor's full link (Figure 9)."""
    if window_ns <= 0:
        return 0.0
    flits = network.channel_req.flits_tx + network.channel_resp.flits_tx
    moved = flits * FLIT_BYTES
    capacity = 2 * _CHANNEL_BYTES_PER_NS * window_ns
    return moved / capacity


def avg_link_utilization(network: MemoryNetwork, window_ns: float) -> float:
    """Mean busy fraction over all unidirectional links (Figure 9)."""
    if window_ns <= 0:
        return 0.0
    links = network.all_links()
    return sum(l.busy_time_ns for l in links) / (len(links) * window_ns)


def avg_modules_traversed(network: MemoryNetwork) -> float:
    """Average modules traversed per memory access (Figure 6)."""
    total = network.injected_reads + network.injected_writes
    if not total:
        return 0.0
    return network.sum_traversals / total


def bucket_of(utilization: float) -> str:
    """Figure 13 bucket label for a link utilization value."""
    for label, low, high in UTILIZATION_BUCKETS:
        if low <= utilization < high:
            return label
    return UTILIZATION_BUCKETS[-1][0]


@dataclass
class LinkHourCollector:
    """Accumulates Figure 13's (utilization-bucket x width-mode) hours.

    Install as a management policy's ``epoch_observer``; at every epoch
    boundary each link contributes its per-width-mode time to the bucket
    matching its utilization that epoch.
    """

    #: hours[(bucket_label, width_index)] -> accumulated link-time (ns).
    hours: Dict[Tuple[str, int], float] = field(default_factory=dict)
    total_ns: float = 0.0

    def __call__(self, links: Iterable[LinkController], epoch_ns: float) -> None:
        for link in links:
            label = bucket_of(link.current_utilization(epoch_ns))
            for width_idx, t in enumerate(link.ep_mode_time_ns):
                if t <= 0:
                    continue
                key = (label, width_idx)
                self.hours[key] = self.hours.get(key, 0.0) + t
                self.total_ns += t

    def fractions(self) -> Dict[Tuple[str, int], float]:
        """Normalized link-hour fractions (the y-axis of Figure 13)."""
        if self.total_ns <= 0:
            return {}
        return {k: v / self.total_ns for k, v in self.hours.items()}


def performance_degradation(baseline_throughput: float, managed_throughput: float) -> float:
    """Throughput loss of a managed run vs. its full-power baseline.

    Positive values mean the managed run was slower; small negative
    values can occur from simulation noise and are reported as-is.
    """
    if baseline_throughput <= 0:
        return 0.0
    return (baseline_throughput - managed_throughput) / baseline_throughput
