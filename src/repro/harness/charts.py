"""Terminal charts: render figure series without a plotting stack.

The paper's artifacts are bar charts, stacked bars, and line plots.
These helpers draw them as fixed-width ASCII so the CLI and examples can
show *shapes*, not just tables, in any terminal and in CI logs.

All renderers return strings; nothing here prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["bar_chart", "stacked_bar_chart", "line_chart", "histogram"]

_BLOCK = "█"
_PARTIALS = " ▏▎▍▌▋▊▉"
_STACK_GLYPHS = "█▓▒░▞▚▙▟"


def _scale(value: float, vmax: float, width: int) -> float:
    if vmax <= 0:
        return 0.0
    return max(0.0, min(1.0, value / vmax)) * width


def _bar(value: float, vmax: float, width: int) -> str:
    cells = _scale(value, vmax, width)
    full = int(cells)
    frac = cells - full
    partial = _PARTIALS[int(frac * (len(_PARTIALS) - 1))] if full < width else ""
    return (_BLOCK * full + partial).ljust(width)


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
    vmax: Optional[float] = None,
) -> str:
    """Horizontal bar chart: one ``(label, value)`` per row."""
    if not items:
        return title or ""
    vmax = vmax if vmax is not None else max(v for _l, v in items)
    label_w = max(len(l) for l, _v in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in items:
        lines.append(
            f"{label.rjust(label_w)} |{_bar(value, vmax, width)}| "
            f"{value:.3g}{unit}"
        )
    return "\n".join(lines)


def stacked_bar_chart(
    items: Sequence[Tuple[str, Dict[str, float]]],
    categories: Sequence[str],
    width: int = 48,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal stacked bars (the Figure 5 power-breakdown shape).

    ``items`` is ``(label, {category: value})``; stack order and glyphs
    follow ``categories``.
    """
    if not items:
        return title or ""
    totals = [sum(vals.get(c, 0.0) for c in categories) for _l, vals in items]
    vmax = max(totals) if totals else 1.0
    label_w = max(len(l) for l, _v in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{_STACK_GLYPHS[i % len(_STACK_GLYPHS)]}={c}" for i, c in enumerate(categories)
    )
    lines.append(legend)
    for (label, vals), total in zip(items, totals):
        bar = []
        for i, category in enumerate(categories):
            cells = int(round(_scale(vals.get(category, 0.0), vmax, width)))
            bar.append(_STACK_GLYPHS[i % len(_STACK_GLYPHS)] * cells)
        body = "".join(bar)[:width].ljust(width)
        lines.append(f"{label.rjust(label_w)} |{body}| {total:.3g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series is ``(name, [(x, y), ...])``; points are marked with the
    series' index digit, collisions with ``*``.
    """
    points = [(x, y) for _n, pts in series for x, y in pts]
    if not points:
        return title or ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (_name, pts) in enumerate(series):
        mark = str(idx % 10)
        for x, y in pts:
            col = int((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = "*" if grid[row][col] not in (" ", mark) else mark
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"y: {y0:.3g} .. {y1:.3g}")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: {x0:.3g} .. {x1:.3g}")
    lines.append("  ".join(f"{i}={name}" for i, (name, _p) in enumerate(series)))
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Simple binned histogram of a value list."""
    if not values:
        return title or ""
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    items = []
    for i, count in enumerate(counts):
        b0 = lo + (hi - lo) * i / bins
        b1 = lo + (hi - lo) * (i + 1) / bins
        items.append((f"[{b0:.3g},{b1:.3g})", float(count)))
    return bar_chart(items, width=width, title=title)
