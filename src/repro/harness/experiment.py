"""Single-experiment runner: one (workload, topology, mechanism, policy).

:func:`run_experiment` assembles a full simulation from an
:class:`ExperimentConfig` -- topology sized to the workload footprint,
mechanism, management policy, closed-loop traffic -- runs it for the
configured window, and returns an :class:`ExperimentResult` with every
quantity the paper's figures need.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.mechanisms import canonical_mechanism
from repro.core.overrides import canonical_override_spec
from repro.core.policy import EPOCH_NS, POLICIES, POLICY_NAMES
from repro.harness.builder import SimulationBuilder
from repro.harness.metrics import (
    avg_link_utilization,
    avg_modules_traversed,
    channel_utilization,
)
from repro.power.accounting import PowerBreakdown
from repro.workloads.mapping import MAPPINGS

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "POLICY_NAMES",
    "OBSERVABILITY_FIELDS",
]

#: Config fields that only control what is *observed*, not what is
#: simulated.  They are excluded from :meth:`ExperimentConfig.cache_key`
#: so a run collected with extra observability can stand in for the
#: plain run (and vice versa, subject to the sufficiency check in
#: :class:`~repro.harness.sweep.SweepRunner`).
OBSERVABILITY_FIELDS: Tuple[str, ...] = (
    "collect_link_hours",
    "trace_path",
    "trace_format",
    "trace_categories",
    "metrics_path",
    "audit",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one simulation run."""

    workload: str
    topology: str = "daisychain"
    scale: str = "small"
    mechanism: str = "FP"
    policy: str = "none"
    alpha: float = 0.05
    window_ns: float = 500_000.0
    epoch_ns: float = EPOCH_NS
    seed: int = 1
    wake_ns: float = 14.0
    mapping: str = "contiguous"
    #: Per-link mechanism override spec (``""`` keeps the network
    #: homogeneous).  A comma-separated clause list parsed by
    #: :func:`repro.core.overrides.parse_mechanism_overrides`, e.g.
    #: ``"depth>=3:ROO+VWL,link:m2-up:FP"``; later clauses win.
    #: Canonicalized on construction and *included* in :meth:`cache_key`
    #: when non-empty (overrides change what is simulated); the empty
    #: spec is excluded so homogeneous configs keep their historical
    #: keys.
    mechanism_overrides: str = ""
    #: Fault-injection spec (``""`` disables faults entirely).  A
    #: comma-separated ``key=value`` list parsed by
    #: :func:`repro.faults.parse_fault_spec`; *included* in
    #: :meth:`cache_key` because faults change what is simulated.
    fault_spec: str = ""
    collect_link_hours: bool = False
    #: Observability (excluded from :meth:`cache_key`): structured trace
    #: destination/format/categories and per-epoch metrics JSON path.
    #: ``trace_categories`` is a comma list (see
    #: :func:`repro.obs.parse_categories`); empty string means defaults.
    trace_path: Optional[str] = None
    trace_format: str = "jsonl"
    trace_categories: str = ""
    metrics_path: Optional[str] = None
    #: Runtime invariant auditing (excluded from :meth:`cache_key` --
    #: auditing observes, it never changes what is simulated).  ``""``
    #: is off; ``"warn"`` prints violations to stderr; ``"strict"``
    #: raises :class:`repro.validation.AuditViolationError`.  See
    #: docs/validation.md.
    audit: str = ""

    def __post_init__(self) -> None:
        # Canonicalize names through the registries so "fp", "Fp", and
        # "FP" (and aliases like "ROO+VWL") are the same config and hash
        # to the same cache key everywhere.  Unknown names raise the
        # registry's uniform ValueError.
        mechanism = canonical_mechanism(self.mechanism)
        if mechanism != self.mechanism:
            object.__setattr__(self, "mechanism", mechanism)
        POLICIES.canonical(self.policy)
        mapping = MAPPINGS.canonical(self.mapping)
        if mapping != self.mapping:
            object.__setattr__(self, "mapping", mapping)
        overrides = canonical_override_spec(self.mechanism_overrides)
        if overrides != self.mechanism_overrides:
            object.__setattr__(self, "mechanism_overrides", overrides)
        if self.scale not in ("small", "big"):
            raise ValueError(f"scale must be 'small' or 'big', got {self.scale!r}")
        if self.window_ns <= 0:
            raise ValueError("window must be positive")
        from repro.obs import TRACE_FORMATS, parse_categories

        if self.trace_format not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {self.trace_format!r}; "
                f"expected one of {TRACE_FORMATS}"
            )
        # Fail fast on bad category specs even when tracing is off.
        parse_categories(self.trace_categories or None)
        if self.audit not in ("", "warn", "strict"):
            raise ValueError(
                f"audit must be '', 'warn', or 'strict', got {self.audit!r}"
            )
        if self.fault_spec:
            # Fail fast on bad fault specs too (FaultSpecError is a
            # ValueError, matching the other validation failures here).
            from repro.faults import parse_fault_spec

            parse_fault_spec(self.fault_spec)

    def replace(self, **changes) -> "ExperimentConfig":
        """A copy of this config with the given fields replaced."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)

    def baseline(self) -> "ExperimentConfig":
        """The matching full-power run (same traffic, no management).

        ``alpha`` and ``wake_ns`` are reset to the class defaults: with
        no policy there is no budget to apply and with no low-power
        mechanism there is nothing to wake, so distinct values would
        only split the cache key across identical simulations.

        ``fault_spec`` is *kept*: faults are environment, not
        management, so a faulted run's baseline sees the same faults.
        """
        return self.replace(
            mechanism="FP",
            mechanism_overrides="",
            policy="none",
            alpha=0.05,
            wake_ns=14.0,
            collect_link_hours=False,
            trace_path=None,
            metrics_path=None,
            audit="",
        )

    def cache_key(self) -> str:
        """Stable content hash of every simulation-affecting field.

        The key is shared by the in-memory sweep cache and the on-disk
        result cache so the same logical run is never simulated twice.
        Observability-only fields (:data:`OBSERVABILITY_FIELDS`) are
        excluded; field order does not matter (sorted before hashing).
        """
        payload = {
            name: getattr(self, name)
            for name in sorted(self.__dataclass_fields__)
            if name not in OBSERVABILITY_FIELDS
        }
        if not payload["mechanism_overrides"]:
            # Homogeneous configs hash exactly as they did before the
            # field existed, keeping pinned goldens and disk caches
            # valid.
            del payload["mechanism_overrides"]
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


@dataclass
class ExperimentResult:
    """Measured outputs of one run."""

    config: ExperimentConfig
    num_modules: int
    breakdown: PowerBreakdown
    throughput_per_s: float
    avg_read_latency_ns: float
    max_read_latency_ns: float
    channel_utilization: float
    link_utilization: float
    avg_modules_traversed: float
    completed_reads: int
    completed_writes: int
    violations: int = 0
    epochs: int = 0
    #: Structured trace events emitted (0 when tracing is disabled).
    trace_events: int = 0
    #: Fault injection (all 0 when ``fault_spec`` is empty): CRC
    #: retransmissions across all links, the flits they re-sent, the
    #: wire time spent on retry turnaround + replays, delayed DRAM
    #: accesses, and the number of scheduled fault windows.
    link_retries: int = 0
    retry_flits: int = 0
    retry_time_ns: float = 0.0
    vault_stalls: int = 0
    fault_events: int = 0
    link_hours: Optional[Dict[Tuple[str, int], float]] = None
    #: Run instrumentation: simulator events executed (deterministic)
    #: and wall-clock seconds spent building + running the simulation
    #: (machine-dependent; excluded from the flat result row).
    events_processed: int = 0
    wall_time_s: float = 0.0

    @property
    def power_per_hmc_w(self) -> float:
        """Average power per HMC (Figure 5 / 11 y-axis)."""
        return self.breakdown.total_w

    @property
    def network_power_w(self) -> float:
        """Total network power."""
        return self.breakdown.total_w * self.num_modules

    @property
    def io_power_w(self) -> float:
        """I/O power per HMC."""
        return self.breakdown.io_w

    @property
    def idle_io_fraction(self) -> float:
        """Idle I/O as a fraction of total network power (Figure 8)."""
        return self.breakdown.idle_io_fraction


def run_experiment(config: ExperimentConfig, policy_factory=None) -> ExperimentResult:
    """Build, run, and measure one experiment.

    ``policy_factory``, if given, overrides ``config.policy``: it is
    called as ``policy_factory(network, alpha, epoch_ns)`` and must
    return an object with a ``start()`` method (used by the ablation
    benchmarks to run modified network-aware variants).

    Assembly lives in :class:`~repro.harness.builder.SimulationBuilder`;
    this function runs the assembled simulation and measures it.
    """
    simulation = (
        SimulationBuilder(config).with_policy_factory(policy_factory).build()
    )
    simulation.run()

    sim = simulation.sim
    network = simulation.network
    policy = simulation.policy
    fault_plan = simulation.fault_plan

    trace_events = 0
    if simulation.tracer is not None:
        tracer = simulation.tracer
        tracer.emit(
            config.window_ns,
            "meta",
            "trace.end",
            events=tracer.events_emitted,
            sim_events=sim.events_processed,
        )
        trace_events = tracer.events_emitted
        tracer.close()
    if simulation.metrics is not None:
        simulation.metrics.write_json(config.metrics_path)

    link_retries = 0
    retry_flits = 0
    retry_time_ns = 0.0
    vault_stalls = 0
    fault_events = 0
    if fault_plan is not None:
        fault_events = len(fault_plan.events)
        for link in network.all_links():
            link_retries += link.retries
            retry_flits += link.retry_flits
            retry_time_ns += link.retry_time_ns
        if network.vault_faults is not None:
            vault_stalls = network.vault_faults.stalls

    breakdown = PowerBreakdown.from_ledgers(
        (m.ledger for m in network.modules),
        config.window_ns,
        simulation.topology.num_modules,
    )
    result = ExperimentResult(
        config=config,
        num_modules=simulation.topology.num_modules,
        breakdown=breakdown,
        throughput_per_s=simulation.workload.throughput_per_s(config.window_ns),
        avg_read_latency_ns=network.avg_read_latency_ns,
        max_read_latency_ns=network.max_read_latency_ns,
        channel_utilization=channel_utilization(network, config.window_ns),
        link_utilization=avg_link_utilization(network, config.window_ns),
        avg_modules_traversed=avg_modules_traversed(network),
        completed_reads=network.completed_reads,
        completed_writes=network.completed_writes,
        violations=getattr(policy, "violations", 0),
        epochs=getattr(policy, "epochs_run", 0),
        trace_events=trace_events,
        link_retries=link_retries,
        retry_flits=retry_flits,
        retry_time_ns=retry_time_ns,
        vault_stalls=vault_stalls,
        fault_events=fault_events,
        link_hours=(
            simulation.collector.hours if simulation.collector is not None else None
        ),
        events_processed=sim.events_processed,
        wall_time_s=time.perf_counter() - simulation.build_started,
    )
    if config.audit:
        # Imported lazily: unaudited runs (the common case, and every
        # hot perf path) never pay for the validation package.
        from repro.validation.audit import finalize_audit

        finalize_audit(simulation, result=result, mode=config.audit)
    return result
