"""Multi-channel memory systems (the paper's explicit future work).

Section III-C: "Since different memory channels are physically
independent from one another and bandwidth utilization is often
uniformly distributed across channels by interleaving adjacent memory
across channels, we evaluate a single HMC channel with little loss of
generality; we leave the exploration of power implications of any
potential inter-channel interactions to future work."

This module implements exactly that model: a processor with ``K``
channels, each a fully independent :class:`MemoryNetwork` running the
same workload profile with a distinct seed (channel-interleaved traffic
is statistically identical across channels).  It aggregates power and
throughput and reports per-channel variation, which quantifies how much
a single-channel study under- or over-estimates a full system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.power.accounting import PowerBreakdown

__all__ = ["MultiChannelResult", "run_multichannel"]


@dataclass
class MultiChannelResult:
    """Aggregated outcome of ``K`` independent channel simulations."""

    channels: List[ExperimentResult]

    @property
    def num_channels(self) -> int:
        """Number of simulated channels."""
        return len(self.channels)

    @property
    def total_network_power_w(self) -> float:
        """System-wide memory network power across all channels."""
        return sum(c.network_power_w for c in self.channels)

    @property
    def total_throughput_per_s(self) -> float:
        """System-wide completed accesses per second."""
        return sum(c.throughput_per_s for c in self.channels)

    @property
    def total_modules(self) -> int:
        """HMC count across all channels."""
        return sum(c.num_modules for c in self.channels)

    @property
    def avg_power_per_hmc_w(self) -> float:
        """Average per-HMC power over the whole system."""
        if not self.total_modules:
            return 0.0
        return self.total_network_power_w / self.total_modules

    @property
    def idle_io_fraction(self) -> float:
        """System-wide idle-I/O share of network power."""
        total = self.total_network_power_w
        if total <= 0:
            return 0.0
        idle = sum(
            c.breakdown.watts["idle_io"] * c.num_modules for c in self.channels
        )
        return idle / total

    def channel_power_spread(self) -> float:
        """(max - min) / mean of per-channel power: inter-channel skew.

        Small values justify the paper's single-channel methodology.
        """
        powers = [c.network_power_w for c in self.channels]
        mean = sum(powers) / len(powers)
        if mean <= 0:
            return 0.0
        return (max(powers) - min(powers)) / mean


def run_multichannel(
    config: ExperimentConfig, channels: int = 4, seed_stride: int = 101
) -> MultiChannelResult:
    """Simulate ``channels`` independent channels of ``config``.

    Each channel runs the same configuration with seed
    ``config.seed + i * seed_stride`` -- channel-interleaved traffic
    makes the channels statistically identical but not bit-identical.
    """
    if channels < 1:
        raise ValueError("need at least one channel")
    results = [
        run_experiment(config.replace(seed=config.seed + i * seed_stride))
        for i in range(channels)
    ]
    return MultiChannelResult(channels=results)
