"""Experiment harness: runners, sweeps, metrics, figure reproduction."""

from repro.harness.builder import Simulation, SimulationBuilder, build_network
from repro.harness.diskcache import DiskCache, SCHEMA_VERSION, default_cache_dir
from repro.harness.executor import (
    Executor,
    ExperimentOutcome,
    FailedResult,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    OBSERVABILITY_FIELDS,
    POLICY_NAMES,
    run_experiment,
)
from repro.harness.figures import FIGURE_CONFIGS, RunSettings, figure_configs
from repro.harness.io import (
    config_from_dict,
    config_to_dict,
    load_batch,
    result_from_cache_dict,
    result_to_cache_dict,
    result_to_dict,
    save_results_csv,
    save_results_json,
)
from repro.harness.metrics import (
    LinkHourCollector,
    UTILIZATION_BUCKETS,
    avg_link_utilization,
    avg_modules_traversed,
    channel_utilization,
    performance_degradation,
)
from repro.harness.charts import bar_chart, histogram, line_chart, stacked_bar_chart
from repro.harness.multichannel import MultiChannelResult, run_multichannel
from repro.harness.pareto import (
    DEFAULT_ALPHAS,
    TradeoffPoint,
    alpha_for_degradation,
    pareto_frontier,
    sweep_alpha,
)
from repro.harness.report import format_percent, format_table, format_watts, print_table
from repro.harness.stats import LatencyTracker, summarize
from repro.harness.journal import SweepJournal
from repro.harness.sweep import ExperimentFailedError, SweepRunner, grid_configs

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "Simulation",
    "SimulationBuilder",
    "build_network",
    "POLICY_NAMES",
    "OBSERVABILITY_FIELDS",
    "RunSettings",
    "FIGURE_CONFIGS",
    "figure_configs",
    "SweepRunner",
    "grid_configs",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "FailedResult",
    "ExperimentOutcome",
    "ExperimentFailedError",
    "SweepJournal",
    "DiskCache",
    "SCHEMA_VERSION",
    "default_cache_dir",
    "channel_utilization",
    "avg_link_utilization",
    "avg_modules_traversed",
    "performance_degradation",
    "LinkHourCollector",
    "UTILIZATION_BUCKETS",
    "format_table",
    "format_percent",
    "format_watts",
    "print_table",
    "bar_chart",
    "stacked_bar_chart",
    "line_chart",
    "histogram",
    "MultiChannelResult",
    "run_multichannel",
    "TradeoffPoint",
    "sweep_alpha",
    "pareto_frontier",
    "alpha_for_degradation",
    "DEFAULT_ALPHAS",
    "LatencyTracker",
    "summarize",
    "config_to_dict",
    "config_from_dict",
    "result_to_dict",
    "result_to_cache_dict",
    "result_from_cache_dict",
    "save_results_json",
    "save_results_csv",
    "load_batch",
]
