"""Per-figure reproduction logic: one function per paper artifact.

Each ``figN_*`` function assembles the runs that artifact needs (via a
shared, caching :class:`~repro.harness.sweep.SweepRunner`) and returns
structured rows mirroring the paper's plot.  The benchmark suite calls
these and prints the rows; EXPERIMENTS.md records the comparison with
the published numbers.

Simulated windows and workload subsets are controlled by
:class:`RunSettings`; the defaults are sized so the full benchmark suite
finishes in minutes on a laptop.  Set ``REPRO_BENCH_FULL=1`` for the
paper's complete 14-workload grids (slower but more faithful).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.experiment import ExperimentConfig
from repro.harness.metrics import UTILIZATION_BUCKETS, performance_degradation
from repro.harness.sweep import SweepRunner
from repro.network.topology import TOPOLOGY_NAMES
from repro.workloads.profiles import WORKLOAD_NAMES, get_profile

__all__ = [
    "RunSettings",
    "FIGURE_CONFIGS",
    "figure_configs",
    "fig4_workload_cdfs",
    "fig5_power_breakdown",
    "fig6_modules_traversed",
    "fig8_idle_io_fraction",
    "fig9_utilization",
    "fig11_unaware_power",
    "fig12_unaware_performance",
    "fig13_link_hours",
    "fig15_aware_vs_unaware",
    "fig16_per_workload_savings",
    "fig17_aware_performance",
    "fig18_dvfs_sensitivity",
    "sec7_static_comparison",
    "hetero_depth",
    "HETERO_DEPTH_SERIES",
]

#: The subset used for heavy grids when REPRO_BENCH_FULL is unset;
#: chosen to span the utilization range (sp.D lowest, mixB highest),
#: footprints (lu.D small, is.D largest), and both workload families.
_FAST_WORKLOADS: Tuple[str, ...] = ("lu.D", "sp.D", "is.D", "mixB")


@dataclass(frozen=True)
class RunSettings:
    """Scale knobs shared by every figure function.

    The default 25 us epochs over a 500 us window give the management
    policies ~20 epochs to converge -- short windows with the paper's
    100 us epochs leave the cumulative Equation 1 budgets mostly
    unconverged and understate the achievable savings.
    """

    workloads: Tuple[str, ...] = _FAST_WORKLOADS
    topologies: Tuple[str, ...] = TOPOLOGY_NAMES
    window_ns: float = 400_000.0
    epoch_ns: float = 20_000.0
    seed: int = 1

    @classmethod
    def from_env(cls) -> "RunSettings":
        """Default settings, upgraded to the full grid when
        ``REPRO_BENCH_FULL=1`` is set in the environment."""
        if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
            return cls(workloads=WORKLOAD_NAMES, window_ns=1_000_000.0, epoch_ns=50_000.0)
        return cls()

    def base_config(self, **overrides) -> ExperimentConfig:
        """An ExperimentConfig seeded with these settings."""
        defaults = dict(
            workload=self.workloads[0],
            window_ns=self.window_ns,
            epoch_ns=self.epoch_ns,
            seed=self.seed,
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)


# ----------------------------------------------------------------------
# Figure 4 -- workload access CDFs (no simulation required)
# ----------------------------------------------------------------------
def fig4_workload_cdfs(
    workloads: Sequence[str] = WORKLOAD_NAMES, step_gb: float = 2.0
) -> List[Tuple[str, List[Tuple[float, float]]]]:
    """Cumulative access fraction by address range, per workload."""
    out = []
    for name in workloads:
        profile = get_profile(name)
        xs: List[Tuple[float, float]] = []
        gb = 0.0
        while gb < profile.footprint_gb + step_gb:
            point = min(gb, profile.footprint_gb)
            xs.append((point, profile.access_fraction_below(point)))
            if point >= profile.footprint_gb:
                break
            gb += step_gb
        out.append((name, xs))
    return out


# ----------------------------------------------------------------------
# Figures 5 / 6 / 8 / 9 -- full-power characterization
# ----------------------------------------------------------------------
def _fp_config(settings: RunSettings, workload: str, topology: str, scale: str) -> ExperimentConfig:
    return settings.base_config(
        workload=workload, topology=topology, scale=scale, mechanism="FP", policy="none"
    )


def fig5_power_breakdown(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, Dict[str, float]]]:
    """Per-HMC power breakdown averaged over workloads.

    Rows of (scale, topology, {category: watts}), matching the Figure 5
    bars (plus a per-scale average row).
    """
    rows: List[Tuple[str, str, Dict[str, float]]] = []
    for scale in ("small", "big"):
        per_topology: List[Dict[str, float]] = []
        for topology in settings.topologies:
            acc: Dict[str, float] = {}
            for workload in settings.workloads:
                res = runner.run(_fp_config(settings, workload, topology, scale))
                for cat, w in res.breakdown.watts.items():
                    acc[cat] = acc.get(cat, 0.0) + w
            n = len(settings.workloads)
            avg = {cat: w / n for cat, w in acc.items()}
            per_topology.append(avg)
            rows.append((scale, topology, avg))
        overall = {
            cat: sum(t[cat] for t in per_topology) / len(per_topology)
            for cat in per_topology[0]
        }
        rows.append((scale, "avg", overall))
    return rows


def fig6_modules_traversed(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, str, float]]:
    """(scale, topology, workload, avg modules traversed per access)."""
    rows = []
    for scale in ("small", "big"):
        for topology in settings.topologies:
            for workload in settings.workloads:
                res = runner.run(_fp_config(settings, workload, topology, scale))
                rows.append((scale, topology, workload, res.avg_modules_traversed))
    return rows


def fig8_idle_io_fraction(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, str, float]]:
    """(scale, topology, workload, idle-I/O fraction of network power)."""
    rows = []
    for scale in ("small", "big"):
        for topology in settings.topologies:
            for workload in settings.workloads:
                res = runner.run(_fp_config(settings, workload, topology, scale))
                rows.append((scale, topology, workload, res.idle_io_fraction))
    return rows


def fig9_utilization(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, str, float, float]]:
    """(scale, topology, workload, channel util, avg link util)."""
    rows = []
    for scale in ("small", "big"):
        for topology in settings.topologies:
            for workload in settings.workloads:
                res = runner.run(_fp_config(settings, workload, topology, scale))
                rows.append(
                    (scale, topology, workload, res.channel_utilization, res.link_utilization)
                )
    return rows


# ----------------------------------------------------------------------
# Figures 11 / 12 -- network-unaware management
# ----------------------------------------------------------------------
_UNAWARE_MECHS: Tuple[str, ...] = ("VWL", "ROO", "VWL+ROO")
_ALPHAS: Tuple[float, ...] = (0.025, 0.05)


def _managed_config(
    settings: RunSettings,
    workload: str,
    topology: str,
    scale: str,
    mechanism: str,
    policy: str,
    alpha: float,
    wake_ns: float = 14.0,
) -> ExperimentConfig:
    return settings.base_config(
        workload=workload,
        topology=topology,
        scale=scale,
        mechanism=mechanism,
        policy=policy,
        alpha=alpha,
        wake_ns=wake_ns,
    )


def fig11_unaware_power(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, str, float, float]]:
    """Per-HMC power under network-unaware management.

    Rows of (scale, topology, label, alpha, watts per HMC) where label
    is "FP" or the mechanism name; values average over workloads.
    """
    rows = []
    for scale in ("small", "big"):
        for topology in settings.topologies:
            fp_power = _avg(
                runner.run(_fp_config(settings, w, topology, scale)).power_per_hmc_w
                for w in settings.workloads
            )
            rows.append((scale, topology, "FP", 0.0, fp_power))
            for mechanism in _UNAWARE_MECHS:
                for alpha in _ALPHAS:
                    power = _avg(
                        runner.run(
                            _managed_config(
                                settings, w, topology, scale, mechanism, "unaware", alpha
                            )
                        ).power_per_hmc_w
                        for w in settings.workloads
                    )
                    rows.append((scale, topology, mechanism, alpha, power))
    return rows


def fig12_unaware_performance(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, str, float, float, float]]:
    """(scale, topology, mechanism, alpha, avg degradation, max degradation)."""
    return _performance_grid(runner, settings, "unaware", _UNAWARE_MECHS, _ALPHAS)


def _performance_grid(
    runner: SweepRunner,
    settings: RunSettings,
    policy: str,
    mechanisms: Sequence[str],
    alphas: Sequence[float],
    wake_ns: float = 14.0,
) -> List[Tuple[str, str, str, float, float, float]]:
    rows = []
    for scale in ("small", "big"):
        for mechanism in mechanisms:
            for alpha in alphas:
                for topology in settings.topologies:
                    degs = [
                        runner.degradation_vs_baseline(
                            _managed_config(
                                settings, w, topology, scale, mechanism, policy, alpha, wake_ns
                            )
                        )
                        for w in settings.workloads
                    ]
                    rows.append(
                        (scale, topology, mechanism, alpha, _avg(degs), max(degs))
                    )
    return rows


# ----------------------------------------------------------------------
# Figure 13 -- link-hours by utilization and width mode
# ----------------------------------------------------------------------
def fig13_link_hours(
    runner: SweepRunner,
    settings: RunSettings,
    policy: str = "unaware",
    scale: str = "big",
) -> Dict[str, Dict[int, float]]:
    """Fraction of link hours per (utilization bucket, width mode).

    Returns ``{bucket_label: {width_index: fraction}}`` accumulated over
    the settings' workloads and topologies for VWL links.
    """
    hours: Dict[Tuple[str, int], float] = {}
    total = 0.0
    for topology in settings.topologies:
        for workload in settings.workloads:
            config = _managed_config(
                settings, workload, topology, scale, "VWL", policy, 0.05
            ).replace(collect_link_hours=True)
            res = runner.run(config)
            for key, t in (res.link_hours or {}).items():
                hours[key] = hours.get(key, 0.0) + t
                total += t
    out: Dict[str, Dict[int, float]] = {
        label: {} for label, _lo, _hi in UTILIZATION_BUCKETS
    }
    if total <= 0:
        return out
    for (label, width_idx), t in hours.items():
        out[label][width_idx] = t / total
    return out


# ----------------------------------------------------------------------
# Figures 15 / 16 / 17 -- network-aware management
# ----------------------------------------------------------------------
def fig15_aware_vs_unaware(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, str, float, float]]:
    """Network power reduction of aware vs. unaware management.

    Rows of (scale, topology, mechanism, alpha, reduction fraction),
    averaged over workloads.
    """
    rows = []
    for scale in ("small", "big"):
        for mechanism in _UNAWARE_MECHS:
            for alpha in _ALPHAS:
                for topology in settings.topologies:
                    reductions = [
                        runner.compare(
                            _managed_config(
                                settings, w, topology, scale, mechanism, "aware", alpha
                            ),
                            _managed_config(
                                settings, w, topology, scale, mechanism, "unaware", alpha
                            ),
                        )
                        for w in settings.workloads
                    ]
                    rows.append((scale, topology, mechanism, alpha, _avg(reductions)))
    return rows


def fig16_per_workload_savings(
    runner: SweepRunner,
    settings: RunSettings,
    scale: str = "big",
    alpha: float = 0.05,
) -> List[Tuple[str, str, str, float]]:
    """Power reduction vs. full power, per workload (big, alpha=5%).

    Rows of (workload, mechanism, policy, reduction fraction) averaged
    over topologies, matching Figure 16's bars.
    """
    rows = []
    for workload in settings.workloads:
        for mechanism in _UNAWARE_MECHS:
            for policy in ("unaware", "aware"):
                reductions = [
                    runner.power_reduction_vs_baseline(
                        _managed_config(
                            settings, workload, topology, scale, mechanism, policy, alpha
                        )
                    )
                    for topology in settings.topologies
                ]
                rows.append((workload, mechanism, policy, _avg(reductions)))
    return rows


def fig17_aware_performance(
    runner: SweepRunner, settings: RunSettings
) -> List[Tuple[str, str, str, float, float, float]]:
    """(scale, topology, mechanism, alpha, avg deg vs unaware, max deg vs FP)."""
    rows = []
    for scale in ("small", "big"):
        for mechanism in _UNAWARE_MECHS:
            for alpha in _ALPHAS:
                for topology in settings.topologies:
                    rel = []
                    vs_fp = []
                    for w in settings.workloads:
                        aware_cfg = _managed_config(
                            settings, w, topology, scale, mechanism, "aware", alpha
                        )
                        unaware_cfg = aware_cfg.replace(policy="unaware")
                        aware = runner.run(aware_cfg)
                        unaware = runner.run(unaware_cfg)
                        baseline = runner.run(aware_cfg.baseline())
                        rel.append(
                            performance_degradation(
                                unaware.throughput_per_s, aware.throughput_per_s
                            )
                        )
                        vs_fp.append(
                            performance_degradation(
                                baseline.throughput_per_s, aware.throughput_per_s
                            )
                        )
                    rows.append(
                        (scale, topology, mechanism, alpha, _avg(rel), max(vs_fp))
                    )
    return rows


# ----------------------------------------------------------------------
# Figure 18 -- DVFS and 20 ns ROO sensitivity
# ----------------------------------------------------------------------
def fig18_dvfs_sensitivity(
    runner: SweepRunner, settings: RunSettings, alpha: float = 0.05
) -> List[Tuple[str, str, str, float, float]]:
    """(scale, mechanism, policy, power reduction vs FP, degradation vs FP).

    Mechanisms: DVFS, ROO with 20 ns wakeup, DVFS+ROO(20 ns); averaged
    over topologies and workloads.
    """
    rows = []
    grid = (("DVFS", 14.0), ("ROO", 20.0), ("DVFS+ROO", 20.0))
    for scale in ("small", "big"):
        for mechanism, wake in grid:
            for policy in ("unaware", "aware"):
                reductions = []
                degs = []
                for topology in settings.topologies:
                    for w in settings.workloads:
                        config = _managed_config(
                            settings, w, topology, scale, mechanism, policy, alpha, wake
                        )
                        reductions.append(runner.power_reduction_vs_baseline(config))
                        degs.append(runner.degradation_vs_baseline(config))
                label = f"{mechanism}@{int(wake)}ns" if mechanism != "DVFS" else mechanism
                rows.append((scale, label, policy, _avg(reductions), _avg(degs)))
    return rows


# ----------------------------------------------------------------------
# Section VII-A -- static fat/tapered baseline
# ----------------------------------------------------------------------
def sec7_static_comparison(
    runner: SweepRunner, settings: RunSettings, scale: str = "big"
) -> Dict[str, float]:
    """Static selection + interleaving vs. network-aware at alpha=30 %.

    Returns summary statistics: average/worst-case degradation of the
    static scheme, average degradation and relative power advantage of
    network-aware management at the matching performance point.
    """
    static_degs: List[float] = []
    static_power: List[float] = []
    aware_degs: List[float] = []
    aware_power: List[float] = []
    for topology in settings.topologies:
        for workload in settings.workloads:
            static_cfg = settings.base_config(
                workload=workload,
                topology=topology,
                scale=scale,
                mechanism="VWL",
                policy="static",
                mapping="interleaved",
            )
            static_degs.append(runner.degradation_vs_baseline(static_cfg))
            static_power.append(runner.run(static_cfg).network_power_w)
            aware_cfg = settings.base_config(
                workload=workload,
                topology=topology,
                scale=scale,
                mechanism="VWL",
                policy="aware",
                alpha=0.30,
            )
            aware_degs.append(runner.degradation_vs_baseline(aware_cfg))
            aware_power.append(runner.run(aware_cfg).network_power_w)
    top_quarter = max(1, len(static_degs) // 4)
    worst_static = sorted(static_degs, reverse=True)[:top_quarter]
    worst_aware = sorted(aware_degs, reverse=True)[:top_quarter]
    total_static = sum(static_power)
    total_aware = sum(aware_power)
    return {
        "static_avg_degradation": _avg(static_degs),
        "static_max_degradation": max(static_degs),
        "static_top_quarter_degradation": _avg(worst_static),
        "aware_avg_degradation": _avg(aware_degs),
        "aware_max_degradation": max(aware_degs),
        "aware_top_quarter_degradation": _avg(worst_aware),
        "aware_power_reduction_vs_static": (
            1.0 - total_aware / total_static if total_static > 0 else 0.0
        ),
    }


# ----------------------------------------------------------------------
# Beyond the paper -- heterogeneous per-depth mechanism staging
# ----------------------------------------------------------------------
#: (label, base mechanism, mechanism_overrides spec, policy) series
#: compared by :func:`hetero_depth`.  The paper only evaluates
#: homogeneous networks; the two staged mixes use the override layer to
#: manage deep (cold, Figure 13) links aggressively while pinning the
#: processor-adjacent links, where utilization concentrates (Figure 9),
#: at full power.
HETERO_DEPTH_SERIES: Tuple[Tuple[str, str, str, str], ...] = (
    ("FP", "FP", "", "none"),
    ("VWL+ROO", "VWL+ROO", "", "aware"),
    ("deep-managed", "FP", "depth>=2:VWL+ROO", "aware"),
    ("root-pinned", "VWL+ROO", "depth<=1:FP", "aware"),
)


def _hetero_config(
    settings: RunSettings,
    workload: str,
    topology: str,
    mechanism: str,
    overrides: str,
    policy: str,
    scale: str = "big",
    alpha: float = 0.05,
) -> ExperimentConfig:
    return settings.base_config(
        workload=workload,
        topology=topology,
        scale=scale,
        mechanism=mechanism,
        mechanism_overrides=overrides,
        policy=policy,
        alpha=alpha,
    )


def hetero_depth(
    runner: SweepRunner, settings: RunSettings, scale: str = "big"
) -> List[Tuple[str, str, str, float, float, float]]:
    """Homogeneous FP / VWL+ROO vs depth-staged mechanism mixes.

    Rows of (topology, series label, override spec, avg power reduction
    vs FP, avg degradation vs FP, max degradation vs FP), averaged over
    the settings' workloads on the big-scale networks, where depth
    differentiation is largest.
    """
    rows = []
    for topology in settings.topologies:
        for label, mechanism, overrides, policy in HETERO_DEPTH_SERIES:
            reductions = []
            degs = []
            for workload in settings.workloads:
                config = _hetero_config(
                    settings, workload, topology, mechanism, overrides, policy,
                    scale=scale,
                )
                reductions.append(runner.power_reduction_vs_baseline(config))
                degs.append(runner.degradation_vs_baseline(config))
            rows.append(
                (topology, label, overrides, _avg(reductions), _avg(degs), max(degs))
            )
    return rows


def _avg(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Config enumeration: every simulation a figure needs, up front
# ----------------------------------------------------------------------
# The figure functions above pull runs from the runner one at a time,
# which serializes them even under a ParallelExecutor.  These
# enumerators list each figure's full grid (duplicates are fine -- the
# runner dedupes by cache key) so callers can batch-prefetch with
# ``runner.run_all(figure_configs(name, settings))`` and then build the
# figure entirely from cache.

def _fp_grid(settings: RunSettings) -> List[ExperimentConfig]:
    return [
        _fp_config(settings, workload, topology, scale)
        for scale in ("small", "big")
        for topology in settings.topologies
        for workload in settings.workloads
    ]


def _managed_grid(
    settings: RunSettings,
    policies: Sequence[str],
    mechanisms: Sequence[str] = _UNAWARE_MECHS,
    alphas: Sequence[float] = _ALPHAS,
    wake_ns: float = 14.0,
    with_baselines: bool = False,
) -> List[ExperimentConfig]:
    out: List[ExperimentConfig] = []
    for scale in ("small", "big"):
        for topology in settings.topologies:
            for workload in settings.workloads:
                for mechanism in mechanisms:
                    for policy in policies:
                        for alpha in alphas:
                            cfg = _managed_config(
                                settings, workload, topology, scale,
                                mechanism, policy, alpha, wake_ns,
                            )
                            out.append(cfg)
                            if with_baselines:
                                out.append(cfg.baseline())
    return out


def _fig13_grid(settings: RunSettings) -> List[ExperimentConfig]:
    return [
        _managed_config(
            settings, workload, topology, "big", "VWL", "unaware", 0.05
        ).replace(collect_link_hours=True)
        for topology in settings.topologies
        for workload in settings.workloads
    ]


def _fig16_grid(settings: RunSettings) -> List[ExperimentConfig]:
    out: List[ExperimentConfig] = []
    for workload in settings.workloads:
        for mechanism in _UNAWARE_MECHS:
            for policy in ("unaware", "aware"):
                for topology in settings.topologies:
                    cfg = _managed_config(
                        settings, workload, topology, "big", mechanism, policy, 0.05
                    )
                    out += [cfg, cfg.baseline()]
    return out


def _fig18_grid(settings: RunSettings) -> List[ExperimentConfig]:
    out: List[ExperimentConfig] = []
    for scale in ("small", "big"):
        for mechanism, wake in (("DVFS", 14.0), ("ROO", 20.0), ("DVFS+ROO", 20.0)):
            for policy in ("unaware", "aware"):
                for topology in settings.topologies:
                    for workload in settings.workloads:
                        cfg = _managed_config(
                            settings, workload, topology, scale,
                            mechanism, policy, 0.05, wake,
                        )
                        out += [cfg, cfg.baseline()]
    return out


def _hetero_depth_grid(settings: RunSettings) -> List[ExperimentConfig]:
    out: List[ExperimentConfig] = []
    for topology in settings.topologies:
        for _label, mechanism, overrides, policy in HETERO_DEPTH_SERIES:
            for workload in settings.workloads:
                cfg = _hetero_config(
                    settings, workload, topology, mechanism, overrides, policy
                )
                out += [cfg, cfg.baseline()]
    return out


def _sec7_grid(settings: RunSettings) -> List[ExperimentConfig]:
    out: List[ExperimentConfig] = []
    for topology in settings.topologies:
        for workload in settings.workloads:
            static_cfg = settings.base_config(
                workload=workload, topology=topology, scale="big",
                mechanism="VWL", policy="static", mapping="interleaved",
            )
            aware_cfg = settings.base_config(
                workload=workload, topology=topology, scale="big",
                mechanism="VWL", policy="aware", alpha=0.30,
            )
            out += [static_cfg, static_cfg.baseline(), aware_cfg, aware_cfg.baseline()]
    return out


#: figure name -> callable(settings) listing every config it simulates.
#: fig4 is absent (it needs no simulation).
FIGURE_CONFIGS: Dict[str, Callable[[RunSettings], List[ExperimentConfig]]] = {
    "fig5": _fp_grid,
    "fig6": _fp_grid,
    "fig8": _fp_grid,
    "fig9": _fp_grid,
    "fig11": lambda s: _fp_grid(s) + _managed_grid(s, ("unaware",)),
    "fig12": lambda s: _managed_grid(s, ("unaware",), with_baselines=True),
    "fig13": _fig13_grid,
    "fig15": lambda s: _managed_grid(s, ("aware", "unaware")),
    "fig16": _fig16_grid,
    "fig17": lambda s: _managed_grid(s, ("aware", "unaware"), with_baselines=True),
    "fig18": _fig18_grid,
    "sec7": _sec7_grid,
    "hetero-depth": _hetero_depth_grid,
}


def figure_configs(name: str, settings: RunSettings) -> List[ExperimentConfig]:
    """All configs ``figure(name)`` will request (may contain aliases)."""
    enumerate_fn = FIGURE_CONFIGS.get(name)
    return list(enumerate_fn(settings)) if enumerate_fn is not None else []
