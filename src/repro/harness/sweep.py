"""Parameter sweeps with layered result caching and pluggable execution.

The paper's figures reuse the same runs heavily (every managed run is
compared against the matching full-power baseline; Figure 15 compares
aware against unaware on identical grids).  :class:`SweepRunner` caches
:class:`ExperimentResult` objects by
:meth:`~repro.harness.experiment.ExperimentConfig.cache_key` in two
layers -- an in-process dict and an optional persistent disk tier
shared across invocations (a classic
:class:`~repro.harness.diskcache.DiskCache` or any
:class:`~repro.store.base.ResultStore` backend; store backends answer
a whole chunk's probe with one ``get_many`` batch) --
and delegates cache misses to an
:class:`~repro.harness.executor.Executor` (serial by default; pass a
:class:`~repro.harness.executor.ParallelExecutor` to fan batches out
over a process pool).

Because the cache key excludes observability-only fields, a run
collected with link-hours can stand in for the plain run; the converse
is handled by :meth:`SweepRunner.run` re-simulating when the caller
asked for link-hours a cached result does not carry.  Configs with a
``trace_path`` or ``metrics_path`` always re-simulate: their value is
the side-effect file, which no cached result can produce.

Hardening: executors report per-config failures as structured
:class:`~repro.harness.executor.FailedResult` objects instead of
raising, and the runner keeps the batch going -- failures are collected
in :attr:`SweepRunner.failures` (and surfaced as entries in the
:meth:`SweepRunner.run_all` output), never cached, and never silently
retried within a process.  Attach a
:class:`~repro.harness.journal.SweepJournal` to checkpoint every
outcome as it lands, so a killed sweep resumes from where it died.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.diskcache import DiskCache
from repro.harness.executor import (
    Executor,
    ExperimentOutcome,
    FailedResult,
    SerialExecutor,
)
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.journal import SweepJournal
from repro.harness.metrics import performance_degradation

__all__ = ["SweepRunner", "ExperimentFailedError", "grid_configs"]


class ExperimentFailedError(RuntimeError):
    """A single-experiment request could not produce a result.

    Raised by :meth:`SweepRunner.run` (batch APIs return the
    :class:`FailedResult` in-slot instead).  ``failure`` carries the
    structured record: error kind, message, attempt count, config.
    """

    def __init__(self, failure: FailedResult) -> None:
        super().__init__(failure.describe())
        self.failure = failure


def grid_configs(
    base: ExperimentConfig,
    workloads: Sequence[str] = (),
    topologies: Sequence[str] = (),
    scales: Sequence[str] = (),
    mechanisms: Sequence[str] = (),
    policies: Sequence[str] = (),
    alphas: Sequence[float] = (),
) -> List[ExperimentConfig]:
    """Cartesian product of the given axes over ``base``.

    Empty axes keep the base config's value.
    """
    axes = {
        "workload": list(workloads) or [base.workload],
        "topology": list(topologies) or [base.topology],
        "scale": list(scales) or [base.scale],
        "mechanism": list(mechanisms) or [base.mechanism],
        "policy": list(policies) or [base.policy],
        "alpha": list(alphas) or [base.alpha],
    }
    keys = list(axes)
    out = []
    for combo in itertools.product(*(axes[k] for k in keys)):
        out.append(base.replace(**dict(zip(keys, combo))))
    return out


@dataclass
class SweepRunner:
    """Runs experiments, memoizing results by config cache key.

    Counters: ``runs`` counts actual simulations; ``memory_hits`` /
    ``disk_hits`` / ``journal_hits`` count lookups served by each
    layer; ``sim_wall_time_s`` accumulates the wall time of the
    simulations this runner executed (not of cache hits).

    Failed experiments land in :attr:`failures` keyed by cache key and
    are *not* retried by later lookups in the same runner (the failure
    was already retried to its budget inside the executor).
    """

    executor: Executor = field(default_factory=SerialExecutor)
    disk_cache: Optional[DiskCache] = None
    journal: Optional[SweepJournal] = None
    cache: Dict[str, ExperimentResult] = field(default_factory=dict)
    failures: Dict[str, FailedResult] = field(default_factory=dict)
    runs: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    journal_hits: int = 0
    traced_runs: int = 0
    sim_wall_time_s: float = 0.0

    def attach_journal(self, journal: SweepJournal) -> None:
        """Wire a journal in: replayed results seed the memory cache
        (counted as ``journal_hits``); every subsequent outcome is
        checkpointed as it lands."""
        self.journal = journal
        for key, result in journal.results.items():
            if key not in self.cache:
                self.cache[key] = result
                self.journal_hits += 1

    @staticmethod
    def _traced(config: ExperimentConfig) -> bool:
        """Must this config actually simulate (not hit a cache)?

        True for configs that produce trace/metrics files as a side
        effect, and for audited configs -- a cached result cannot be
        invariant-checked after the fact.
        """
        return (
            config.trace_path is not None
            or config.metrics_path is not None
            or bool(config.audit)
        )

    @staticmethod
    def _satisfies(result: ExperimentResult, config: ExperimentConfig) -> bool:
        """Does a cached result carry everything ``config`` asked for?

        The cache key only covers simulation-affecting fields, so a hit
        may have been collected with different observability flags; a
        result without link-hours cannot serve a caller that wants them.
        """
        return result.link_hours is not None or not config.collect_link_hours

    def _store(self, config: ExperimentConfig, result: ExperimentResult) -> None:
        key = config.cache_key()
        self.cache[key] = result
        if self.disk_cache is not None:
            self.disk_cache.put(config, result)
        if self.journal is not None:
            self.journal.record_done(key, result)
        self.runs += 1
        self.sim_wall_time_s += result.wall_time_s

    def _disk_probe(
        self, pending: Dict[str, ExperimentConfig]
    ) -> Dict[str, ExperimentResult]:
        """Probe the disk tier for a whole sweep chunk at once.

        A :class:`~repro.store.base.ResultStore` backend answers the
        chunk with one ``get_many`` call (one query for the SQLite
        backend, instead of N stat/open/parse round-trips); a plain
        :class:`DiskCache` falls back to the per-key loop.  Hit/miss
        counters are identical either way.
        """
        assert self.disk_cache is not None
        if not pending:
            return {}
        bulk = getattr(self.disk_cache, "get_many", None)
        if bulk is not None:
            return bulk(pending.values())
        found: Dict[str, ExperimentResult] = {}
        for key, config in pending.items():
            result = self.disk_cache.get(config)
            if result is not None:
                found[key] = result
        return found

    def _record_failure(
        self, config: ExperimentConfig, failure: FailedResult
    ) -> None:
        key = config.cache_key()
        self.failures[key] = failure
        if self.journal is not None:
            self.journal.record_failed(key, failure)

    def _outcome(
        self, config: ExperimentConfig
    ) -> ExperimentOutcome:
        """Run one experiment through the executor, recording the outcome."""
        outcome = self.executor.run(config)
        if isinstance(outcome, FailedResult):
            self._record_failure(config, outcome)
        else:
            self._store(config, outcome)
        return outcome

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Run (or fetch) one experiment.

        Traced configs (``trace_path``/``metrics_path`` set) bypass both
        cache lookups -- the caller wants the trace file written, and
        only an actual simulation writes it -- but the result is still
        stored so subsequent untraced runs hit the cache.

        Raises :class:`ExperimentFailedError` when the experiment fails
        (after the executor's own retry budget); batch callers should
        prefer :meth:`run_all`, which reports failures in-slot instead
        of raising.
        """
        key = config.cache_key()
        if self._traced(config):
            outcome = self._outcome(config)
            if isinstance(outcome, FailedResult):
                raise ExperimentFailedError(outcome)
            self.traced_runs += 1
            return outcome
        failure = self.failures.get(key)
        if failure is not None:
            # Already failed in this runner (budget exhausted): don't
            # burn wall clock re-running a known-bad config.
            raise ExperimentFailedError(failure)
        result = self.cache.get(key)
        if result is not None and self._satisfies(result, config):
            self.memory_hits += 1
            if self.journal is not None:
                self.journal.record_done(key, result)
            return result
        if self.disk_cache is not None:
            result = self.disk_cache.get(config)
            if result is not None and self._satisfies(result, config):
                self.disk_hits += 1
                self.cache[key] = result
                if self.journal is not None:
                    self.journal.record_done(key, result)
                return result
        outcome = self._outcome(config)
        if isinstance(outcome, FailedResult):
            raise ExperimentFailedError(outcome)
        return outcome

    def run_all(
        self, configs: Iterable[ExperimentConfig]
    ) -> List[ExperimentOutcome]:
        """Run every config; returns outcomes in input order.

        Cache misses are deduplicated by cache key and handed to the
        executor as one batch, so a :class:`ParallelExecutor` overlaps
        them across worker processes.  A config whose simulation fails
        yields its structured :class:`FailedResult` in-slot (never
        raises, never aborts the rest of the batch); when a journal is
        attached, every outcome is checkpointed the moment it resolves,
        not at batch end.
        """
        configs = list(configs)
        pending: Dict[str, ExperimentConfig] = {}
        for config in configs:
            if self._traced(config):
                # Traced configs must re-simulate; the final self.run()
                # pass handles them (exactly once each) so they never
                # alias an untraced request to one simulation here.
                continue
            key = config.cache_key()
            if key in self.failures:
                continue
            cached = self.cache.get(key)
            if cached is not None and self._satisfies(cached, config):
                continue
            previous = pending.get(key)
            # When two requests alias to one simulation, run the one
            # with the richer observability so it satisfies both.
            if previous is None or (
                config.collect_link_hours and not previous.collect_link_hours
            ):
                pending[key] = config
        found = self._disk_probe(pending) if self.disk_cache is not None else {}
        missing: List[ExperimentConfig] = []
        for key, config in pending.items():
            result = found.get(key)
            if result is not None and self._satisfies(result, config):
                self.disk_hits += 1
                self.cache[key] = result
            else:
                missing.append(config)
        if missing:
            # Stream each outcome into the cache/journal as it lands
            # (completion order), so killing the process mid-batch
            # loses at most the in-flight experiments.
            def _on_result(
                index: int,
                config: ExperimentConfig,
                outcome: ExperimentOutcome,
            ) -> None:
                if isinstance(outcome, FailedResult):
                    self._record_failure(config, outcome)
                else:
                    self._store(config, outcome)

            self.executor.run_many(missing, on_result=_on_result)
        out: List[ExperimentOutcome] = []
        for config in configs:
            if not self._traced(config):
                failure = self.failures.get(config.cache_key())
                if failure is not None:
                    out.append(failure)
                    continue
            try:
                out.append(self.run(config))
            except ExperimentFailedError as exc:
                out.append(exc.failure)
        return out

    # ------------------------------------------------------------------
    # Paired comparisons
    # ------------------------------------------------------------------
    def run_with_baseline(
        self, config: ExperimentConfig
    ) -> Tuple[ExperimentResult, ExperimentResult]:
        """(managed result, matching full-power baseline result)."""
        return self.run(config), self.run(config.baseline())

    def power_reduction_vs_baseline(self, config: ExperimentConfig) -> float:
        """Network power saved vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        if baseline.network_power_w <= 0:
            return 0.0
        return 1.0 - managed.network_power_w / baseline.network_power_w

    def io_power_reduction_vs_baseline(self, config: ExperimentConfig) -> float:
        """I/O power saved vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        if baseline.io_power_w <= 0:
            return 0.0
        return 1.0 - managed.io_power_w / baseline.io_power_w

    def idle_io_power_reduction_vs_baseline(self, config: ExperimentConfig) -> float:
        """Idle-I/O power saved vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        base = baseline.breakdown.watts["idle_io"]
        if base <= 0:
            return 0.0
        return 1.0 - managed.breakdown.watts["idle_io"] / base

    def degradation_vs_baseline(self, config: ExperimentConfig) -> float:
        """Throughput degradation vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        return performance_degradation(
            baseline.throughput_per_s, managed.throughput_per_s
        )

    def compare(
        self, config_a: ExperimentConfig, config_b: ExperimentConfig
    ) -> float:
        """Network power reduction of ``config_a`` relative to ``config_b``."""
        a = self.run(config_a)
        b = self.run(config_b)
        if b.network_power_w <= 0:
            return 0.0
        return 1.0 - a.network_power_w / b.network_power_w
