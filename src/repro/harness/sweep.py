"""Parameter sweeps with result caching.

The paper's figures reuse the same runs heavily (every managed run is
compared against the matching full-power baseline; Figure 15 compares
aware against unaware on identical grids).  :class:`SweepRunner` caches
:class:`ExperimentResult` objects by config so shared points simulate
once per process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.harness.metrics import performance_degradation

__all__ = ["SweepRunner", "grid_configs"]


def grid_configs(
    base: ExperimentConfig,
    workloads: Sequence[str] = (),
    topologies: Sequence[str] = (),
    scales: Sequence[str] = (),
    mechanisms: Sequence[str] = (),
    policies: Sequence[str] = (),
    alphas: Sequence[float] = (),
) -> List[ExperimentConfig]:
    """Cartesian product of the given axes over ``base``.

    Empty axes keep the base config's value.
    """
    axes = {
        "workload": list(workloads) or [base.workload],
        "topology": list(topologies) or [base.topology],
        "scale": list(scales) or [base.scale],
        "mechanism": list(mechanisms) or [base.mechanism],
        "policy": list(policies) or [base.policy],
        "alpha": list(alphas) or [base.alpha],
    }
    keys = list(axes)
    out = []
    for combo in itertools.product(*(axes[k] for k in keys)):
        out.append(base.replace(**dict(zip(keys, combo))))
    return out


@dataclass
class SweepRunner:
    """Runs experiments, memoizing results by config."""

    cache: Dict[ExperimentConfig, ExperimentResult] = field(default_factory=dict)
    runs: int = 0

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Run (or fetch) one experiment."""
        if config not in self.cache:
            self.cache[config] = run_experiment(config)
            self.runs += 1
        return self.cache[config]

    def run_all(self, configs: Iterable[ExperimentConfig]) -> List[ExperimentResult]:
        """Run every config, in order."""
        return [self.run(c) for c in configs]

    # ------------------------------------------------------------------
    # Paired comparisons
    # ------------------------------------------------------------------
    def run_with_baseline(
        self, config: ExperimentConfig
    ) -> Tuple[ExperimentResult, ExperimentResult]:
        """(managed result, matching full-power baseline result)."""
        return self.run(config), self.run(config.baseline())

    def power_reduction_vs_baseline(self, config: ExperimentConfig) -> float:
        """Network power saved vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        if baseline.network_power_w <= 0:
            return 0.0
        return 1.0 - managed.network_power_w / baseline.network_power_w

    def io_power_reduction_vs_baseline(self, config: ExperimentConfig) -> float:
        """I/O power saved vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        if baseline.io_power_w <= 0:
            return 0.0
        return 1.0 - managed.io_power_w / baseline.io_power_w

    def idle_io_power_reduction_vs_baseline(self, config: ExperimentConfig) -> float:
        """Idle-I/O power saved vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        base = baseline.breakdown.watts["idle_io"]
        if base <= 0:
            return 0.0
        return 1.0 - managed.breakdown.watts["idle_io"] / base

    def degradation_vs_baseline(self, config: ExperimentConfig) -> float:
        """Throughput degradation vs. the full-power run (fraction)."""
        managed, baseline = self.run_with_baseline(config)
        return performance_degradation(
            baseline.throughput_per_s, managed.throughput_per_s
        )

    def compare(
        self, config_a: ExperimentConfig, config_b: ExperimentConfig
    ) -> float:
        """Network power reduction of ``config_a`` relative to ``config_b``."""
        a = self.run(config_a)
        b = self.run(config_b)
        if b.network_power_w <= 0:
            return 0.0
        return 1.0 - a.network_power_w / b.network_power_w
