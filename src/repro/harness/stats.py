"""Streaming statistics: latency distributions and summary metrics.

The paper reports averages and maxima; real deployments care about the
tail.  :class:`LatencyTracker` subscribes to a network's read-completion
stream and keeps a bounded reservoir sample plus exact streaming moments,
from which it reports mean / std / percentiles / max.

Also provides :func:`summarize`, a small numeric summary helper used by
reports and tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.network.network import MemoryNetwork

__all__ = ["LatencyTracker", "summarize"]


class LatencyTracker:
    """Reservoir-sampled read-latency distribution for one network.

    Exact count/mean/max are streamed; percentiles come from a
    fixed-size uniform reservoir (default 4096 samples), which keeps
    memory bounded for arbitrarily long simulations.
    """

    def __init__(self, network: MemoryNetwork, reservoir_size: int = 4096, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._reservoir: List[float] = []
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.max_ns = 0.0
        self.min_ns = math.inf
        network.read_listeners.append(self._on_complete)

    # ------------------------------------------------------------------
    def _on_complete(self, pkt, now: float) -> None:
        self.observe(now - pkt.issue_time)

    def observe(self, latency_ns: float) -> None:
        """Fold one latency sample into the tracker."""
        self.count += 1
        delta = latency_ns - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (latency_ns - self._mean)
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        if latency_ns < self.min_ns:
            self.min_ns = latency_ns
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(latency_ns)
        else:
            idx = self._rng.randrange(self.count)
            if idx < self.reservoir_size:
                self._reservoir[idx] = latency_ns

    # ------------------------------------------------------------------
    @property
    def mean_ns(self) -> float:
        """Exact streaming mean."""
        return self._mean if self.count else 0.0

    @property
    def std_ns(self) -> float:
        """Exact streaming (population) standard deviation."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / self.count)

    def percentile(self, p: float) -> float:
        """Approximate percentile from the reservoir (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        rank = p / 100 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        """The standard report row: count/mean/std/p50/p95/p99/max."""
        return {
            "count": float(self.count),
            "mean_ns": self.mean_ns,
            "std_ns": self.std_ns,
            "p50_ns": self.percentile(50),
            "p95_ns": self.percentile(95),
            "p99_ns": self.percentile(99),
            "max_ns": self.max_ns if self.count else 0.0,
        }


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Exact summary of a small value list (tests, reports)."""
    if not values:
        return {"count": 0.0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {
        "count": float(n),
        "mean": mean,
        "std": math.sqrt(var),
        "min": min(values),
        "max": max(values),
    }
