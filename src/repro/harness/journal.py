"""Sweep checkpoint journal: crash-safe progress for long batches.

A :class:`SweepJournal` is an append-only JSONL file recording the final
outcome of every experiment in a sweep as soon as it is known -- one
line per outcome, flushed immediately, so a sweep killed at any point
(crash, OOM, SIGKILL, power loss) leaves a prefix of valid lines behind.
Re-running the sweep with ``resume=True`` replays that prefix: completed
results seed the runner's cache (no re-simulation), previously *failed*
configs are retried, and a torn final line -- the one the kill
interrupted -- is skipped and counted, never fatal.

Line shapes::

    {"kind": "done",   "key": K, "result": {<cache dict>}}
    {"kind": "failed", "key": K, "error_type": "...", "message": "...",
     "attempts": N, "config": {<config dict>}}

``key`` is :meth:`ExperimentConfig.cache_key`, the same identity the
result caches use.  A ``done`` line for a key supersedes any earlier
``failed`` lines for it (a resumed retry that succeeds appends ``done``
after the old ``failed``), and each key is journalled as ``done`` at
most once per file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.harness.executor import FailedResult
from repro.harness.experiment import ExperimentResult
from repro.harness.io import (
    config_to_dict,
    result_from_cache_dict,
    result_to_cache_dict,
)

__all__ = ["SweepJournal"]


class SweepJournal:
    """Append-only JSONL outcome log with tolerant replay.

    ``resume=False`` (the default) truncates any existing file and
    starts fresh; ``resume=True`` first replays the existing file into
    :attr:`results` / :attr:`failures` and then appends.  ``corrupt_lines``
    counts unparseable/torn lines skipped during replay.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False) -> None:
        self.path = Path(path)
        #: Replayed completed results by cache key (resume only).
        self.results: Dict[str, ExperimentResult] = {}
        #: Replayed failure records (dicts) by cache key, for keys with
        #: no superseding ``done`` line; these are retried on resume.
        self.failures: Dict[str, Dict] = {}
        self.corrupt_lines = 0
        self.records_written = 0
        self._done_keys: Set[str] = set()
        if resume and self.path.exists():
            self._replay()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[object] = open(self.path, "a" if resume else "w")

    def _replay(self) -> None:
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    kind = record["kind"]
                    key = record["key"]
                    if kind == "done":
                        self.results[key] = result_from_cache_dict(
                            record["result"]
                        )
                        self._done_keys.add(key)
                        self.failures.pop(key, None)
                    elif kind == "failed":
                        if key not in self._done_keys:
                            self.failures[key] = record
                    else:
                        self.corrupt_lines += 1
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    # Torn tail line from a killed run, or garbage:
                    # count it and move on -- resume must never fail
                    # because the previous run died mid-write.
                    self.corrupt_lines += 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_done(self, key: str, result: ExperimentResult) -> None:
        """Checkpoint a completed result (idempotent per key)."""
        if key in self._done_keys:
            return
        self._done_keys.add(key)
        self._write(
            {"kind": "done", "key": key, "result": result_to_cache_dict(result)}
        )

    def record_failed(self, key: str, failure: FailedResult) -> None:
        """Checkpoint a structured failure (its config is kept so a
        resumed run can retry it even if the batch spec changed)."""
        self._write(
            {
                "kind": "failed",
                "key": key,
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
                "config": config_to_dict(failure.config),
            }
        )

    def _write(self, record: Dict) -> None:
        if self._fh is None:
            raise ValueError("journal is closed")
        self._fh.write(json.dumps(record) + "\n")
        # Flush per record: a killed process loses at most the line
        # being written (which replay tolerates), never a flushed one.
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the journal file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
