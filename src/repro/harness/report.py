"""Plain-text table/series formatting for benchmark output.

The benchmark harness prints the same rows and series the paper's
tables and figures report; these helpers keep that output consistent
and readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_percent", "format_watts", "print_table"]


def format_percent(value: float, digits: int = 1) -> str:
    """0.234 -> '23.4%'."""
    return f"{value * 100:.{digits}f}%"


def format_watts(value: float, digits: int = 2) -> str:
    """1.2345 -> '1.23 W'."""
    return f"{value:.{digits}f} W"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a separator under the header."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` output (convenience for benches)."""
    print()
    print(format_table(headers, rows, title=title))
