"""Plain-text table/series formatting for benchmark output.

The benchmark harness prints the same rows and series the paper's
tables and figures report; these helpers keep that output consistent
and readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = [
    "format_table",
    "format_percent",
    "format_watts",
    "print_table",
    "render_run_summary",
]


def format_percent(value: float, digits: int = 1) -> str:
    """0.234 -> '23.4%'."""
    return f"{value * 100:.{digits}f}%"


def format_watts(value: float, digits: int = 2) -> str:
    """1.2345 -> '1.23 W'."""
    return f"{value:.{digits}f} W"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a separator under the header."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_run_summary(config, result) -> str:
    """The single-experiment summary table, as ``repro-mnet run`` prints it.

    One shared renderer keeps every surface that reports an
    :class:`~repro.harness.experiment.ExperimentResult` -- the CLI
    ``run`` subcommand and the experiment service's ``summary`` response
    field -- byte-identical for the same config, which the serve smoke
    test pins (see docs/serving.md).
    """
    rows: List[List[object]] = [
        ["modules", result.num_modules],
        ["power per HMC", f"{result.power_per_hmc_w:.3f} W"],
        ["network power", f"{result.network_power_w:.2f} W"],
        ["idle I/O share", f"{result.idle_io_fraction:.0%}"],
        ["I/O share", f"{result.breakdown.io_fraction:.0%}"],
        ["throughput", f"{result.throughput_per_s:.3e} accesses/s"],
        ["avg read latency", f"{result.avg_read_latency_ns:.1f} ns"],
        ["max read latency", f"{result.max_read_latency_ns:.1f} ns"],
        ["channel utilization", f"{result.channel_utilization:.1%}"],
        ["avg link utilization", f"{result.link_utilization:.1%}"],
        ["modules traversed/access", f"{result.avg_modules_traversed:.2f}"],
        ["completed reads/writes",
         f"{result.completed_reads}/{result.completed_writes}"],
        ["epochs / violations", f"{result.epochs}/{result.violations}"],
        ["events processed", result.events_processed],
        ["sim wall time", f"{result.wall_time_s:.2f} s"],
    ]
    if config.fault_spec:
        rows[-1:-1] = [
            ["fault events", result.fault_events],
            ["link retries (flits)",
             f"{result.link_retries} ({result.retry_flits})"],
            ["retry time", f"{result.retry_time_ns:.0f} ns"],
            ["vault stalls", result.vault_stalls],
        ]
    mech_label = config.mechanism
    if config.mechanism_overrides:
        mech_label += f" [{config.mechanism_overrides}]"
    title = (f"{config.workload} on {config.scale} {config.topology}, "
             f"{mech_label}/{config.policy}")
    return format_table(["metric", "value"], rows, title=title)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` output (convenience for benches)."""
    print()
    print(format_table(headers, rows, title=title))
