"""Power-state timelines: sample link states over a run.

Policies are easier to debug when you can *see* what a link did:
when it narrowed, when it slept, how long it stayed there.
:class:`StateSampler` polls every link at a fixed period (piggybacking
on the simulation's own event queue, so samples are exact snapshots)
and exposes per-link timelines plus duty-cycle summaries.

Sampling is passive: it never changes simulation behaviour, only adds
one event per period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.links import LinkController
from repro.network.network import MemoryNetwork

__all__ = ["LinkSample", "StateSampler"]


@dataclass(frozen=True)
class LinkSample:
    """One snapshot of one link's power state."""

    time_ns: float
    width_index: int
    is_off: bool
    transmitting: bool
    queue_len: int


class StateSampler:
    """Periodic sampler of every link's power state.

    Start it before running the simulation::

        sampler = StateSampler(network, period_ns=1000.0)
        sampler.start()
        sim.run(until=...)
        print(sampler.duty_cycles()[network.channel_req])
    """

    def __init__(self, network: MemoryNetwork, period_ns: float = 1_000.0) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.network = network
        self.period_ns = period_ns
        self.samples: Dict[LinkController, List[LinkSample]] = {
            link: [] for link in network.all_links()
        }
        self._running = False

    def start(self) -> None:
        """Arm the periodic sampling event."""
        if self._running:
            return
        self._running = True
        self.network.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        """Stop sampling after the next tick."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.network.sim.now
        for link, series in self.samples.items():
            series.append(
                LinkSample(
                    time_ns=now,
                    width_index=link.width_idx,
                    is_off=link.is_off,
                    transmitting=link.transmitting,
                    queue_len=link.queue_len,
                )
            )
        self.network.sim.schedule(self.period_ns, self._tick)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def duty_cycles(self) -> Dict[LinkController, Dict[str, float]]:
        """Per-link fraction of samples off / transmitting / per width."""
        out: Dict[LinkController, Dict[str, float]] = {}
        for link, series in self.samples.items():
            n = len(series)
            if n == 0:
                out[link] = {}
                continue
            summary: Dict[str, float] = {
                "off": sum(1 for s in series if s.is_off) / n,
                "transmitting": sum(1 for s in series if s.transmitting) / n,
            }
            for width in range(len(link.mech.width_modes)):
                share = sum(
                    1 for s in series if s.width_index == width and not s.is_off
                ) / n
                summary[f"width_{width}"] = share
            out[link] = summary
        return out

    def transitions(self, link: LinkController) -> List[Tuple[float, str]]:
        """State-change events for one link, as (time, description)."""
        series = self.samples.get(link, [])
        events: List[Tuple[float, str]] = []
        prev: Optional[LinkSample] = None
        for sample in series:
            if prev is not None:
                if sample.is_off != prev.is_off:
                    events.append(
                        (sample.time_ns, "off" if sample.is_off else "on")
                    )
                if sample.width_index != prev.width_index:
                    name = link.mech.width_modes[sample.width_index].name
                    events.append((sample.time_ns, f"width->{name}"))
            prev = sample
        return events

    def max_queue_depth(self, link: LinkController) -> int:
        """Largest sampled queue occupancy for one link."""
        series = self.samples.get(link, [])
        return max((s.queue_len for s in series), default=0)
