"""Persistent on-disk result cache, keyed by config content hash.

One JSON file per :class:`~repro.harness.experiment.ExperimentResult`,
named ``<cache_key>.json`` and grouped under a *schema tag* directory::

    <root>/v<SCHEMA_VERSION>-<repro.__version__>/<cache_key>.json

The tag couples the cache to both the serialization schema and the
package version, so bumping ``repro.__version__`` (or the schema)
invalidates every stale entry without any migration logic -- old
directories are simply never read again.

The default root is ``~/.cache/repro-mnet``; override per-call with the
constructor argument, or globally with the ``REPRO_CACHE_DIR``
environment variable.  Entries are written atomically (tempfile +
rename) so concurrent writers -- e.g. a :class:`ParallelExecutor` batch
feeding one cache, or two CLI invocations racing -- at worst do
duplicate work, never corrupt an entry.  Unreadable or truncated files
are treated as misses and moved aside into a ``quarantine/``
subdirectory (so a recurring corruption source stays diagnosable
instead of silently vanishing); the ``quarantined`` counter surfaces
how often that happened.

Thread safety: one :class:`DiskCache` instance may be shared by
concurrent readers and writers (the experiment service's HTTP handler
threads all funnel through a single instance).  File operations are
already safe -- writes land via ``mkstemp`` + atomic ``os.replace`` and
a read races a replace only into seeing the old or the new complete
entry -- and the hit/miss/write/quarantine counters are guarded by an
internal lock so they stay exact under contention.  Two threads racing
to quarantine the same corrupt entry count it once: the loser's
``os.replace`` finds the path gone and treats that as
already-quarantined.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Optional, Union

from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.io import result_from_cache_dict, result_to_cache_dict

__all__ = ["DiskCache", "SCHEMA_VERSION", "default_cache_dir"]

#: Bump when the cache-dict layout changes incompatibly.
#: v2: ``mechanism_overrides`` joined the config payload (omitted when
#: empty) and flat result rows gained the column; entries written under
#: v1 are silently treated as misses, never as stale hits.
SCHEMA_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-mnet``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-mnet").expanduser()


class DiskCache:
    """JSON-per-result store under a versioned cache directory."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"cache dir {self.root} exists but is not a directory"
            )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        # Guards the counters above (file operations are individually
        # atomic and need no lock; see the module docstring).
        self._lock = threading.Lock()

    @property
    def schema_tag(self) -> str:
        """Directory name tying entries to schema + package version."""
        import repro  # deferred: repro.__init__ imports the harness

        return f"v{SCHEMA_VERSION}-{repro.__version__}"

    @property
    def directory(self) -> Path:
        """The active (schema-tagged) cache directory."""
        return self.root / self.schema_tag

    def path_for(self, config: ExperimentConfig) -> Path:
        """Where this config's result lives (whether or not it exists)."""
        return self.directory / f"{config.cache_key()}.json"

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The cached result for ``config``, or ``None`` on a miss."""
        path = self.path_for(config)
        try:
            with open(path) as fh:
                data = json.load(fh)
            result = result_from_cache_dict(data["result"])
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Corrupt or half-written entry: quarantine it (keeps the
            # evidence for diagnosis) and re-simulate.
            self._quarantine(path)
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into ``quarantine/`` (unlink as fallback).

        The quarantine directory sits *inside* the schema-tagged
        directory but its entries are never globbed by ``__len__`` nor
        looked up by ``get`` -- they only exist for post-mortems.
        Concurrent readers may race to quarantine the same entry; the
        loser finds the path already gone (``FileNotFoundError``) and
        does not double-count.
        """
        target = self.directory / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except FileNotFoundError:
            # Another thread already moved (or removed) it.
            return
        except OSError:
            try:
                path.unlink()
            except FileNotFoundError:
                return
            except OSError:
                return
        with self._lock:
            self.quarantined += 1

    def put(self, config: ExperimentConfig, result: ExperimentResult) -> Path:
        """Persist ``result`` under ``config``'s key; returns the path."""
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": self.schema_tag,
            "key": config.cache_key(),
            "result": result_to_cache_dict(result),
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.writes += 1
        return path

    def __len__(self) -> int:
        """Number of entries readable under the active schema tag."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
