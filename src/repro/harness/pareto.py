"""Alpha sweeps and power/performance Pareto analysis.

Section VII-A finds the alpha at which network-aware management matches
the static baseline's average performance overhead ("by sweeping alpha
values, we found that alpha = 30 % matches..."), then compares power at
that iso-performance point.  This module provides that machinery as a
first-class tool:

* :func:`sweep_alpha` -- run one configuration over a list of alphas,
  returning (alpha, power-saved, degradation) trade-off points;
* :func:`pareto_frontier` -- the non-dominated subset of such points;
* :func:`alpha_for_degradation` -- the largest swept alpha whose
  measured degradation stays within a target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import SweepRunner

__all__ = [
    "TradeoffPoint",
    "sweep_alpha",
    "pareto_frontier",
    "alpha_for_degradation",
    "DEFAULT_ALPHAS",
]

#: The paper's explicit alphas plus the sweep range of Section VII-A.
DEFAULT_ALPHAS: Sequence[float] = (0.025, 0.05, 0.10, 0.20, 0.30)


@dataclass(frozen=True)
class TradeoffPoint:
    """One point on the power/performance trade-off curve."""

    alpha: float
    power_saved: float
    degradation: float

    def dominates(self, other: "TradeoffPoint") -> bool:
        """More savings with no more degradation (strictly better once)."""
        return (
            self.power_saved >= other.power_saved
            and self.degradation <= other.degradation
            and (
                self.power_saved > other.power_saved
                or self.degradation < other.degradation
            )
        )


def sweep_alpha(
    runner: SweepRunner,
    config: ExperimentConfig,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> List[TradeoffPoint]:
    """Measure the trade-off curve of ``config`` across ``alphas``."""
    points = []
    for alpha in alphas:
        cfg = config.replace(alpha=alpha)
        points.append(
            TradeoffPoint(
                alpha=alpha,
                power_saved=runner.power_reduction_vs_baseline(cfg),
                degradation=runner.degradation_vs_baseline(cfg),
            )
        )
    return points


def pareto_frontier(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """Non-dominated points, sorted by increasing degradation."""
    frontier = [
        p for p in points if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: (p.degradation, -p.power_saved))


def alpha_for_degradation(
    points: Sequence[TradeoffPoint], target_degradation: float
) -> Optional[TradeoffPoint]:
    """Most aggressive swept point within a degradation budget.

    Returns ``None`` when even the smallest alpha overshoots the target.
    """
    feasible = [p for p in points if p.degradation <= target_degradation]
    if not feasible:
        return None
    return max(feasible, key=lambda p: p.power_saved)
