"""Simulation assembly: one composition pipeline for every harness.

Historically :func:`repro.harness.experiment.run_experiment`, the
multichannel runner, the perf scenarios, and the CLI trace command each
wired topology -> network -> workload -> policy -> faults -> observers
by hand, and every new cross-cutting concern (fault injection, tracing,
per-link mechanism overrides) had to be threaded through each copy.
:class:`SimulationBuilder` is now the only place that ordering lives:

    sabotage -> profile -> mapping -> topology -> mechanism ->
    link overrides -> network -> faults -> policy -> observability ->
    workload

``build()`` returns a :class:`Simulation` bundle exposing every
assembled part, so callers that only need a subset (a bench driving the
network directly, the trace recorder) still go through the same
pipeline and stay bit-identical to the full harness.  Partial consumers
that have no :class:`ExperimentConfig` at all (synthetic mappings,
hand-rolled traffic) use :func:`build_network`, the shared low-level
network assembly step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.core.mechanisms import MechanismConfig, make_mechanism
from repro.core.overrides import LinkMechanism, resolve_link_mechanisms
from repro.core.policy import make_policy
from repro.dram.timing import DEFAULT_TIMING, DramTiming
from repro.network.network import MemoryNetwork
from repro.network.topology import Topology, build_topology
from repro.power.hmc_power import DEFAULT_POWER_MODEL, HmcPowerModel
from repro.sim.engine import Simulator
from repro.workloads.generator import ClosedLoopWorkload
from repro.workloads.mapping import make_mapping
from repro.workloads.profiles import WorkloadProfile, get_profile

if TYPE_CHECKING:  # import-cycle-free type hints only
    from repro.harness.experiment import ExperimentConfig

__all__ = ["Simulation", "SimulationBuilder", "build_network"]


def build_network(
    topology: Topology,
    mechanism: MechanismConfig,
    mapping: Any,
    sim: Optional[Simulator] = None,
    power_model: HmcPowerModel = DEFAULT_POWER_MODEL,
    timing: DramTiming = DEFAULT_TIMING,
    roo_enabled: bool = True,
    link_mechanisms: Optional[Dict[str, MechanismConfig]] = None,
) -> MemoryNetwork:
    """Assemble a :class:`MemoryNetwork` (creating a simulator if needed).

    The shared network-assembly step for callers without a full
    :class:`ExperimentConfig` -- benches and tools that inject traffic
    by hand.  The simulator is reachable as ``network.sim``.
    """
    return MemoryNetwork(
        sim if sim is not None else Simulator(),
        topology,
        mechanism,
        mapping,
        power_model=power_model,
        timing=timing,
        roo_enabled=roo_enabled,
        link_mechanisms=link_mechanisms,
    )


@dataclass
class Simulation:
    """An assembled simulation, ready to run once.

    Every part the pipeline produced is exposed so measurement code can
    read counters after :meth:`run` without re-deriving anything.
    Optional stages leave ``None`` in their slot.
    """

    config: "ExperimentConfig"
    profile: WorkloadProfile
    mapping: Any
    topology: Topology
    mechanism: MechanismConfig
    #: Resolved per-link overrides (empty for homogeneous networks).
    link_mechanisms: Dict[str, LinkMechanism]
    sim: Simulator
    network: MemoryNetwork
    fault_plan: Optional[Any] = None
    policy: Optional[Any] = None
    collector: Optional[Any] = None
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None
    #: Per-epoch invariant auditor (``config.audit`` non-empty and a
    #: managed policy); end-of-run audit happens either way.
    auditor: Optional[Any] = None
    workload: Optional[ClosedLoopWorkload] = None
    #: Wall-clock instant assembly started (for run instrumentation).
    build_started: float = field(default_factory=time.perf_counter)

    def run(self) -> None:
        """Start every part, run the configured window, finalize energy."""
        self.network.start()
        if self.policy is not None:
            self.policy.start()
        if self.workload is not None:
            self.workload.start()
        self.sim.run(until=self.config.window_ns)
        self.network.finalize(self.config.window_ns)


class SimulationBuilder:
    """Builds a :class:`Simulation` from an :class:`ExperimentConfig`.

    Chainable ``with_*`` overrides swap individual parts (a custom
    policy factory for ablations, a pre-built mapping for benches)
    without disturbing the rest of the pipeline; ``without_*`` toggles
    skip optional stages entirely.
    """

    def __init__(self, config: "ExperimentConfig") -> None:
        self.config = config
        self._policy_factory: Optional[Callable] = None
        self._power_model: HmcPowerModel = DEFAULT_POWER_MODEL
        self._timing: DramTiming = DEFAULT_TIMING
        self._faults = True
        self._observability = True
        self._workload = True

    # ------------------------------------------------------------------
    # Chainable configuration
    # ------------------------------------------------------------------
    def with_policy_factory(self, factory: Optional[Callable]) -> "SimulationBuilder":
        """Override ``config.policy``: called as ``factory(network, alpha,
        epoch_ns)`` and must return an object with ``start()``."""
        self._policy_factory = factory
        return self

    def with_power_model(self, model: HmcPowerModel) -> "SimulationBuilder":
        """Substitute a custom power model (default: ``DEFAULT_POWER_MODEL``)."""
        self._power_model = model
        return self

    def with_timing(self, timing: DramTiming) -> "SimulationBuilder":
        """Substitute custom DRAM timing parameters."""
        self._timing = timing
        return self

    def without_faults(self) -> "SimulationBuilder":
        """Skip the fault-injection stage even if the config requests faults."""
        self._faults = False
        return self

    def without_observability(self) -> "SimulationBuilder":
        """Skip tracing/metrics/audit wiring (bare simulation only)."""
        self._observability = False
        return self

    def without_workload(self) -> "SimulationBuilder":
        """Build the network and policy but attach no traffic generator."""
        self._workload = False
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self) -> Simulation:
        """Run every stage in order and return the assembled bundle."""
        started = time.perf_counter()
        config = self.config

        fault_spec = None
        if self._faults and config.fault_spec:
            from repro.faults import execute_sabotage, parse_fault_spec

            fault_spec = parse_fault_spec(config.fault_spec)
            # Chaos directives (crash/die/hang) fire before any build
            # work: they exist to exercise the hardened executors.
            execute_sabotage(fault_spec)

        profile = get_profile(config.workload)
        mapping = make_mapping(config.mapping, profile.footprint_gb, config.scale)
        topology = build_topology(config.topology, mapping.num_modules)
        mechanism = make_mechanism(config.mechanism, wake_ns=config.wake_ns)
        link_mechanisms = resolve_link_mechanisms(
            config.mechanism_overrides, topology, mechanism, wake_ns=config.wake_ns
        )

        sim = Simulator()
        network = build_network(
            topology,
            mechanism,
            mapping,
            sim=sim,
            power_model=self._power_model,
            timing=self._timing,
            link_mechanisms={
                name: lm.mechanism for name, lm in link_mechanisms.items()
            },
        )

        simulation = Simulation(
            config=config,
            profile=profile,
            mapping=mapping,
            topology=topology,
            mechanism=mechanism,
            link_mechanisms=link_mechanisms,
            sim=sim,
            network=network,
            build_started=started,
        )

        if fault_spec is not None:
            from repro.faults import FaultInjector, build_plan

            fault_plan = build_plan(
                fault_spec,
                [link.name for link in network.all_links()],
                topology.num_modules,
                config.window_ns,
            )
            simulation.fault_plan = fault_plan
            if fault_plan.events:
                FaultInjector(fault_plan).install(network)

        if self._policy_factory is not None:
            simulation.policy = self._policy_factory(
                network, config.alpha, config.epoch_ns
            )
        else:
            simulation.policy = make_policy(
                config.policy, network, config.alpha, config.epoch_ns
            )

        if self._observability:
            self._build_observability(simulation)

        if self._workload:
            simulation.workload = ClosedLoopWorkload(
                network, profile, stop_ns=config.window_ns, seed=config.seed
            )
        return simulation

    # ------------------------------------------------------------------
    def _build_observability(self, simulation: Simulation) -> None:
        """Wire link-hour collection, tracing, and epoch metrics."""
        config = simulation.config
        policy = simulation.policy
        observers: List[Callable] = []

        if config.collect_link_hours and self._policy_observes(policy):
            from repro.harness.metrics import LinkHourCollector

            simulation.collector = LinkHourCollector()
            observers.append(simulation.collector)

        if config.audit and self._policy_observes(policy):
            from repro.validation.audit import EpochAuditor

            simulation.auditor = EpochAuditor(simulation)
            observers.append(simulation.auditor)

        if config.trace_path is not None or config.metrics_path is not None:
            from repro.obs import (
                EpochLinkMetrics,
                MetricsRegistry,
                Tracer,
                install_tracer,
                make_sink,
                parse_categories,
            )

            if config.trace_path is not None:
                tracer = Tracer(
                    make_sink(config.trace_path, config.trace_format),
                    parse_categories(config.trace_categories or None),
                )
                tracer.emit(
                    0.0,
                    "meta",
                    "trace.begin",
                    workload=config.workload,
                    topology=config.topology,
                    mechanism=config.mechanism,
                    policy=config.policy,
                    alpha=config.alpha,
                    window_ns=config.window_ns,
                    epoch_ns=config.epoch_ns,
                    seed=config.seed,
                    modules=simulation.topology.num_modules,
                )
                install_tracer(
                    tracer,
                    sim=simulation.sim,
                    network=simulation.network,
                    policy=policy,
                )
                if simulation.fault_plan is not None and tracer.wants("fault"):
                    tracer.emit(
                        0.0,
                        "fault",
                        "fault.plan",
                        spec=config.fault_spec,
                        events=len(simulation.fault_plan.events),
                        **simulation.fault_plan.summary(),
                    )
                simulation.tracer = tracer
            if config.metrics_path is not None:
                simulation.metrics = MetricsRegistry()
                observers.append(EpochLinkMetrics(simulation.metrics, simulation.sim))

        if observers and policy is not None:
            if len(observers) == 1:
                policy.epoch_observer = observers[0]
            else:

                def _fanout(links, epoch_ns, _obs=tuple(observers)):
                    for ob in _obs:
                        ob(links, epoch_ns)

                policy.epoch_observer = _fanout

    @staticmethod
    def _policy_observes(policy: Optional[Any]) -> bool:
        """Whether ``policy`` runs an epoch loop that can feed observers."""
        from repro.core.aware import NetworkAwarePolicy
        from repro.core.unaware import NetworkUnawarePolicy

        return isinstance(policy, (NetworkUnawarePolicy, NetworkAwarePolicy))
