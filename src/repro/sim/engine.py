"""Deterministic discrete-event simulation engine.

The whole reproduction is built on a single, very small discrete-event
core: a priority queue of ``(time, sequence, callback)`` triples.  The
sequence number breaks ties so that two events scheduled for the same
instant always fire in the order they were scheduled, which makes every
simulation bit-reproducible for a given seed.

Time is measured in nanoseconds and carried as a ``float``.  All of the
latencies in the paper (0.64 ns flit slots, 3.2 ns SERDES, 14 ns wakeups,
100 us epochs) are exactly representable or comfortably inside double
precision for the simulated windows we use (a few milliseconds).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is driven outside its contract, or when an
    event handler fails mid-run.

    Handler failures are wrapped (``raise ... from original``) with the
    simulation context a crash report needs: the handler's qualified
    name (which names the module and event kind, e.g.
    ``LinkController._finish_tx``), the sim time, and how many events
    had executed.  The structured fields mirror the message so harness
    code can report them without parsing.
    """

    #: Sim time (ns) at which the failing event fired.
    sim_time_ns: float = 0.0
    #: Qualified name of the failing event callback.
    handler: str = ""
    #: Events executed before the failure (including prior runs).
    events_done: int = 0


class Simulator:
    """A minimal deterministic event-driven simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    __slots__ = ("now", "_queue", "_seq", "_stopped", "_events_processed", "trace")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._stopped: bool = False
        self._events_processed: int = 0
        #: Optional :class:`repro.obs.Tracer` emitting ``engine.dispatch``
        #: events (one per executed callback, with queue depth).  Left
        #: ``None`` unless the ``engine`` trace category is enabled.
        self.trace: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` ns from now."""
        # One comparison rejects both negative delays and NaN (every
        # comparison against NaN is False); pushing directly instead of
        # delegating to schedule_at saves a call on the hot path.
        if not delay >= 0:
            if delay != delay:
                raise SimulationError(f"cannot schedule at NaN (now={self.now})")
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute time ``when`` ns."""
        # A single comparison rejects both past times and NaN: every
        # comparison against NaN is False, so a NaN ``when`` fails the
        # >= too.  Letting NaN into the heap would silently corrupt its
        # ordering invariant instead of failing loudly here.
        if not when >= self.now:
            if when != when:
                raise SimulationError(f"cannot schedule at NaN (now={self.now})")
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self.now})"
            )
        heapq.heappush(self._queue, (when, self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Clock semantics:

        * Events scheduled exactly at ``until`` are *not* executed; the
          clock is left at ``until`` so a subsequent ``run`` continues
          seamlessly (this holds even when the queue drains early).
        * When ``max_events`` exhausts the budget mid-window, the clock
          stays at the time of the last *executed* event -- never ahead
          of events still in the queue -- so callers can resume with
          another ``run`` call without the clock moving backwards.
          ``events_processed`` is credited on every exit path.
        * :meth:`stop` likewise leaves the clock at the in-flight
          event's time.

        The common case (no tracing, no event budget) runs in
        specialized tight loops; all variants execute events in an
        identical order.
        """
        queue = self._queue
        processed = 0
        self._stopped = False
        trace = self.trace
        heappop = heapq.heappop
        if trace is None and max_events is None:
            # Fast paths -- the loop body is small enough that hoisting
            # the trace/budget checks measurably speeds up dispatch.
            # The try/except around each callback is free on the happy
            # path (zero-cost exceptions on 3.11+; one setup op before)
            # and turns a handler failure into a diagnosable
            # SimulationError carrying sim time + handler identity.
            if until is None:
                while queue and not self._stopped:
                    when, _seq, callback = heappop(queue)
                    self.now = when
                    try:
                        callback()
                    except Exception as exc:
                        self._events_processed += processed
                        raise self._handler_error(callback, exc) from exc
                    processed += 1
            else:
                while queue and not self._stopped:
                    if queue[0][0] >= until:
                        self.now = until
                        self._events_processed += processed
                        return
                    when, _seq, callback = heappop(queue)
                    self.now = when
                    try:
                        callback()
                    except Exception as exc:
                        self._events_processed += processed
                        raise self._handler_error(callback, exc) from exc
                    processed += 1
                if not self._stopped and self.now < until:
                    self.now = until
            self._events_processed += processed
            return

        exhausted = False
        while queue and not self._stopped:
            when, _seq, callback = queue[0]
            if until is not None and when >= until:
                self.now = until
                self._events_processed += processed
                return
            heappop(queue)
            self.now = when
            if trace is not None:
                # Tracing branch kept out of the common path: with the
                # engine category disabled (the default) the loop body
                # is identical to an untraced engine.
                trace.emit(
                    when,
                    "engine",
                    "engine.dispatch",
                    depth=len(queue),
                    cb=getattr(callback, "__qualname__", "?"),
                )
            try:
                callback()
            except Exception as exc:
                self._events_processed += processed
                raise self._handler_error(callback, exc) from exc
            processed += 1
            if max_events is not None and processed >= max_events:
                exhausted = True
                break
        if until is not None and not self._stopped and not exhausted:
            self.now = max(self.now, until)
        self._events_processed += processed

    def stop(self) -> None:
        """Stop the current ``run`` after the in-flight event returns."""
        self._stopped = True

    def _handler_error(
        self, callback: Callable[[], None], exc: Exception
    ) -> SimulationError:
        """Wrap a handler failure with crash context (time, handler, count).

        An exception that is already a :class:`SimulationError` (e.g. a
        handler scheduling into the past) is still wrapped: the outer
        error pins *where in the run* it happened, the chained original
        says why.
        """
        name = getattr(callback, "__qualname__", None) or repr(callback)
        err = SimulationError(
            f"event handler {name} failed at t={self.now:g} ns "
            f"(after {self._events_processed} events, "
            f"{len(self._queue)} pending): {type(exc).__name__}: {exc}"
        )
        err.sim_time_ns = self.now
        err.handler = name
        err.events_done = self._events_processed
        return err

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0][0]
