"""Discrete-event simulation substrate."""

from repro.sim.engine import SimulationError, Simulator

__all__ = ["Simulator", "SimulationError"]
