"""Long-running experiment service (``repro-mnet serve``).

A local HTTP+JSON front end over the experiment harness for the
many-overlapping-queries workloads the ROADMAP's "serves heavy traffic"
north star describes: downstream power-model studies that issue bursts
of (largely duplicate) sweep requests against the simulator.

Requests are answered through a tiered path::

    HTTP request
        |-- single-flight join (identical in-flight request? attach)
        |-- memory tier   LruResultCache   (bounded, LRU-evicted)
        |-- disk tier     DiskCache        (persistent, shared with CLI)
        `-- simulate      Executor batch   (coalesced, bounded queue)

with admission control (429 when the simulation queue is full, 503
while draining), graceful SIGTERM drain, and ``/healthz`` / ``/stats``
/ ``/metrics`` endpoints wired into the observability layer's
:class:`~repro.obs.metrics.MetricsRegistry`.

See docs/serving.md for the API schema and worked examples.
"""

from repro.serve.http import ExperimentServer, ServeHandler, run_server
from repro.serve.lru import LruResultCache
from repro.serve.service import (
    AdmissionError,
    DrainingError,
    ExperimentService,
    LATENCY_EDGES_MS,
    QueueFullError,
    RequestTicket,
    ServiceSettings,
)

__all__ = [
    "AdmissionError",
    "DrainingError",
    "ExperimentServer",
    "ExperimentService",
    "LATENCY_EDGES_MS",
    "LruResultCache",
    "QueueFullError",
    "RequestTicket",
    "ServeHandler",
    "ServiceSettings",
    "run_server",
]
