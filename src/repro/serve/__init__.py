"""Long-running experiment service (``repro-mnet serve``).

A local HTTP+JSON front end over the experiment harness for the
many-overlapping-queries workloads the ROADMAP's "serves heavy traffic"
north star describes: downstream power-model studies that issue bursts
of (largely duplicate) sweep requests against the simulator.

Requests are answered through a tiered path::

    HTTP request
        |-- single-flight join (identical in-flight request? attach)
        |-- memory tier   LruResultCache   (bounded, LRU-evicted)
        |-- disk tier     ResultStore      (persistent, shared with CLI:
        |                                   JSON dir or SQLite backend)
        `-- simulate      Executor batch   (coalesced, bounded queue)

with admission control (429 when the simulation queue is full, 503
while draining), graceful SIGTERM drain, and ``/v1/healthz`` /
``/v1/stats`` / ``/v1/metrics`` endpoints wired into the observability
layer's :class:`~repro.obs.metrics.MetricsRegistry`.  The HTTP surface
is versioned under ``/v1/`` (unversioned paths still answer, marked
``Deprecation``), and :class:`~repro.serve.client.ServeClient` is the
supported Python caller.

The self-healing layer sits on top: a
:class:`~repro.serve.supervisor.Supervisor` heartbeat-checks the
dispatcher and executor and restarts them with capped, deterministic
backoff; per-config-family circuit breakers
(:class:`~repro.serve.breaker.BreakerBoard`) short-circuit families
that keep failing; and graceful degradation
(:mod:`repro.serve.degrade`) answers saturation and open breakers with
the closed-form analytical power model -- a 200 marked
``"approximate": true`` -- instead of an error.

See docs/serving.md for the API schema and worked examples, and
docs/resilience.md for supervision semantics.
"""

from repro.serve.client import (
    ServeBadRequestError,
    ServeClient,
    ServeConnectionError,
    ServeError,
    ServeRejectedError,
    ServeRunOutcome,
    ServeSimulationError,
    ServeTimeoutError,
)
from repro.serve.breaker import (
    BreakerBoard,
    BreakerDecision,
    BreakerOpenError,
    CircuitBreaker,
    config_family,
)
from repro.serve.degrade import (
    DEGRADE_MODES,
    DegradedResult,
    degraded_json,
    degraded_payload,
    make_degraded_result,
)
from repro.serve.http import (
    API_PREFIX,
    API_VERSION,
    ExperimentServer,
    ServeHandler,
    run_server,
)
from repro.serve.lru import LruResultCache
from repro.serve.service import (
    AdmissionError,
    DrainingError,
    ExperimentService,
    LATENCY_EDGES_MS,
    QueueFullError,
    RequestTicket,
    ServiceSettings,
)
from repro.serve.supervisor import SERVICE_STATES, Supervisor, backoff_delay

__all__ = [
    "API_PREFIX",
    "API_VERSION",
    "AdmissionError",
    "BreakerBoard",
    "BreakerDecision",
    "BreakerOpenError",
    "CircuitBreaker",
    "DEGRADE_MODES",
    "DegradedResult",
    "DrainingError",
    "ExperimentServer",
    "ExperimentService",
    "LATENCY_EDGES_MS",
    "LruResultCache",
    "QueueFullError",
    "RequestTicket",
    "SERVICE_STATES",
    "ServeBadRequestError",
    "ServeClient",
    "ServeConnectionError",
    "ServeError",
    "ServeHandler",
    "ServeRejectedError",
    "ServeRunOutcome",
    "ServeSimulationError",
    "ServeTimeoutError",
    "ServiceSettings",
    "Supervisor",
    "backoff_delay",
    "config_family",
    "degraded_json",
    "degraded_payload",
    "make_degraded_result",
]
