"""Analytical-model graceful degradation for the experiment service.

When the service cannot simulate a request right now — the admission
queue is saturated, or the config family's circuit breaker is open —
the alternative to a hard 429/503 is an *approximate* answer from the
closed-form full-power model
(:func:`repro.analysis.power_model.predict_full_power_breakdown`).
The prediction is purely structural (zero traffic assumed), so it is
instant, deterministic, and carries the model's declared accuracy
envelope from the validation subsystem so clients can judge whether
"approximately right now" beats "exactly right later".

Three properties the chaos tests pin:

* the degraded breakdown equals ``predict_full_power_breakdown(
  topology, 0.0, 0.0)`` **exactly** — no extra arithmetic between the
  model and the response;
* the response JSON is byte-stable for a given config (sorted keys,
  no timestamps, no randomness);
* degraded results never land in any cache tier — only the simulated
  path writes the LRU, the disk cache, or the journal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.io import result_to_cache_dict
from repro.validation.checks import LOGIC_DYN_RATIO_BOUNDS, REL_DIFFERENTIAL

__all__ = [
    "DEGRADE_MODES",
    "DEGRADE_REASONS",
    "ANALYTICAL_TOLERANCE",
    "DegradedResult",
    "make_degraded_result",
    "degraded_payload",
    "degraded_json",
]

#: Supported ``--degrade`` modes: ``off`` keeps PR-7 behavior (429 on
#: saturation, 503 on open breaker); ``analytical`` substitutes the
#: closed-form model.
DEGRADE_MODES = ("off", "analytical")

#: The reasons a response can be degraded.
DEGRADE_REASONS = ("queue_full", "breaker_open")

#: The analytical model's declared accuracy envelope, straight from the
#: validation subsystem's differential checks: every category except
#: ``logic_dyn`` is predicted with no modeling gap (relative tolerance
#: :data:`~repro.validation.checks.REL_DIFFERENTIAL` vs. a simulation
#: of the same utilization/access rate), while ``logic_dyn`` carries
#: the asymmetric simulated/predicted ratio band
#: :data:`~repro.validation.checks.LOGIC_DYN_RATIO_BOUNDS`.
ANALYTICAL_TOLERANCE: Dict = {
    "relative": REL_DIFFERENTIAL,
    "logic_dyn_ratio_bounds": list(LOGIC_DYN_RATIO_BOUNDS),
    "source": "validation.check_differential_power",
}


@dataclass(frozen=True)
class DegradedResult:
    """An analytical answer standing in for a simulation.

    Carries the same :class:`~repro.harness.experiment.ExperimentResult`
    shape a simulation would produce, plus the metadata that marks it
    approximate. Instances live only on the request ticket that created
    them — the cache-writing path (`_finish_simulated`) never sees one,
    which is what structurally guarantees degraded results stay out of
    every cache tier.
    """

    config: ExperimentConfig
    key: str
    reason: str
    result: ExperimentResult
    tolerance: Dict = field(default_factory=lambda: dict(ANALYTICAL_TOLERANCE))

    def __post_init__(self) -> None:
        if self.reason not in DEGRADE_REASONS:
            raise ValueError(
                f"unknown degraded reason {self.reason!r} "
                f"(expected one of {DEGRADE_REASONS})"
            )


def make_degraded_result(
    config: ExperimentConfig, key: str, reason: str
) -> DegradedResult:
    """Build the analytical stand-in for ``config``.

    The prediction uses zero utilization and zero access rate — the
    pure structural full-power answer — so smoke tests can assert the
    breakdown matches ``predict_full_power_breakdown(topology, 0.0,
    0.0)`` with ``==``, not approximately.
    """
    from repro.analysis.power_model import predict_experiment_result

    result = predict_experiment_result(
        config, avg_link_utilization=0.0, accesses_per_ns=0.0
    )
    return DegradedResult(config=config, key=key, reason=reason, result=result)


def degraded_payload(degraded: DegradedResult) -> Dict:
    """The HTTP response body for a degraded answer (JSON-safe).

    Shaped like the simulated-response body (``key``/``tier``/
    ``result``) so clients parse both the same way, with the degraded
    extras alongside: ``approximate`` is always True, ``degraded_reason``
    says why simulation was skipped, and ``tolerance`` is the model's
    accuracy envelope. Contains nothing time- or process-dependent, so
    serializing it with sorted keys is byte-stable across runs.
    """
    return {
        "key": degraded.key,
        "tier": "degraded",
        "approximate": True,
        "degraded_reason": degraded.reason,
        "tolerance": dict(degraded.tolerance),
        "result": result_to_cache_dict(degraded.result),
    }


def degraded_json(degraded: DegradedResult) -> str:
    """Canonical byte-stable JSON encoding of a degraded response."""
    return json.dumps(degraded_payload(degraded), sort_keys=True)
