"""Per-config-family circuit breakers for the experiment service.

A *family* is the ``topology/mechanism`` pair of a request — the axis
along which simulation failures cluster in practice: a topology whose
builder crashes, a mechanism whose mode table wedges the engine, an
isolate that times out for every point of one grid. Each family gets an
independent three-state breaker:

``closed``
    Normal operation. Every structured :class:`~repro.harness.executor.
    FailedResult` for the family increments a consecutive-failure
    counter; any success resets it. When the counter reaches the
    configured threshold the breaker **trips** to ``open``.

``open``
    Requests for the family are short-circuited without touching the
    queue or the executor. Depending on the service's degrade mode they
    are answered by the analytical model or rejected with a 503 that
    carries ``Retry-After`` equal to the remaining cooldown. After
    ``cooldown_s`` the breaker moves to ``half_open``.

``half_open``
    Exactly one request is admitted as a *probe*; everything else stays
    short-circuited. If the probe succeeds the breaker closes and the
    failure counter resets; if it fails (or the probe's owner vanishes)
    the breaker re-opens for a fresh cooldown.

Breakers never see cache hits — the service consults the board only
after the memory and disk tiers miss, so a poisoned family's cached
points keep serving at full speed while fresh simulation is gated.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .service import AdmissionError

__all__ = [
    "BREAKER_STATES",
    "BreakerOpenError",
    "BreakerDecision",
    "CircuitBreaker",
    "BreakerBoard",
    "config_family",
]

#: Breaker states in display order (index = StateGauge numeric value).
BREAKER_STATES = ("closed", "open", "half_open")


class BreakerOpenError(AdmissionError):
    """Raised when an open breaker short-circuits a request.

    Maps to HTTP 503 with ``Retry-After`` set to the remaining cooldown,
    rounded up to a whole second so clients never retry early.
    """

    http_status = 503

    def __init__(self, family: str, remaining_s: float) -> None:
        retry = max(1.0, float(-(-remaining_s // 1)))  # ceil, >= 1
        super().__init__(
            f"circuit breaker open for config family {family!r}; "
            f"retry in {retry:.0f}s"
        )
        self.retry_after_s = retry
        self.family = family
        self.remaining_s = remaining_s


def config_family(config) -> str:
    """The breaker family of an :class:`ExperimentConfig`.

    Failures cluster by simulation substrate, not by workload, so the
    family is ``"{topology}/{mechanism}"`` — coarse enough that a
    poisoned family trips quickly, fine enough that ``daisychain/FP``
    tripping never gates ``star/VWL`` traffic.
    """
    return f"{config.topology}/{config.mechanism}"


@dataclass
class BreakerDecision:
    """Outcome of asking a breaker whether a request may proceed."""

    #: True when the request may be queued for simulation.
    allowed: bool
    #: True when the request is the single half-open probe. The caller
    #: must report the probe's outcome via ``on_result(..., probe=True)``.
    probe: bool = False
    #: Seconds of cooldown remaining when ``allowed`` is False.
    remaining_s: float = 0.0


class CircuitBreaker:
    """One family's closed → open → half-open state machine.

    Not thread-safe on its own; :class:`BreakerBoard` serializes all
    access under its lock. ``clock`` is injectable (monotonic seconds)
    so tests can step time without sleeping.
    """

    def __init__(
        self,
        family: str,
        threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"breaker cooldown must be > 0, got {cooldown_s}")
        self.family = family
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False
        self.trips = 0
        self.recoveries = 0

    def _maybe_half_open(self, now: float) -> None:
        if self.state == "open" and now - self.opened_at >= self.cooldown_s:
            self.state = "half_open"
            self.probe_in_flight = False

    def admit(self) -> BreakerDecision:
        """Decide whether a fresh simulation for this family may run."""
        now = self.clock()
        self._maybe_half_open(now)
        if self.state == "closed":
            return BreakerDecision(allowed=True)
        if self.state == "half_open" and not self.probe_in_flight:
            self.probe_in_flight = True
            return BreakerDecision(allowed=True, probe=True)
        remaining = max(0.0, self.cooldown_s - (now - self.opened_at))
        if self.state == "half_open":
            # A probe is already out; treat as open with a short horizon.
            remaining = max(remaining, 1.0)
        return BreakerDecision(allowed=False, remaining_s=remaining)

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.opened_at = now
        self.probe_in_flight = False
        self.trips += 1

    def on_result(self, failed: bool, probe: bool = False) -> None:
        """Fold one simulation outcome into the state machine.

        ``failed`` is True only for structured ``FailedResult``s —
        admission rejections and degraded answers never reach here.
        ``probe`` marks the outcome of the single half-open probe.
        """
        now = self.clock()
        if probe:
            self.probe_in_flight = False
            if failed:
                self._trip(now)
            else:
                self.state = "closed"
                self.consecutive_failures = 0
                self.recoveries += 1
            return
        if failed:
            self.consecutive_failures += 1
            if self.state == "closed" and self.consecutive_failures >= self.threshold:
                self._trip(now)
        else:
            self.consecutive_failures = 0
            if self.state == "open":
                # A non-probe success (e.g. a request admitted just
                # before the trip) is still evidence of recovery.
                self.state = "closed"
                self.recoveries += 1

    def abandon_probe(self) -> None:
        """Release the half-open probe slot without an outcome.

        Used when the probe's request dies before simulating (drain,
        dispatcher restart) so the family is not wedged forever.
        """
        self.probe_in_flight = False

    def snapshot(self) -> Dict:
        """JSON-safe view of the breaker for /stats."""
        now = self.clock()
        self._maybe_half_open(now)
        remaining = 0.0
        if self.state == "open":
            remaining = max(0.0, self.cooldown_s - (now - self.opened_at))
        return {
            "family": self.family,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "cooldown_remaining_s": round(remaining, 3),
        }


class BreakerBoard:
    """Thread-safe collection of per-family breakers plus metrics.

    The board lazily creates one :class:`CircuitBreaker` per family on
    first sight and keeps the ``serve.breaker.*`` instruments current:
    ``serve.breaker.trips`` / ``short_circuits`` / ``probes`` /
    ``recoveries`` counters, a ``serve.breaker.open`` gauge (number of
    families currently not closed), and one
    :class:`~repro.obs.metrics.StateGauge` per family.

    A ``threshold`` of 0 disables the board: every decision allows.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 30.0,
        registry=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"breaker threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.registry = registry
        self.clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    @property
    def enabled(self) -> bool:
        """Whether breakers are active (threshold > 0)."""
        return self.threshold > 0

    def _get(self, family: str) -> CircuitBreaker:
        b = self._breakers.get(family)
        if b is None:
            b = self._breakers[family] = CircuitBreaker(
                family,
                threshold=self.threshold,
                cooldown_s=self.cooldown_s,
                clock=self.clock,
            )
        return b

    def _publish(self, breaker: CircuitBreaker) -> None:
        if self.registry is None:
            return
        gauge = self.registry.state_gauge(
            f"serve.breaker.state.{breaker.family}", BREAKER_STATES
        )
        gauge.set_state(breaker.state)
        open_count = sum(
            1 for b in self._breakers.values() if b.state != "closed"
        )
        self.registry.gauge("serve.breaker.open").set(float(open_count))

    def admit(self, family: str) -> BreakerDecision:
        """Gate one fresh-simulation request for ``family``."""
        if not self.enabled:
            return BreakerDecision(allowed=True)
        with self._lock:
            breaker = self._get(family)
            decision = breaker.admit()
            if self.registry is not None:
                if decision.probe:
                    self.registry.counter("serve.breaker.probes").inc()
                if not decision.allowed:
                    self.registry.counter("serve.breaker.short_circuits").inc()
                self._publish(breaker)
            return decision

    def on_result(self, family: str, failed: bool, probe: bool = False) -> None:
        """Report a simulation outcome for ``family`` to its breaker."""
        if not self.enabled:
            return
        with self._lock:
            breaker = self._get(family)
            before = breaker.state
            breaker.on_result(failed, probe=probe)
            if self.registry is not None:
                if breaker.state == "open" and before != "open":
                    self.registry.counter("serve.breaker.trips").inc()
                if breaker.state == "closed" and before != "closed":
                    self.registry.counter("serve.breaker.recoveries").inc()
                self._publish(breaker)

    def abandon_probe(self, family: str) -> None:
        """Release ``family``'s probe slot without recording an outcome."""
        if not self.enabled:
            return
        with self._lock:
            b = self._breakers.get(family)
            if b is not None:
                b.abandon_probe()

    def open_families(self) -> List[str]:
        """Families whose breaker is currently not closed."""
        with self._lock:
            now = self.clock()
            for b in self._breakers.values():
                b._maybe_half_open(now)
            return sorted(
                f for f, b in self._breakers.items() if b.state != "closed"
            )

    def snapshot(self) -> Dict:
        """JSON-safe view of every breaker, keyed by family."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "families": {
                    f: b.snapshot() for f, b in sorted(self._breakers.items())
                },
            }
