"""Python client SDK for the ``repro-mnet serve`` HTTP API (v1).

:class:`ServeClient` wraps the versioned ``/v1/`` surface in typed
calls: :meth:`ServeClient.run` submits one config and returns the
decoded :class:`~repro.harness.experiment.ExperimentResult`,
:meth:`ServeClient.stats` / :meth:`ServeClient.healthz` read the
observability endpoints, and every non-2xx answer is raised as a
:class:`ServeError` subclass carrying the HTTP status and decoded
body::

    from repro.serve.client import ServeClient, ServeRejectedError

    client = ServeClient("http://127.0.0.1:8642")
    try:
        result = client.run({"workload": "mixB", "policy": "aware"})
    except ServeRejectedError as exc:
        print("busy, retry after", exc.retry_after_s)

Backpressure handling is built in: a 429 (bounded queue full) is
retried up to ``max_retries`` times, honouring the server's
``Retry-After`` header between attempts.  A 503 (draining / breaker
open) is *not* retried -- the server said stop, and a drain rarely
reverses -- it surfaces immediately as :class:`ServeRejectedError`.

Only the Python standard library is used (``urllib``), matching the
project's no-dependency rule.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.io import config_to_dict, result_from_cache_dict
from repro.serve.http import API_PREFIX

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeConnectionError",
    "ServeBadRequestError",
    "ServeRejectedError",
    "ServeTimeoutError",
    "ServeSimulationError",
    "ServeRunOutcome",
]


class ServeError(Exception):
    """Base class for every client-visible serve failure.

    ``status`` is the HTTP status code (``None`` for transport-level
    failures) and ``payload`` the decoded response body (``{}`` when
    there was none).
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload if payload is not None else {}


class ServeConnectionError(ServeError):
    """The server could not be reached (or hung up mid-response)."""


class ServeBadRequestError(ServeError):
    """The server rejected the request body as invalid (HTTP 400)."""


class ServeRejectedError(ServeError):
    """Admission control refused the request (HTTP 429 or 503).

    ``retry_after_s`` carries the server's ``Retry-After`` hint when it
    sent one (429 responses do; 503 drain responses may not).
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message, status=status, payload=payload)
        self.retry_after_s = retry_after_s


class ServeTimeoutError(ServeError):
    """The request exceeded the server's wait budget (HTTP 504)."""


class ServeSimulationError(ServeError):
    """The simulation itself failed (HTTP 500, structured failure).

    ``kind`` and ``attempts`` mirror the structured
    :class:`~repro.harness.executor.FailedResult` record the server
    reported.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict] = None,
        kind: str = "unknown",
        attempts: int = 0,
    ) -> None:
        super().__init__(message, status=status, payload=payload)
        self.kind = kind
        self.attempts = attempts


@dataclass
class ServeRunOutcome:
    """Everything one ``/v1/run`` answer carried.

    ``result`` is the decoded experiment result (analytical stand-in
    when ``approximate`` is true), ``tier`` names the cache tier that
    served it (``memory`` / ``disk`` / ``simulated`` / ``degraded``),
    ``summary`` is the human-readable block byte-identical to
    ``repro-mnet run`` stdout (empty for degraded answers), and
    ``payload`` keeps the raw response body for anything else.
    """

    key: str
    tier: str
    result: ExperimentResult
    summary: str = ""
    approximate: bool = False
    payload: Dict = field(default_factory=dict)


def _error_message(payload: Dict, fallback: str) -> str:
    """Best-effort human message out of an error response body."""
    error = payload.get("error")
    if isinstance(error, dict):
        return str(error.get("message", fallback))
    if isinstance(error, str):
        return error
    return fallback


class ServeClient:
    """HTTP client for one ``repro-mnet serve`` instance.

    ``base_url`` is the server root (e.g. ``http://127.0.0.1:8642``);
    the client always calls the versioned ``/v1/`` endpoints.
    ``timeout_s`` bounds each HTTP round trip -- it must comfortably
    exceed the server's simulation latency, since a cache-missing
    ``run`` holds the connection until the result is ready.
    ``max_retries`` bounds the automatic 429 retry loop and
    ``retry_cap_s`` clips how long a single ``Retry-After`` hint is
    honoured.  Instances hold no sockets open and are safe to share
    across threads.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 300.0,
        max_retries: int = 3,
        retry_cap_s: float = 10.0,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.retry_cap_s = retry_cap_s
        self._sleep = sleep

    # -- transport -----------------------------------------------------

    def request(
        self, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, Dict, Dict]:
        """One raw round trip: ``(status, headers, decoded body)``.

        ``body`` turns the request into a JSON POST; ``None`` means
        GET.  Error statuses are *returned*, not raised -- only
        transport failures raise (:class:`ServeConnectionError`).  The
        headers mapping is case-insensitive-by-construction: keys are
        lower-cased.
        """
        url = self.base_url + path
        data = (
            None
            if body is None
            else json.dumps(body, sort_keys=True).encode("utf-8")
        )
        req = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                status = resp.status
                headers = {k.lower(): v for k, v in resp.headers.items()}
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            status = exc.code
            headers = {k.lower(): v for k, v in (exc.headers or {}).items()}
            raw = exc.read()
        except (urllib.error.URLError, OSError) as exc:
            raise ServeConnectionError(
                f"cannot reach {url}: {exc}"
            ) from exc
        if not raw:
            return status, headers, {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeConnectionError(
                f"non-JSON response from {url} (status {status})"
            ) from exc
        return status, headers, payload

    @staticmethod
    def _raise_for(status: int, headers: Dict, payload: Dict) -> None:
        """Map an error status onto the :class:`ServeError` hierarchy."""
        if 200 <= status < 300:
            return
        message = _error_message(payload, f"HTTP {status}")
        if status == 400:
            raise ServeBadRequestError(message, status=status, payload=payload)
        if status in (429, 503):
            retry_after = headers.get("retry-after")
            raise ServeRejectedError(
                message,
                status=status,
                payload=payload,
                retry_after_s=float(retry_after) if retry_after else None,
            )
        if status == 504:
            raise ServeTimeoutError(message, status=status, payload=payload)
        if status == 500:
            error = payload.get("error")
            error = error if isinstance(error, dict) else {}
            raise ServeSimulationError(
                message,
                status=status,
                payload=payload,
                kind=str(error.get("kind", "unknown")),
                attempts=int(error.get("attempts", 0)),
            )
        raise ServeError(message, status=status, payload=payload)

    # -- endpoints -----------------------------------------------------

    def run(
        self, config: Union[ExperimentConfig, Dict]
    ) -> ExperimentResult:
        """Run (or fetch) one experiment; returns the decoded result.

        ``config`` may be an :class:`ExperimentConfig` or a plain dict
        in the batch-spec shape.  Retries on 429 per the client's
        retry policy; all other failures raise their
        :class:`ServeError` subclass.
        """
        return self.run_detailed(config).result

    def run_detailed(
        self, config: Union[ExperimentConfig, Dict]
    ) -> ServeRunOutcome:
        """Like :meth:`run` but returns the full :class:`ServeRunOutcome`
        (cache tier, summary text, approximate flag, raw payload)."""
        if isinstance(config, ExperimentConfig):
            config = config_to_dict(config)
        attempts = 0
        while True:
            status, headers, payload = self.request(
                f"{API_PREFIX}/run", body={"config": config}
            )
            if status == 429 and attempts < self.max_retries:
                attempts += 1
                retry_after = headers.get("retry-after")
                delay = float(retry_after) if retry_after else 0.05
                self._sleep(max(0.0, min(delay, self.retry_cap_s)))
                continue
            self._raise_for(status, headers, payload)
            try:
                result = result_from_cache_dict(payload["result"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ServeError(
                    f"malformed run response: {exc}",
                    status=status,
                    payload=payload,
                ) from exc
            return ServeRunOutcome(
                key=str(payload.get("key", "")),
                tier=str(payload.get("tier", "")),
                result=result,
                summary=str(payload.get("summary", "")),
                approximate=bool(payload.get("approximate", False)),
                payload=payload,
            )

    def stats(self) -> Dict:
        """The service counters (``GET /v1/stats``)."""
        status, headers, payload = self.request(f"{API_PREFIX}/stats")
        self._raise_for(status, headers, payload)
        return payload

    def metrics(self) -> Dict:
        """The raw metrics dump (``GET /v1/metrics``)."""
        status, headers, payload = self.request(f"{API_PREFIX}/metrics")
        self._raise_for(status, headers, payload)
        return payload

    def healthz(self) -> Dict:
        """The health report (``GET /v1/healthz``), whatever the status.

        Health is a report, not a precondition: a draining server
        answers 503 with a meaningful body, so this method returns the
        body instead of raising (transport failures still raise
        :class:`ServeConnectionError`).
        """
        _status, _headers, payload = self.request(f"{API_PREFIX}/healthz")
        return payload
