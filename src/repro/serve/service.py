"""The long-running experiment service behind ``repro-mnet serve``.

:class:`ExperimentService` answers experiment requests through a tiered
path -- in-memory :class:`~repro.serve.lru.LruResultCache` (keyed by
:meth:`~repro.harness.experiment.ExperimentConfig.cache_key`), then the
persistent :class:`~repro.harness.diskcache.DiskCache`, then an actual
simulation on the configured
:class:`~repro.harness.executor.Executor` -- with the serving
behaviours a shared simulator needs:

* **single-flight deduplication** -- N concurrent requests for the same
  cache key attach to one :class:`RequestTicket`; exactly one
  simulation runs and every waiter gets its result (the joiners are
  counted as ``dedup_coalesced``);
* **request batching** -- cache misses queue up and a dispatcher thread
  coalesces them (a short linger window, then up to ``batch_max``
  configs) into one ``Executor.run_many`` call, so a
  :class:`~repro.harness.executor.ParallelExecutor` overlaps them;
* **admission control / backpressure** -- at most ``queue_limit``
  simulations may be outstanding (queued + in flight); requests beyond
  that are rejected with :class:`QueueFullError` (HTTP 429) and
  requests after drain began with :class:`DrainingError` (HTTP 503);
* **graceful drain** -- :meth:`ExperimentService.drain` stops admitting
  work, finishes every admitted ticket, flushes and closes the journal,
  and joins the dispatcher;
* **observability** -- every counter is mirrored into a
  :class:`~repro.obs.metrics.MetricsRegistry` (``serve.*`` namespace,
  latency histogram included) and :meth:`ExperimentService.stats`
  returns the JSON payload the ``/stats`` endpoint serves;
* **self-healing** -- a :class:`~repro.serve.supervisor.Supervisor`
  heartbeat-checks the dispatcher thread and the executor pool and
  restarts whichever hangs or dies; per-config-family
  :class:`~repro.serve.breaker.CircuitBreaker`\\ s short-circuit
  families that keep failing; and with ``degrade="analytical"``, a
  saturated queue or open breaker answers with the closed-form power
  model (``"approximate": true``) instead of an error -- see
  :mod:`repro.serve.degrade`.

Results a simulation produces are written back to both cache tiers (and
the journal, when attached), so a repeat request is a memory-tier hit
and a restarted server warms from disk.  Degraded (analytical) answers
are **never** written to any tier: only :meth:`_finish_simulated`
touches the caches, and degraded tickets never reach it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.harness.diskcache import DiskCache
from repro.harness.executor import (
    Executor,
    ExperimentOutcome,
    FailedResult,
    SerialExecutor,
    with_heartbeat,
)
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.journal import SweepJournal
from repro.obs.metrics import MetricsRegistry
from repro.serve.degrade import (
    DEGRADE_MODES,
    DegradedResult,
    make_degraded_result,
)
from repro.serve.lru import LruResultCache
from repro.serve.supervisor import Supervisor

__all__ = [
    "AdmissionError",
    "QueueFullError",
    "DrainingError",
    "RequestTicket",
    "ServiceSettings",
    "ExperimentService",
    "LATENCY_EDGES_MS",
]

#: Latency histogram bucket edges (milliseconds).
LATENCY_EDGES_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 120000.0,
)


class AdmissionError(RuntimeError):
    """A request the service refused to admit.

    ``http_status`` is the HTTP response code the serving layer maps
    this to; ``retry_after_s`` (when not None) becomes a ``Retry-After``
    header hinting when the client should try again.
    """

    http_status = 503
    retry_after_s: Optional[float] = None


class QueueFullError(AdmissionError):
    """Backpressure: the bounded simulation queue is at capacity (429)."""

    http_status = 429
    retry_after_s = 1.0


class DrainingError(AdmissionError):
    """The service is draining and refuses new work (503)."""

    http_status = 503


@dataclass(frozen=True)
class ServiceSettings:
    """Tunables for :class:`ExperimentService`.

    ``queue_limit`` bounds *outstanding simulations* (queued plus
    dispatched), not total requests -- cache hits and coalesced
    duplicates are always admitted.  ``batch_window_s`` is the linger
    the dispatcher waits after the first queued miss so concurrent
    misses coalesce into one executor batch of up to ``batch_max``
    configs.  ``request_timeout_s`` is the default budget
    :meth:`ExperimentService.execute` waits for a ticket.

    Self-healing knobs: ``degrade`` selects what a saturated queue or
    open breaker answers with (``"off"`` = hard 429/503, ``"analytical"``
    = closed-form model); ``breaker_threshold`` consecutive structured
    failures trip a config family's breaker for ``breaker_cooldown_s``
    (0 disables breakers); ``heartbeat_s`` paces the supervisor (0
    disables supervision), with staleness, restart-budget, and backoff
    shaping via ``stale_after_s`` (None = 10 heartbeats),
    ``max_restarts``, ``backoff_base_s`` / ``backoff_cap_s`` /
    ``backoff_jitter_s``, and ``supervisor_seed`` (deterministic
    jitter).

    ``socket_timeout_s`` is the per-connection socket timeout the HTTP
    handler applies; the default (None) resolves to 30 s.  It bounds
    only the idle read for the *next* request on a keep-alive
    connection -- a request already being served waits on its ticket,
    not the socket -- so it is deliberately independent of
    ``request_timeout_s``: keeping it short lets dead clients release
    their handler threads quickly (drain joins handler threads).
    """

    queue_limit: int = 64
    memory_entries: int = 512
    batch_window_s: float = 0.01
    batch_max: int = 16
    request_timeout_s: float = 600.0
    socket_timeout_s: Optional[float] = None
    degrade: str = "off"
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    heartbeat_s: float = 1.0
    stale_after_s: Optional[float] = None
    max_restarts: int = 5
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 30.0
    backoff_jitter_s: float = 0.05
    supervisor_seed: int = 0
    degraded_hold_s: float = 30.0

    def __post_init__(self) -> None:
        if self.degrade not in DEGRADE_MODES:
            raise ValueError(
                f"degrade must be one of {DEGRADE_MODES}, got {self.degrade!r}"
            )
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be > 0, got {self.breaker_cooldown_s}"
            )
        if self.heartbeat_s < 0:
            raise ValueError(
                f"heartbeat_s must be >= 0, got {self.heartbeat_s}"
            )
        if self.socket_timeout_s is not None and self.socket_timeout_s <= 0:
            raise ValueError(
                f"socket_timeout_s must be > 0, got {self.socket_timeout_s}"
            )

    @property
    def effective_socket_timeout_s(self) -> float:
        """The socket timeout the HTTP layer applies per connection.

        ``socket_timeout_s`` when set; otherwise 30 s.  Independent of
        ``request_timeout_s`` by design -- see the class docstring.
        """
        if self.socket_timeout_s is not None:
            return self.socket_timeout_s
        return 30.0


class RequestTicket:
    """One admitted request (and everyone coalesced onto it).

    Exactly one of ``result`` / ``failure`` / ``rejection`` /
    ``degraded`` is set when :meth:`done` becomes True.  ``tier``
    records which layer answered: ``"memory"``, ``"disk"``,
    ``"simulated"`` (also set on failures), or ``"degraded"`` when the
    analytical model answered in place of a simulation.
    ``breaker_probe`` marks the single request a half-open circuit
    breaker admitted to test its family.
    """

    def __init__(self, key: str, config: ExperimentConfig) -> None:
        self.key = key
        self.config = config
        self.submitted_at = time.monotonic()
        self.waiters = 1
        self.tier: Optional[str] = None
        self.result: Optional[ExperimentResult] = None
        self.failure: Optional[FailedResult] = None
        self.rejection: Optional[AdmissionError] = None
        self.degraded: Optional[DegradedResult] = None
        self.breaker_probe = False
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        """True once an outcome (result, failure, or rejection) is set."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket resolves; False on timeout."""
        return self._event.wait(timeout)

    def _resolve(self) -> None:
        self._event.set()


class ExperimentService:
    """Tiered, deduplicating, backpressured experiment request broker.

    Thread-safe: any number of threads may call :meth:`submit` /
    :meth:`execute` / :meth:`stats` concurrently; one internal
    dispatcher thread owns executor batches and journal writes.
    Call :meth:`start` before submitting and :meth:`drain` to shut
    down.
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        disk_cache: Optional[DiskCache] = None,
        settings: Optional[ServiceSettings] = None,
        journal: Optional[SweepJournal] = None,
        registry: Optional[MetricsRegistry] = None,
        breakers=None,
        supervisor: Optional[Supervisor] = None,
    ) -> None:
        # Imported here, not at module top: breaker.py imports this
        # module for AdmissionError, so the reverse import must be lazy.
        from repro.serve.breaker import BreakerBoard

        self.settings = settings if settings is not None else ServiceSettings()
        self.disk_cache = disk_cache
        self.journal = journal
        self.registry = registry if registry is not None else MetricsRegistry()
        self.memory = LruResultCache(self.settings.memory_entries)
        base_executor = executor if executor is not None else SerialExecutor()
        #: The executor, wrapped so worker activity heartbeats the
        #: supervisor (a no-op wrapper when supervision is disabled).
        self.executor = with_heartbeat(base_executor, self._executor_beat)
        #: Per-config-family circuit breakers (injectable for tests).
        self.breakers = (
            breakers
            if breakers is not None
            else BreakerBoard(
                threshold=self.settings.breaker_threshold,
                cooldown_s=self.settings.breaker_cooldown_s,
                registry=self.registry,
            )
        )
        #: Component watchdog; None when ``heartbeat_s`` is 0.
        self.supervisor = supervisor
        if supervisor is None and self.settings.heartbeat_s > 0:
            self.supervisor = Supervisor(
                registry=self.registry,
                heartbeat_s=self.settings.heartbeat_s,
                stale_after_s=self.settings.stale_after_s,
                max_restarts=self.settings.max_restarts,
                backoff_base_s=self.settings.backoff_base_s,
                backoff_cap_s=self.settings.backoff_cap_s,
                jitter_s=self.settings.backoff_jitter_s,
                seed=self.settings.supervisor_seed,
                degraded_hold_s=self.settings.degraded_hold_s,
            )
        if self.supervisor is not None:
            self.supervisor.add_context(self._breaker_context)

        self._cond = threading.Condition()
        #: Live (unresolved) tickets by cache key -- the single-flight map.
        self._tickets: Dict[str, RequestTicket] = {}
        self._queue: Deque[RequestTicket] = deque()
        self._in_flight = 0
        self._probing = 0
        self._draining = False
        self._started_at = time.monotonic()
        self._dispatcher: Optional[threading.Thread] = None
        #: Dispatcher restart epoch: a restarted dispatcher bumps this,
        #: and callbacks from an older generation are discarded.
        self._generation = 0
        #: Tickets handed to the executor by the *current* generation.
        self._dispatching: List[RequestTicket] = []
        #: Test hook: when set to an Event, the dispatcher blocks on it
        #: at the top of its loop -- how chaos tests simulate a hang.
        self._test_hang: Optional[threading.Event] = None
        self._latencies_ms: Deque[float] = deque(maxlen=2048)
        self._latency_hist = self.registry.histogram(
            "serve.latency_ms", LATENCY_EDGES_MS
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ExperimentService":
        """Start the dispatcher thread and supervisor (idempotent)."""
        with self._cond:
            if self._dispatcher is None:
                self._spawn_dispatcher_locked()
        if self.supervisor is not None:
            self.supervisor.register(
                "dispatcher",
                alive=self._dispatcher_alive,
                restart=self._restart_dispatcher,
            )
            self.supervisor.register(
                "executor",
                alive=lambda: True,
                restart=self._executor_stalled,
                armed=lambda: self._in_flight > 0,
            )
            self.supervisor.start()
        return self

    def _spawn_dispatcher_locked(self) -> None:
        """Start a dispatcher thread for the current generation."""
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            args=(self._generation,),
            name=f"serve-dispatcher-{self._generation}",
            daemon=True,
        )
        self._dispatcher.start()

    def _dispatcher_alive(self) -> bool:
        """Supervisor liveness probe for the dispatcher thread."""
        thread = self._dispatcher
        return thread is not None and thread.is_alive()

    def _restart_dispatcher(self) -> None:
        """Replace the dispatcher thread (supervisor restart callback).

        Bumps the generation so the old thread -- and any executor
        callbacks it still owns -- are discarded, re-queues every
        unresolved ticket the old generation had dispatched (at the
        front, preserving admission order), and spawns a fresh thread.
        Admitted requests are therefore never dropped: their tickets
        simply ride the next generation's batches.
        """
        with self._cond:
            self._generation += 1
            stale = [t for t in self._dispatching if not t.done]
            self._dispatching = []
            for ticket in reversed(stale):
                self._queue.appendleft(ticket)
            self._in_flight -= len(stale)
            self.registry.gauge("serve.in_flight").set(self._in_flight)
            self.registry.gauge("serve.queue_depth").set(len(self._queue))
            self._spawn_dispatcher_locked()
            self._cond.notify_all()

    def _executor_stalled(self) -> None:
        """Supervisor restart callback for a stale executor pool.

        The pool itself is rebuilt per batch by
        :class:`~repro.harness.executor.ParallelExecutor`'s own
        containment, so there is nothing to re-create here; the restart
        exists so repeated stalls consume the restart budget and
        escalate the service to ``unhealthy``.
        """
        self._bump_unlocked("serve.supervisor.executor_stalls")

    def _executor_beat(self, event: str) -> None:
        """Heartbeat hook installed on the executor.

        Worker activity refreshes both the executor component and the
        dispatcher (which is blocked inside ``run_many`` while a batch
        runs, so it cannot beat for itself).  Pool rebuilds and worker
        restarts are counted and mark the service degraded.
        """
        sup = self.supervisor
        if sup is not None:
            sup.beat("executor")
            sup.beat("dispatcher")
        if event in ("pool_rebuild", "worker_restart"):
            self._bump_unlocked("serve.supervisor.worker_restarts")
            if sup is not None:
                sup.note_degraded(event)

    def _breaker_context(self) -> Optional[str]:
        """Degradation probe: report open breaker families, if any."""
        families = self.breakers.open_families()
        if families:
            return "breaker_open:" + ",".join(families)
        return None

    def warm_start(self, journal: SweepJournal) -> int:
        """Seed the memory tier from a resumed journal's replayed results.

        Returns the number of entries loaded.  Call before :meth:`start`
        (or at least before traffic) -- it writes only the memory tier.
        """
        for key, result in journal.results.items():
            self.memory.put(key, result)
        return len(journal.results)

    def begin_drain(self) -> None:
        """Stop admitting new requests; already-admitted work continues."""
        with self._cond:
            self._draining = True
            self.registry.gauge("serve.draining").set(1.0)
            self._cond.notify_all()
        if self.supervisor is not None:
            self.supervisor.set_draining(True)

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` (or :meth:`drain`) was called."""
        with self._cond:
            return self._draining

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted ticket resolved; False on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: not self._tickets, timeout)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, finish admitted work,
        flush and close the journal, stop the dispatcher.

        Returns True when everything in flight completed within
        ``timeout`` (None = wait forever).
        """
        self.begin_drain()
        idle = self.wait_idle(timeout)
        if self.supervisor is not None:
            self.supervisor.stop()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0 if idle else 0.5)
        if self.journal is not None:
            self.journal.close()
        return idle

    # -- request path --------------------------------------------------
    def submit(self, config: ExperimentConfig) -> RequestTicket:
        """Admit one request; returns its (possibly shared) ticket.

        Resolution order: join an identical in-flight ticket
        (single-flight), hit the memory tier, hit the disk tier, pass
        the config family's circuit breaker, or queue a simulation.
        Raises :class:`DrainingError` after drain began,
        :class:`~repro.serve.breaker.BreakerOpenError` when the family's
        breaker is open, and :class:`QueueFullError` when the simulation
        queue is at capacity -- except that with
        ``settings.degrade="analytical"`` the latter two resolve the
        ticket with a :class:`~repro.serve.degrade.DegradedResult`
        instead of raising.  A ticket that *joiners* are already
        attached to is resolved with the rejection so every waiter sees
        it.  Breakers only gate fresh simulations: cache hits for a
        tripped family keep serving at full speed.
        """
        key = config.cache_key()
        with self._cond:
            self._bump("serve.requests_total")
            if self._draining:
                self._bump("serve.rejected_draining")
                raise DrainingError("service is draining; not accepting work")
            ticket = self._tickets.get(key)
            if ticket is not None:
                ticket.waiters += 1
                self._bump("serve.dedup_coalesced")
                return ticket
            cached = self.memory.get(key)
            if cached is not None:
                self._bump("serve.memory_hits")
                return self._hit_ticket(key, config, cached, "memory")
            ticket = RequestTicket(key, config)
            self._tickets[key] = ticket
            self._probing += 1
        # Disk probe outside the lock: small JSON read, but no reason to
        # serialize every other submitter behind it.
        result = self.disk_cache.get(config) if self.disk_cache else None
        if result is not None:
            self.memory.put(key, result)
            with self._cond:
                self._probing -= 1
                del self._tickets[key]
                self._bump("serve.disk_hits")
                ticket.tier = "disk"
                ticket.result = result
                self._observe_latency(ticket)
                self._cond.notify_all()
            ticket._resolve()
            return ticket
        from repro.serve.breaker import BreakerOpenError, config_family

        family = config_family(config)
        decision = self.breakers.admit(family)
        if not decision.allowed:
            with self._cond:
                self._probing -= 1
                self._cond.notify_all()
            return self._short_circuit(
                ticket,
                reason="breaker_open",
                rejection=BreakerOpenError(family, decision.remaining_s),
            )
        queue_full: Optional[QueueFullError] = None
        with self._cond:
            self._probing -= 1
            outstanding = len(self._queue) + self._in_flight
            if self.settings.queue_limit and outstanding >= self.settings.queue_limit:
                # Build the rejection here but resolve it after the lock
                # is released (mirroring the breaker-open path above):
                # _short_circuit reaches into the supervisor, whose lock
                # is held by check_now() while it calls
                # _restart_dispatcher(), which takes self._cond --
                # short-circuiting under self._cond would ABBA-deadlock
                # admission against a concurrent dispatcher restart.
                queue_full = QueueFullError(
                    f"simulation queue full ({outstanding} outstanding, "
                    f"limit {self.settings.queue_limit})"
                )
            else:
                ticket.breaker_probe = decision.probe
                self._queue.append(ticket)
                self.registry.gauge("serve.queue_depth").set(len(self._queue))
            self._cond.notify_all()
        if queue_full is not None:
            if decision.probe:
                self.breakers.abandon_probe(family)
            return self._short_circuit(
                ticket, reason="queue_full", rejection=queue_full
            )
        return ticket

    def _short_circuit(
        self,
        ticket: RequestTicket,
        reason: str,
        rejection: AdmissionError,
    ) -> RequestTicket:
        """Resolve a request the simulation path cannot take right now.

        With ``degrade="analytical"`` the ticket is answered by the
        closed-form model (HTTP 200, ``"approximate": true``); otherwise
        it is resolved with ``rejection`` and the rejection is raised.
        Either way the ticket leaves the single-flight map so attached
        joiners see the same outcome.  Degraded results are *not*
        written to any cache tier.

        Must be called **without** ``self._cond`` held: it builds the
        degraded topology and calls ``supervisor.note_degraded`` (which
        takes the supervisor lock), and the supervisor calls back into
        ``self._cond`` from its restart path.
        """
        degraded: Optional[DegradedResult] = None
        if self.settings.degrade == "analytical":
            try:
                degraded = make_degraded_result(
                    ticket.config, ticket.key, reason
                )
            except Exception:  # noqa: BLE001 - fall back to the rejection
                degraded = None
        with self._cond:
            self._tickets.pop(ticket.key, None)
            if degraded is not None:
                ticket.degraded = degraded
                ticket.tier = "degraded"
                self._bump("serve.degraded.responses")
                self._bump(f"serve.degraded.{reason}")
                self._observe_latency(ticket)
            else:
                ticket.rejection = rejection
                if reason == "queue_full":
                    self._bump("serve.rejected_queue_full")
                else:
                    self._bump("serve.rejected_breaker_open")
            self._cond.notify_all()
        ticket._resolve()
        if degraded is None:
            raise rejection
        if self.supervisor is not None:
            self.supervisor.note_degraded(reason)
        return ticket

    def execute(
        self, config: ExperimentConfig, timeout: Optional[float] = None
    ) -> RequestTicket:
        """Submit and wait: the resolved ticket, or raise on timeout.

        ``timeout=None`` uses ``settings.request_timeout_s``.  Raises
        :class:`AdmissionError` subclasses exactly as :meth:`submit`
        does and :class:`TimeoutError` when the ticket does not resolve
        in time.
        """
        ticket = self.submit(config)
        budget = timeout if timeout is not None else self.settings.request_timeout_s
        if not ticket.wait(budget):
            raise TimeoutError(
                f"experiment request did not resolve within {budget:g}s"
            )
        return ticket

    # -- dispatcher ----------------------------------------------------
    def _beat_dispatcher(self) -> None:
        if self.supervisor is not None:
            self.supervisor.beat("dispatcher")

    def _dispatch_loop(self, generation: int) -> None:
        """Dispatcher thread body: coalesce queued misses into batches.

        ``generation`` is the restart epoch this thread belongs to; a
        supervisor restart bumps ``self._generation`` and this loop
        exits the next time it observes the mismatch (its in-flight
        callbacks are discarded by the same check).  The condition wait
        is bounded so the loop heartbeats the supervisor even while
        idle.
        """
        settings = self.settings
        wait_s = (
            min(1.0, self.supervisor.heartbeat_s)
            if self.supervisor is not None
            else 1.0
        )
        while True:
            hang = self._test_hang
            if hang is not None:
                hang.wait()
            self._beat_dispatcher()
            with self._cond:
                if generation != self._generation:
                    return
                ready = self._cond.wait_for(
                    lambda: self._queue
                    or (self._draining and self._probing == 0)
                    or generation != self._generation,
                    timeout=wait_s,
                )
                if generation != self._generation:
                    return
                if not ready:
                    continue  # idle timeout: beat and re-wait
                if not self._queue:
                    # Draining and nothing queued (nor probing): done.
                    return
            if settings.batch_window_s > 0 and not self._draining:
                # Linger so concurrent misses coalesce into one batch.
                time.sleep(settings.batch_window_s)
            with self._cond:
                if generation != self._generation:
                    return
                batch: List[RequestTicket] = []
                while self._queue and len(batch) < settings.batch_max:
                    batch.append(self._queue.popleft())
                self._in_flight += len(batch)
                self._dispatching.extend(batch)
                if batch:
                    self._bump("serve.batches")
                self.registry.gauge("serve.queue_depth").set(len(self._queue))
                self.registry.gauge("serve.in_flight").set(self._in_flight)
            if not batch:
                continue
            completed = [False] * len(batch)

            def _on_result(
                index: int,
                _config: ExperimentConfig,
                outcome: ExperimentOutcome,
                _batch: List[RequestTicket] = batch,
                _completed: List[bool] = completed,
            ) -> None:
                _completed[index] = True
                self._finish_simulated(_batch[index], outcome, generation)

            try:
                self.executor.run_many(
                    [t.config for t in batch], on_result=_on_result
                )
            except Exception as exc:  # noqa: BLE001 - never strand waiters
                for index, ticket in enumerate(batch):
                    if not completed[index]:
                        completed[index] = True
                        self._finish_simulated(
                            ticket,
                            FailedResult(
                                config=ticket.config,
                                error_type="error",
                                message=f"executor failed: "
                                        f"{type(exc).__name__}: {exc}",
                            ),
                            generation,
                        )

    def _finish_simulated(
        self,
        ticket: RequestTicket,
        outcome: ExperimentOutcome,
        generation: int,
    ) -> None:
        """Resolve one dispatched ticket: caches, journal, counters.

        Outcomes reported by a superseded dispatcher generation are
        discarded: their tickets were re-queued by
        :meth:`_restart_dispatcher` and will be (or already were)
        resolved by the replacement, so acting here would double-count
        and double-resolve.
        """
        with self._cond:
            if generation != self._generation or ticket.done:
                return
        failed = isinstance(outcome, FailedResult)
        if failed:
            if self.journal is not None:
                self.journal.record_failed(ticket.key, outcome)
        else:
            self.memory.put(ticket.key, outcome)
            if self.disk_cache is not None:
                self.disk_cache.put(ticket.config, outcome)
            if self.journal is not None:
                self.journal.record_done(ticket.key, outcome)
        with self._cond:
            # Re-check: a restart may have raced the cache/journal
            # writes above, re-queueing this ticket and reclaiming its
            # in-flight slot.  The duplicate cache writes are
            # idempotent; the ticket mutation, accounting, and
            # resolution run only for the generation that still owns
            # the ticket -- mutating before this re-check would leave a
            # stale FailedResult on a ticket the next generation
            # retries (and may resolve successfully).
            if generation != self._generation or ticket.done:
                return
            ticket.tier = "simulated"
            if failed:
                ticket.failure = outcome
                self._bump("serve.failed")
            else:
                ticket.result = outcome
                self._bump("serve.simulated")
            self._in_flight -= 1
            self._tickets.pop(ticket.key, None)
            try:
                self._dispatching.remove(ticket)
            except ValueError:
                pass
            self._observe_latency(ticket)
            self.registry.gauge("serve.in_flight").set(self._in_flight)
            self._cond.notify_all()
        ticket._resolve()
        from repro.serve.breaker import config_family

        self.breakers.on_result(
            config_family(ticket.config), failed, probe=ticket.breaker_probe
        )

    # -- accounting (call with self._cond held) ------------------------
    def _bump(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def _bump_unlocked(self, name: str, amount: float = 1.0) -> None:
        # Counter increments are GIL-atomic enough for hook paths that
        # must not take the service lock (executor heartbeats arrive
        # from worker-facing threads while the dispatcher holds it).
        self.registry.counter(name).inc(amount)

    def _hit_ticket(
        self,
        key: str,
        config: ExperimentConfig,
        result: ExperimentResult,
        tier: str,
    ) -> RequestTicket:
        ticket = RequestTicket(key, config)
        ticket.tier = tier
        ticket.result = result
        self._observe_latency(ticket)
        ticket._resolve()
        return ticket

    def _observe_latency(self, ticket: RequestTicket) -> None:
        latency_ms = (time.monotonic() - ticket.submitted_at) * 1000.0
        self._latencies_ms.append(latency_ms)
        self._latency_hist.observe(latency_ms)

    # -- introspection -------------------------------------------------
    def health(self) -> Dict:
        """The ``/healthz`` payload: state machine + probe verdicts.

        ``status`` is the supervisor's four-state machine (``healthy`` /
        ``degraded`` / ``draining`` / ``unhealthy``); ``live`` and
        ``ready`` are the split probes ``/healthz/live`` and
        ``/healthz/ready`` answer.  A degraded service is still live and
        ready -- it is answering, possibly approximately -- while
        draining fails readiness only and unhealthy fails both.  Without
        a supervisor (``heartbeat_s=0``) the state is derived from the
        draining flag alone.
        """
        sup = self.supervisor
        if sup is not None:
            state = sup.state
        else:
            state = "draining" if self.draining else "healthy"
        payload: Dict = {
            "status": state,
            "live": state != "unhealthy",
            "ready": state in ("healthy", "degraded"),
            "draining": self.draining,
        }
        if sup is not None:
            payload["supervisor"] = sup.snapshot()
        if self.breakers.enabled:
            payload["open_breakers"] = self.breakers.open_families()
        return payload

    def stats(self) -> Dict:
        """The ``/stats`` payload: tiers, dedup, queue, latency, uptime."""
        with self._cond:
            counters = {
                name: self.registry.counter(name).value
                for name in (
                    "serve.requests_total",
                    "serve.dedup_coalesced",
                    "serve.memory_hits",
                    "serve.disk_hits",
                    "serve.simulated",
                    "serve.failed",
                    "serve.rejected_queue_full",
                    "serve.rejected_draining",
                    "serve.rejected_breaker_open",
                    "serve.batches",
                    "serve.degraded.responses",
                    "serve.degraded.queue_full",
                    "serve.degraded.breaker_open",
                    "serve.supervisor.restarts",
                    "serve.supervisor.worker_restarts",
                )
            }
            recent = sorted(self._latencies_ms)
            snapshot = {
                "draining": self._draining,
                "uptime_s": time.monotonic() - self._started_at,
                "queue_depth": len(self._queue),
                "in_flight": self._in_flight,
                "queue_limit": self.settings.queue_limit,
            }
        served = (
            counters["serve.memory_hits"]
            + counters["serve.disk_hits"]
            + counters["serve.simulated"]
        )
        tiers = {
            "memory": counters["serve.memory_hits"],
            "disk": counters["serve.disk_hits"],
            "simulated": counters["serve.simulated"],
            "hit_ratio": {
                "memory": counters["serve.memory_hits"] / served if served else 0.0,
                "disk": counters["serve.disk_hits"] / served if served else 0.0,
            },
        }
        latency = {
            "count": len(recent),
            "p50_ms": _percentile(recent, 0.50),
            "p95_ms": _percentile(recent, 0.95),
        }
        stats = dict(snapshot)
        stats.update(
            requests_total=counters["serve.requests_total"],
            dedup_coalesced=counters["serve.dedup_coalesced"],
            rejected_queue_full=counters["serve.rejected_queue_full"],
            rejected_draining=counters["serve.rejected_draining"],
            rejected_breaker_open=counters["serve.rejected_breaker_open"],
            failed=counters["serve.failed"],
            batches=counters["serve.batches"],
            tiers=tiers,
            memory_cache=self.memory.stats(),
            latency=latency,
            executor=self.executor.describe(),
            degraded={
                "mode": self.settings.degrade,
                "responses": counters["serve.degraded.responses"],
                "queue_full": counters["serve.degraded.queue_full"],
                "breaker_open": counters["serve.degraded.breaker_open"],
            },
            breakers=self.breakers.snapshot(),
        )
        if self.supervisor is not None:
            stats["supervisor"] = self.supervisor.snapshot()
            stats["supervisor"]["restarts_total"] = counters[
                "serve.supervisor.restarts"
            ]
            stats["supervisor"]["worker_restarts"] = counters[
                "serve.supervisor.worker_restarts"
            ]
        if self.disk_cache is not None:
            stats["disk_cache"] = {
                "hits": self.disk_cache.hits,
                "misses": self.disk_cache.misses,
                "writes": self.disk_cache.writes,
                "quarantined": self.disk_cache.quarantined,
            }
            # ResultStore backends identify themselves; a bare DiskCache
            # (no stats()) keeps the historical four-counter payload.
            backend_stats = getattr(self.disk_cache, "stats", None)
            if backend_stats is not None:
                snapshot = backend_stats()
                for key in ("backend", "path", "entries", "size_bytes"):
                    if key in snapshot:
                        stats["disk_cache"][key] = snapshot[key]
        if self.journal is not None:
            stats["journal"] = {
                "path": str(self.journal.path),
                "records_written": self.journal.records_written,
            }
        return stats


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]
