"""The long-running experiment service behind ``repro-mnet serve``.

:class:`ExperimentService` answers experiment requests through a tiered
path -- in-memory :class:`~repro.serve.lru.LruResultCache` (keyed by
:meth:`~repro.harness.experiment.ExperimentConfig.cache_key`), then the
persistent :class:`~repro.harness.diskcache.DiskCache`, then an actual
simulation on the configured
:class:`~repro.harness.executor.Executor` -- with the serving
behaviours a shared simulator needs:

* **single-flight deduplication** -- N concurrent requests for the same
  cache key attach to one :class:`RequestTicket`; exactly one
  simulation runs and every waiter gets its result (the joiners are
  counted as ``dedup_coalesced``);
* **request batching** -- cache misses queue up and a dispatcher thread
  coalesces them (a short linger window, then up to ``batch_max``
  configs) into one ``Executor.run_many`` call, so a
  :class:`~repro.harness.executor.ParallelExecutor` overlaps them;
* **admission control / backpressure** -- at most ``queue_limit``
  simulations may be outstanding (queued + in flight); requests beyond
  that are rejected with :class:`QueueFullError` (HTTP 429) and
  requests after drain began with :class:`DrainingError` (HTTP 503);
* **graceful drain** -- :meth:`ExperimentService.drain` stops admitting
  work, finishes every admitted ticket, flushes and closes the journal,
  and joins the dispatcher;
* **observability** -- every counter is mirrored into a
  :class:`~repro.obs.metrics.MetricsRegistry` (``serve.*`` namespace,
  latency histogram included) and :meth:`ExperimentService.stats`
  returns the JSON payload the ``/stats`` endpoint serves.

Results a simulation produces are written back to both cache tiers (and
the journal, when attached), so a repeat request is a memory-tier hit
and a restarted server warms from disk.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.harness.diskcache import DiskCache
from repro.harness.executor import (
    Executor,
    ExperimentOutcome,
    FailedResult,
    SerialExecutor,
)
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.journal import SweepJournal
from repro.obs.metrics import MetricsRegistry
from repro.serve.lru import LruResultCache

__all__ = [
    "AdmissionError",
    "QueueFullError",
    "DrainingError",
    "RequestTicket",
    "ServiceSettings",
    "ExperimentService",
    "LATENCY_EDGES_MS",
]

#: Latency histogram bucket edges (milliseconds).
LATENCY_EDGES_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 120000.0,
)


class AdmissionError(RuntimeError):
    """A request the service refused to admit.

    ``http_status`` is the HTTP response code the serving layer maps
    this to; ``retry_after_s`` (when not None) becomes a ``Retry-After``
    header hinting when the client should try again.
    """

    http_status = 503
    retry_after_s: Optional[float] = None


class QueueFullError(AdmissionError):
    """Backpressure: the bounded simulation queue is at capacity (429)."""

    http_status = 429
    retry_after_s = 1.0


class DrainingError(AdmissionError):
    """The service is draining and refuses new work (503)."""

    http_status = 503


@dataclass(frozen=True)
class ServiceSettings:
    """Tunables for :class:`ExperimentService`.

    ``queue_limit`` bounds *outstanding simulations* (queued plus
    dispatched), not total requests -- cache hits and coalesced
    duplicates are always admitted.  ``batch_window_s`` is the linger
    the dispatcher waits after the first queued miss so concurrent
    misses coalesce into one executor batch of up to ``batch_max``
    configs.  ``request_timeout_s`` is the default budget
    :meth:`ExperimentService.execute` waits for a ticket.
    """

    queue_limit: int = 64
    memory_entries: int = 512
    batch_window_s: float = 0.01
    batch_max: int = 16
    request_timeout_s: float = 600.0


class RequestTicket:
    """One admitted request (and everyone coalesced onto it).

    Exactly one of ``result`` / ``failure`` / ``rejection`` is set when
    :meth:`done` becomes True.  ``tier`` records which layer answered:
    ``"memory"``, ``"disk"``, or ``"simulated"`` (also set on
    failures).
    """

    def __init__(self, key: str, config: ExperimentConfig) -> None:
        self.key = key
        self.config = config
        self.submitted_at = time.monotonic()
        self.waiters = 1
        self.tier: Optional[str] = None
        self.result: Optional[ExperimentResult] = None
        self.failure: Optional[FailedResult] = None
        self.rejection: Optional[AdmissionError] = None
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        """True once an outcome (result, failure, or rejection) is set."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket resolves; False on timeout."""
        return self._event.wait(timeout)

    def _resolve(self) -> None:
        self._event.set()


class ExperimentService:
    """Tiered, deduplicating, backpressured experiment request broker.

    Thread-safe: any number of threads may call :meth:`submit` /
    :meth:`execute` / :meth:`stats` concurrently; one internal
    dispatcher thread owns executor batches and journal writes.
    Call :meth:`start` before submitting and :meth:`drain` to shut
    down.
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        disk_cache: Optional[DiskCache] = None,
        settings: Optional[ServiceSettings] = None,
        journal: Optional[SweepJournal] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.disk_cache = disk_cache
        self.settings = settings if settings is not None else ServiceSettings()
        self.journal = journal
        self.registry = registry if registry is not None else MetricsRegistry()
        self.memory = LruResultCache(self.settings.memory_entries)

        self._cond = threading.Condition()
        #: Live (unresolved) tickets by cache key -- the single-flight map.
        self._tickets: Dict[str, RequestTicket] = {}
        self._queue: Deque[RequestTicket] = deque()
        self._in_flight = 0
        self._probing = 0
        self._draining = False
        self._started_at = time.monotonic()
        self._dispatcher: Optional[threading.Thread] = None
        self._latencies_ms: Deque[float] = deque(maxlen=2048)
        self._latency_hist = self.registry.histogram(
            "serve.latency_ms", LATENCY_EDGES_MS
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ExperimentService":
        """Start the batch dispatcher thread (idempotent); returns self."""
        with self._cond:
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="serve-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
        return self

    def warm_start(self, journal: SweepJournal) -> int:
        """Seed the memory tier from a resumed journal's replayed results.

        Returns the number of entries loaded.  Call before :meth:`start`
        (or at least before traffic) -- it writes only the memory tier.
        """
        for key, result in journal.results.items():
            self.memory.put(key, result)
        return len(journal.results)

    def begin_drain(self) -> None:
        """Stop admitting new requests; already-admitted work continues."""
        with self._cond:
            self._draining = True
            self.registry.gauge("serve.draining").set(1.0)
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` (or :meth:`drain`) was called."""
        with self._cond:
            return self._draining

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted ticket resolved; False on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: not self._tickets, timeout)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, finish admitted work,
        flush and close the journal, stop the dispatcher.

        Returns True when everything in flight completed within
        ``timeout`` (None = wait forever).
        """
        self.begin_drain()
        idle = self.wait_idle(timeout)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0 if idle else 0.5)
        if self.journal is not None:
            self.journal.close()
        return idle

    # -- request path --------------------------------------------------
    def submit(self, config: ExperimentConfig) -> RequestTicket:
        """Admit one request; returns its (possibly shared) ticket.

        Resolution order: join an identical in-flight ticket
        (single-flight), hit the memory tier, hit the disk tier, or
        queue a simulation.  Raises :class:`DrainingError` after drain
        began and :class:`QueueFullError` when the simulation queue is
        at capacity; a ticket that *joiners* are already attached to is
        instead resolved with the rejection so every waiter sees it.
        """
        key = config.cache_key()
        with self._cond:
            self._bump("serve.requests_total")
            if self._draining:
                self._bump("serve.rejected_draining")
                raise DrainingError("service is draining; not accepting work")
            ticket = self._tickets.get(key)
            if ticket is not None:
                ticket.waiters += 1
                self._bump("serve.dedup_coalesced")
                return ticket
            cached = self.memory.get(key)
            if cached is not None:
                self._bump("serve.memory_hits")
                return self._hit_ticket(key, config, cached, "memory")
            ticket = RequestTicket(key, config)
            self._tickets[key] = ticket
            self._probing += 1
        # Disk probe outside the lock: small JSON read, but no reason to
        # serialize every other submitter behind it.
        result = self.disk_cache.get(config) if self.disk_cache else None
        if result is not None:
            self.memory.put(key, result)
            with self._cond:
                self._probing -= 1
                del self._tickets[key]
                self._bump("serve.disk_hits")
                ticket.tier = "disk"
                ticket.result = result
                self._observe_latency(ticket)
                self._cond.notify_all()
            ticket._resolve()
            return ticket
        with self._cond:
            self._probing -= 1
            outstanding = len(self._queue) + self._in_flight
            if self.settings.queue_limit and outstanding >= self.settings.queue_limit:
                del self._tickets[key]
                self._bump("serve.rejected_queue_full")
                rejection = QueueFullError(
                    f"simulation queue full ({outstanding} outstanding, "
                    f"limit {self.settings.queue_limit})"
                )
                ticket.rejection = rejection
                self._cond.notify_all()
                ticket._resolve()
                raise rejection
            self._queue.append(ticket)
            self.registry.gauge("serve.queue_depth").set(len(self._queue))
            self._cond.notify_all()
        return ticket

    def execute(
        self, config: ExperimentConfig, timeout: Optional[float] = None
    ) -> RequestTicket:
        """Submit and wait: the resolved ticket, or raise on timeout.

        ``timeout=None`` uses ``settings.request_timeout_s``.  Raises
        :class:`AdmissionError` subclasses exactly as :meth:`submit`
        does and :class:`TimeoutError` when the ticket does not resolve
        in time.
        """
        ticket = self.submit(config)
        budget = timeout if timeout is not None else self.settings.request_timeout_s
        if not ticket.wait(budget):
            raise TimeoutError(
                f"experiment request did not resolve within {budget:g}s"
            )
        return ticket

    # -- dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Dispatcher thread body: coalesce queued misses into batches."""
        settings = self.settings
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._queue
                    or (self._draining and self._probing == 0)
                )
                if not self._queue:
                    # Draining and nothing queued (nor probing): done.
                    return
            if settings.batch_window_s > 0 and not self._draining:
                # Linger so concurrent misses coalesce into one batch.
                time.sleep(settings.batch_window_s)
            with self._cond:
                batch: List[RequestTicket] = []
                while self._queue and len(batch) < settings.batch_max:
                    batch.append(self._queue.popleft())
                self._in_flight += len(batch)
                if batch:
                    self._bump("serve.batches")
                self.registry.gauge("serve.queue_depth").set(len(self._queue))
                self.registry.gauge("serve.in_flight").set(self._in_flight)
            if not batch:
                continue
            completed = [False] * len(batch)

            def _on_result(
                index: int,
                _config: ExperimentConfig,
                outcome: ExperimentOutcome,
                _batch: List[RequestTicket] = batch,
                _completed: List[bool] = completed,
            ) -> None:
                _completed[index] = True
                self._finish_simulated(_batch[index], outcome)

            try:
                self.executor.run_many(
                    [t.config for t in batch], on_result=_on_result
                )
            except Exception as exc:  # noqa: BLE001 - never strand waiters
                for index, ticket in enumerate(batch):
                    if not completed[index]:
                        completed[index] = True
                        self._finish_simulated(
                            ticket,
                            FailedResult(
                                config=ticket.config,
                                error_type="error",
                                message=f"executor failed: "
                                        f"{type(exc).__name__}: {exc}",
                            ),
                        )

    def _finish_simulated(
        self, ticket: RequestTicket, outcome: ExperimentOutcome
    ) -> None:
        """Resolve one dispatched ticket: caches, journal, counters."""
        if isinstance(outcome, FailedResult):
            ticket.failure = outcome
            ticket.tier = "simulated"
            if self.journal is not None:
                self.journal.record_failed(ticket.key, outcome)
        else:
            ticket.result = outcome
            ticket.tier = "simulated"
            self.memory.put(ticket.key, outcome)
            if self.disk_cache is not None:
                self.disk_cache.put(ticket.config, outcome)
            if self.journal is not None:
                self.journal.record_done(ticket.key, outcome)
        with self._cond:
            self._in_flight -= 1
            self._tickets.pop(ticket.key, None)
            if ticket.failure is not None:
                self._bump("serve.failed")
            else:
                self._bump("serve.simulated")
            self._observe_latency(ticket)
            self.registry.gauge("serve.in_flight").set(self._in_flight)
            self._cond.notify_all()
        ticket._resolve()

    # -- accounting (call with self._cond held) ------------------------
    def _bump(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def _hit_ticket(
        self,
        key: str,
        config: ExperimentConfig,
        result: ExperimentResult,
        tier: str,
    ) -> RequestTicket:
        ticket = RequestTicket(key, config)
        ticket.tier = tier
        ticket.result = result
        self._observe_latency(ticket)
        ticket._resolve()
        return ticket

    def _observe_latency(self, ticket: RequestTicket) -> None:
        latency_ms = (time.monotonic() - ticket.submitted_at) * 1000.0
        self._latencies_ms.append(latency_ms)
        self._latency_hist.observe(latency_ms)

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict:
        """The ``/stats`` payload: tiers, dedup, queue, latency, uptime."""
        with self._cond:
            counters = {
                name: self.registry.counter(name).value
                for name in (
                    "serve.requests_total",
                    "serve.dedup_coalesced",
                    "serve.memory_hits",
                    "serve.disk_hits",
                    "serve.simulated",
                    "serve.failed",
                    "serve.rejected_queue_full",
                    "serve.rejected_draining",
                    "serve.batches",
                )
            }
            recent = sorted(self._latencies_ms)
            snapshot = {
                "draining": self._draining,
                "uptime_s": time.monotonic() - self._started_at,
                "queue_depth": len(self._queue),
                "in_flight": self._in_flight,
                "queue_limit": self.settings.queue_limit,
            }
        served = (
            counters["serve.memory_hits"]
            + counters["serve.disk_hits"]
            + counters["serve.simulated"]
        )
        tiers = {
            "memory": counters["serve.memory_hits"],
            "disk": counters["serve.disk_hits"],
            "simulated": counters["serve.simulated"],
            "hit_ratio": {
                "memory": counters["serve.memory_hits"] / served if served else 0.0,
                "disk": counters["serve.disk_hits"] / served if served else 0.0,
            },
        }
        latency = {
            "count": len(recent),
            "p50_ms": _percentile(recent, 0.50),
            "p95_ms": _percentile(recent, 0.95),
        }
        stats = dict(snapshot)
        stats.update(
            requests_total=counters["serve.requests_total"],
            dedup_coalesced=counters["serve.dedup_coalesced"],
            rejected_queue_full=counters["serve.rejected_queue_full"],
            rejected_draining=counters["serve.rejected_draining"],
            failed=counters["serve.failed"],
            batches=counters["serve.batches"],
            tiers=tiers,
            memory_cache=self.memory.stats(),
            latency=latency,
            executor=self.executor.describe(),
        )
        if self.disk_cache is not None:
            stats["disk_cache"] = {
                "hits": self.disk_cache.hits,
                "misses": self.disk_cache.misses,
                "writes": self.disk_cache.writes,
                "quarantined": self.disk_cache.quarantined,
            }
        if self.journal is not None:
            stats["journal"] = {
                "path": str(self.journal.path),
                "records_written": self.journal.records_written,
            }
        return stats


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]
