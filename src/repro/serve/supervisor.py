"""Component supervision for the experiment service.

The supervisor is a small control loop that watches registered
components — the dispatcher thread and the executor worker pool — via
heartbeats and liveness callbacks, restarts the ones that hang or
crash, and folds everything it sees into a four-state service health
machine:

``healthy``
    Every component alive and beating; no recent incidents.

``degraded``
    The service is up and answering but something noteworthy happened
    recently: a component was restarted, a worker pool was rebuilt, a
    circuit breaker is open, or requests are being answered by the
    analytical model. Degraded still serves — readiness stays green.

``draining``
    The service is shutting down gracefully; readiness is red so load
    balancers stop sending traffic, liveness stays green so the drain
    is not killed mid-flight.

``unhealthy``
    A component is down and its restart budget is exhausted, or a
    restart callback itself raised. Liveness goes red — the process
    should be replaced.

Restart pacing uses capped exponential backoff with **deterministic
jitter**: the jitter term is derived from ``sha256(seed:name:attempt)``
rather than a random source, so a given (seed, component, attempt)
triple always waits the same amount — chaos tests can pin exact delays,
and a fleet of replicas with distinct seeds still de-correlates.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "SERVICE_STATES",
    "Supervisor",
    "backoff_delay",
]

#: Service health states in severity order (index = StateGauge value).
SERVICE_STATES = ("healthy", "degraded", "draining", "unhealthy")


def backoff_delay(
    attempt: int,
    base_s: float = 0.1,
    cap_s: float = 30.0,
    jitter_s: float = 0.0,
    seed: int = 0,
    name: str = "",
) -> float:
    """Capped exponential backoff with deterministic jitter.

    The deterministic delay for restart ``attempt`` (1-based) of
    component ``name`` is ``min(cap_s, base_s * 2**(attempt-1))`` plus a
    jitter in ``[0, jitter_s)`` derived from
    ``sha256(f"{seed}:{name}:{attempt}")``. Python's builtin ``hash``
    is salted per process, so the digest route is what makes the jitter
    reproducible across runs — a property the backoff-determinism tests
    pin.
    """
    if attempt < 1:
        raise ValueError(f"backoff attempt must be >= 1, got {attempt}")
    delay = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    if jitter_s > 0:
        digest = hashlib.sha256(f"{seed}:{name}:{attempt}".encode()).digest()
        frac = int.from_bytes(digest[:8], "big") / 2**64
        delay += frac * jitter_s
    return delay


class _Component:
    """Book-keeping for one supervised component."""

    __slots__ = (
        "name",
        "alive",
        "restart",
        "armed",
        "last_beat",
        "restarts",
        "restart_after",
        "last_restart",
    )

    def __init__(self, name, alive, restart, armed, now):
        self.name = name
        self.alive = alive
        self.restart = restart
        self.armed = armed
        self.last_beat = now
        self.restarts = 0
        self.restart_after = 0.0  # earliest time the next restart may run
        self.last_restart = 0.0


class Supervisor:
    """Heartbeat-driven watchdog over the service's moving parts.

    Components are registered with three callables:

    - ``alive()`` — cheap liveness check (e.g. ``thread.is_alive``).
      Returning False means the component crashed outright.
    - ``restart()`` — bring the component back. May raise; a raising
      restart marks the service unhealthy.
    - ``armed()`` (optional) — whether staleness should be enforced
      right now. The executor pool, for instance, only beats while work
      is in flight, so its staleness check is armed only when the
      service has in-flight requests.

    The loop runs every ``heartbeat_s`` seconds in a daemon thread;
    :meth:`check_now` performs a single supervision pass synchronously
    and is the entry point tests drive (with an injected ``clock``)
    instead of sleeping.
    """

    def __init__(
        self,
        registry=None,
        heartbeat_s: float = 1.0,
        stale_after_s: Optional[float] = None,
        max_restarts: int = 5,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 30.0,
        jitter_s: float = 0.05,
        seed: int = 0,
        degraded_hold_s: float = 30.0,
        restart_reset_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.registry = registry
        self.heartbeat_s = heartbeat_s
        #: A component is *stale* when armed and silent for this long.
        #: The default is 10 heartbeats: inline (non-isolated) serial
        #: execution only beats at task boundaries, so a tight bound
        #: would false-positive on any long simulation.
        self.stale_after_s = (
            stale_after_s if stale_after_s is not None else 10.0 * heartbeat_s
        )
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter_s = jitter_s
        self.seed = seed
        self.degraded_hold_s = degraded_hold_s
        self.restart_reset_s = restart_reset_s
        self.clock = clock
        self._lock = threading.RLock()
        self._components: Dict[str, _Component] = {}
        self._draining = False
        self._unhealthy_reason: Optional[str] = None
        self._degraded_until = 0.0
        self._degraded_reason: Optional[str] = None
        self._context_fns: List[Callable[[], Optional[str]]] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._publish_state()

    # -- registration and signals ------------------------------------

    def register(
        self,
        name: str,
        alive: Callable[[], bool],
        restart: Callable[[], None],
        armed: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Put ``name`` under supervision (replacing any prior entry)."""
        with self._lock:
            self._components[name] = _Component(
                name, alive, restart, armed, self.clock()
            )

    def beat(self, name: str) -> None:
        """Record a heartbeat from component ``name``.

        Unknown names are ignored so executors can beat before the
        supervisor finishes wiring.
        """
        with self._lock:
            comp = self._components.get(name)
            if comp is not None:
                comp.last_beat = self.clock()

    def note_degraded(self, reason: str) -> None:
        """Mark the service degraded for ``degraded_hold_s`` seconds.

        Called for incidents that are not component deaths: pool
        rebuilds, open breakers, degraded responses being served.
        """
        with self._lock:
            self._degraded_until = self.clock() + self.degraded_hold_s
            self._degraded_reason = reason
            self._publish_state()

    def add_context(self, fn: Callable[[], Optional[str]]) -> None:
        """Register a degradation probe consulted on every state read.

        ``fn`` returns a reason string while some external condition
        holds (e.g. "breaker_open:daisychain/FP"), or None when clear.
        """
        with self._lock:
            self._context_fns.append(fn)

    def set_draining(self, draining: bool = True) -> None:
        """Enter (or leave) the draining state."""
        with self._lock:
            self._draining = draining
            self._publish_state()

    # -- state machine -----------------------------------------------

    def _context_reason(self) -> Optional[str]:
        for fn in self._context_fns:
            try:
                reason = fn()
            except Exception:
                continue
            if reason:
                return reason
        return None

    def _compute_state(self) -> str:
        if self._unhealthy_reason is not None:
            return "unhealthy"
        if self._draining:
            return "draining"
        if self.clock() < self._degraded_until or self._context_reason():
            return "degraded"
        return "healthy"

    @property
    def state(self) -> str:
        """Current service health state."""
        with self._lock:
            return self._compute_state()

    @property
    def live(self) -> bool:
        """Liveness: False only when the service is unhealthy."""
        return self.state != "unhealthy"

    @property
    def ready(self) -> bool:
        """Readiness: True for healthy/degraded, False otherwise."""
        return self.state in ("healthy", "degraded")

    def _publish_state(self) -> None:
        if self.registry is None:
            return
        gauge = self.registry.state_gauge(
            "serve.supervisor.state", SERVICE_STATES
        )
        gauge.set_state(self._compute_state())

    # -- supervision loop --------------------------------------------

    def check_now(self) -> List[str]:
        """Run one supervision pass; returns names restarted this pass.

        A component is restarted when it is dead (``alive()`` False) or
        stale (armed and silent past ``stale_after_s``). Restarts are
        paced by :func:`backoff_delay`; a component whose backoff window
        has not elapsed is skipped this pass and retried on the next.
        Exhausting ``max_restarts`` within ``restart_reset_s`` marks the
        service unhealthy.

        Restart callbacks are invoked **after** the supervisor lock is
        dropped: they reach back into the service (e.g. the dispatcher
        restart takes the service condition), and service threads
        holding that condition call :meth:`beat` /
        :meth:`note_degraded` -- running callbacks under ``self._lock``
        would make those two orders an ABBA deadlock.
        """
        to_restart: List[tuple] = []
        with self._lock:
            now = self.clock()
            for comp in list(self._components.values()):
                try:
                    dead = not comp.alive()
                except Exception:
                    dead = True
                armed = True
                if comp.armed is not None:
                    try:
                        armed = bool(comp.armed())
                    except Exception:
                        armed = True
                stale = armed and (now - comp.last_beat) > self.stale_after_s
                if not dead and not stale:
                    # A healthy stretch longer than restart_reset_s
                    # forgives past restarts so the budget measures
                    # crash *rate*, not lifetime total.
                    if comp.restarts and (
                        now - comp.last_restart > self.restart_reset_s
                    ):
                        comp.restarts = 0
                    continue
                if now < comp.restart_after:
                    continue  # still backing off
                if comp.restarts >= self.max_restarts:
                    self._unhealthy_reason = (
                        f"{comp.name}: restart budget exhausted "
                        f"({self.max_restarts})"
                    )
                    continue
                comp.restarts += 1
                comp.last_restart = now
                comp.restart_after = now + backoff_delay(
                    comp.restarts,
                    base_s=self.backoff_base_s,
                    cap_s=self.backoff_cap_s,
                    jitter_s=self.jitter_s,
                    seed=self.seed,
                    name=comp.name,
                )
                to_restart.append((comp, "dead" if dead else "stale"))
            self._publish_state()
        restarted: List[str] = []
        for comp, reason in to_restart:
            try:
                comp.restart()
            except Exception as exc:
                with self._lock:
                    self._unhealthy_reason = (
                        f"{comp.name}: restart failed: {exc}"
                    )
                    self._publish_state()
                continue
            restarted.append(comp.name)
            with self._lock:
                comp.last_beat = self.clock()
                self._degraded_until = self.clock() + self.degraded_hold_s
                self._degraded_reason = f"restarted:{comp.name}:{reason}"
                if self.registry is not None:
                    self.registry.counter("serve.supervisor.restarts").inc()
                    self.registry.counter(
                        f"serve.supervisor.restarts.{comp.name}"
                    ).inc()
                self._publish_state()
        return restarted

    def _loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            try:
                self.check_now()
            except Exception:
                # The watchdog must never die of its own checks.
                pass

    def start(self) -> None:
        """Start the supervision thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="serve-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the supervision thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def snapshot(self) -> Dict:
        """JSON-safe view of the supervisor for /stats and /healthz."""
        with self._lock:
            now = self.clock()
            state = self._compute_state()
            reason = None
            if state == "unhealthy":
                reason = self._unhealthy_reason
            elif state == "degraded":
                reason = self._context_reason() or self._degraded_reason
            return {
                "state": state,
                "reason": reason,
                "heartbeat_s": self.heartbeat_s,
                "stale_after_s": self.stale_after_s,
                "components": {
                    name: {
                        "restarts": comp.restarts,
                        "seconds_since_beat": round(
                            max(0.0, now - comp.last_beat), 3
                        ),
                    }
                    for name, comp in sorted(self._components.items())
                },
            }
