"""Bounded in-memory result cache with least-recently-used eviction.

The experiment service's first tier: a thread-safe mapping from
:meth:`~repro.harness.experiment.ExperimentConfig.cache_key` to
:class:`~repro.harness.experiment.ExperimentResult`, bounded to
``capacity`` entries.  A ``get`` refreshes recency; a ``put`` past
capacity evicts the least-recently-used entry and counts it, so the
``/stats`` endpoint can report eviction pressure alongside hit ratios.

``capacity=0`` disables the tier entirely (every lookup misses, every
store is dropped) without the callers needing a second code path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.harness.experiment import ExperimentResult

__all__ = ["LruResultCache"]


class LruResultCache:
    """Thread-safe LRU mapping of cache keys to experiment results."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, ExperimentResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[ExperimentResult]:
        """The cached result for ``key`` (refreshing recency), or None."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: ExperimentResult) -> None:
        """Store ``result`` under ``key``, evicting LRU entries past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        """Number of live entries."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """JSON-safe counters: size, capacity, hits, misses, evictions."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
