"""Bounded in-memory result cache with least-recently-used eviction.

The experiment service's first tier: a thread-safe mapping from
:meth:`~repro.harness.experiment.ExperimentConfig.cache_key` to
:class:`~repro.harness.experiment.ExperimentResult`, bounded to
``capacity`` entries.  A ``get`` refreshes recency; a ``put`` past
capacity evicts the least-recently-used entry and counts it, so the
``/stats`` endpoint can report eviction pressure alongside hit ratios.

``capacity=0`` disables the tier entirely (every lookup misses, every
store is dropped) without the callers needing a second code path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.harness.experiment import ExperimentResult

__all__ = ["LruResultCache"]


class LruResultCache:
    """Thread-safe LRU mapping of cache keys to experiment results.

    ``capacity`` is fixed at construction -- the eviction loop, the
    ``/stats`` payload, and the admission math all assume it never
    moves, so mutating it afterwards raises ``AttributeError``.
    Counters come in two flavors: ``hits`` / ``misses`` / ``evictions``
    are resettable window stats (:meth:`reset_stats`), while
    ``inserts`` is monotonic for the cache's lifetime so ``/stats``
    deltas survive a warm-start that pre-populates the tier.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[str, ExperimentResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0

    @property
    def capacity(self) -> int:
        """The fixed entry bound chosen at construction."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: int) -> None:
        raise AttributeError(
            "LruResultCache capacity is fixed at construction; "
            "build a new cache to resize"
        )

    def get(self, key: str) -> Optional[ExperimentResult]:
        """The cached result for ``key`` (refreshing recency), or None."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: ExperimentResult) -> None:
        """Store ``result`` under ``key``, evicting LRU entries past capacity."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            self.inserts += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def reset_stats(self) -> None:
        """Zero the window counters (hits/misses/evictions).

        ``inserts`` is deliberately untouched: it is the monotonic
        lifetime counter that lets ``/stats`` consumers compute deltas
        across warm-starts and stat resets.
        """
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        """Number of live entries."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """JSON-safe counters: size, capacity, hits, misses, evictions,
        and the monotonic insert total."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "inserts": self.inserts,
            }
