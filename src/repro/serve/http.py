"""Local HTTP+JSON front end for :class:`ExperimentService`.

The API is versioned under ``/v1/`` (see docs/serving.md for the full
schema):

* ``GET /v1/healthz`` -- the supervisor's health state machine; 200
  while ``healthy`` or ``degraded``, 503 while ``draining`` or
  ``unhealthy``;
* ``GET /v1/healthz/live`` -- liveness probe: 200 unless ``unhealthy``;
* ``GET /v1/healthz/ready`` -- readiness probe: 200 only while the
  service should receive traffic (``healthy`` / ``degraded``);
* ``GET /v1/stats`` -- service counters (tiers, dedup, queue, latency);
* ``GET /v1/metrics`` -- the raw
  :class:`~repro.obs.metrics.MetricsRegistry` dump plus p50/p95
  quantiles of the latency histogram;
* ``POST /v1/run`` -- one experiment config (JSON body); answers with
  the cache tier that served it, the full result payload (the disk
  cache's lossless dict shape), and a ``summary`` string byte-identical
  to ``repro-mnet run``'s stdout for the same config;
* ``POST /v1/batch`` -- ``{"configs": [...]}``; per-item outcomes in
  input order (individual items may be rejected with 429 semantics
  while the rest proceed).

Every endpoint also answers at its historical *unversioned* path
(``/healthz``, ``/run``, ...) with an identical status and body, plus a
``Deprecation: true`` header and a ``Link: </v1/...>;
rel="successor-version"`` pointer; new clients should use ``/v1/``.

Backpressure maps to HTTP statuses: 429 + ``Retry-After`` when the
bounded simulation queue is full, 503 while draining or when a config
family's circuit breaker is open, 504 when a request exceeds its wait
budget, 500 for structured simulation failures.  With ``--degrade
analytical`` the 429/breaker-503 cases instead answer 200 with an
analytical-model body marked ``"approximate": true`` (see
:mod:`repro.serve.degrade`).  :func:`run_server` wires SIGTERM/SIGINT
to a graceful drain: stop admitting, finish in-flight work, flush the
journal, then exit 0.

Configs that ask for server-side file side effects (``trace_path``,
``metrics_path``) are rejected with 400: the service answers queries,
it does not write files on behalf of remote callers.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.harness.executor import FailedResult
from repro.harness.io import config_from_dict, result_to_cache_dict
from repro.harness.report import render_run_summary
from repro.serve.degrade import degraded_payload
from repro.serve.service import (
    AdmissionError,
    ExperimentService,
    LATENCY_EDGES_MS,
    RequestTicket,
)

__all__ = ["API_VERSION", "API_PREFIX", "ExperimentServer", "ServeHandler", "run_server"]

#: Current (only) API version; the canonical path prefix is ``/v1``.
API_VERSION = "v1"

#: Path prefix every canonical endpoint lives under.
API_PREFIX = f"/{API_VERSION}"


def _split_version(path: str) -> Tuple[str, Optional[Dict]]:
    """``(unprefixed path, alias headers)`` for a request path.

    A ``/v1/...`` path is canonical (no extra headers); anything else
    is treated as a deprecated unversioned alias and answered with the
    same body plus ``Deprecation`` + successor ``Link`` headers.
    """
    if path == API_PREFIX or path.startswith(API_PREFIX + "/"):
        return path[len(API_PREFIX):] or "/", None
    return path, {
        "Deprecation": "true",
        "Link": f'<{API_PREFIX}{path}>; rel="successor-version"',
    }


class _BadRequest(ValueError):
    """Request body the API cannot serve (maps to HTTP 400)."""


def _parse_config(data: Dict):
    """Request dict -> ExperimentConfig; rejects file-writing fields."""
    if not isinstance(data, dict):
        raise _BadRequest("config must be a JSON object")
    payload = data.get("config", data)
    if not isinstance(payload, dict):
        raise _BadRequest("'config' must be a JSON object")
    for forbidden in ("trace_path", "metrics_path"):
        if payload.get(forbidden):
            raise _BadRequest(
                f"{forbidden!r} is not accepted over the API: the service "
                "does not write files for remote callers"
            )
    try:
        return config_from_dict(payload)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"invalid config: {exc}") from exc


def _ticket_payload(ticket: RequestTicket) -> Tuple[int, Dict]:
    """(HTTP status, JSON body) for a resolved ticket."""
    if ticket.rejection is not None:
        return ticket.rejection.http_status, {
            "error": {"kind": "rejected", "message": str(ticket.rejection)}
        }
    if ticket.degraded is not None:
        # Analytical stand-in: still a 200, explicitly approximate.
        return 200, degraded_payload(ticket.degraded)
    if ticket.failure is not None:
        failure: FailedResult = ticket.failure
        return 500, {
            "key": ticket.key,
            "tier": ticket.tier,
            "error": {
                "kind": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
            },
        }
    result = ticket.result
    assert result is not None
    return 200, {
        "key": ticket.key,
        "tier": ticket.tier,
        "result": result_to_cache_dict(result),
        "summary": render_run_summary(ticket.config, result),
    }


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's :class:`ExperimentService`."""

    server_version = "repro-mnet-serve/1"
    protocol_version = "HTTP/1.1"
    #: Idle-read budget: a keep-alive connection whose client went away
    #: closes itself instead of pinning a handler thread through drain
    #: (handler threads are joined on close).  It only bounds reading
    #: the *next* request -- an in-flight request waits on its ticket,
    #: not the socket -- so it stays short regardless of the request
    #: deadline.  This class default is a fallback only -- :meth:`setup`
    #: overrides it per connection with
    #: ``ServiceSettings.effective_socket_timeout_s``.
    timeout = 30.0

    # -- plumbing ------------------------------------------------------
    def setup(self) -> None:
        """Apply the service-configured socket timeout per connection."""
        service = getattr(self.server, "service", None)
        if service is not None:
            self.timeout = service.settings.effective_socket_timeout_s
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request access log line (stderr; silenced with --quiet)."""
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    @property
    def service(self) -> ExperimentService:
        """The experiment service this server fronts."""
        return self.server.service  # type: ignore[attr-defined]

    #: Extra headers for the in-flight request: set per request when it
    #: arrived via a deprecated unversioned alias, cleared on 404.
    _alias_headers: Optional[Dict] = None

    def _send_json(
        self, status: int, payload: Dict, headers: Optional[Dict] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (self._alias_headers or {}).items():
            self.send_header(name, value)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("missing request body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from exc

    # -- GET endpoints -------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve /v1/healthz (plus /live, /ready), /v1/stats, /v1/metrics
        and their deprecated unversioned aliases."""
        route, self._alias_headers = _split_version(self.path)
        if route == "/healthz":
            health = self.service.health()
            ok = health["status"] in ("healthy", "degraded")
            self._send_json(200 if ok else 503, health)
        elif route == "/healthz/live":
            health = self.service.health()
            self._send_json(
                200 if health["live"] else 503,
                {"live": health["live"], "status": health["status"]},
            )
        elif route == "/healthz/ready":
            health = self.service.health()
            self._send_json(
                200 if health["ready"] else 503,
                {"ready": health["ready"], "status": health["status"]},
            )
        elif route == "/stats":
            self._send_json(200, self.service.stats())
        elif route == "/metrics":
            registry = self.service.registry
            payload = registry.as_dict()
            hist = registry.histogram("serve.latency_ms", LATENCY_EDGES_MS)
            payload["quantiles"] = {
                "serve.latency_ms": {
                    "p50": hist.quantile(0.50),
                    "p95": hist.quantile(0.95),
                }
            }
            self._send_json(200, payload)
        else:
            self._alias_headers = None
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- POST endpoints ------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve /v1/run and /v1/batch (and their unversioned aliases)."""
        route, self._alias_headers = _split_version(self.path)
        if route not in ("/run", "/batch"):
            self._alias_headers = None
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            data = self._read_json()
            if route == "/run":
                self._handle_run(data)
            else:
                self._handle_batch(data)
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})

    def _handle_run(self, data: Dict) -> None:
        config = _parse_config(data)
        try:
            ticket = self.service.submit(config)
        except AdmissionError as exc:
            self._send_json(
                exc.http_status,
                {"error": {"kind": "rejected", "message": str(exc)}},
                headers=_retry_headers(exc),
            )
            return
        if not ticket.wait(self.service.settings.request_timeout_s):
            self._send_json(504, {"error": "request timed out in queue"})
            return
        status, payload = _ticket_payload(ticket)
        headers = _retry_headers(ticket.rejection) if ticket.rejection else None
        self._send_json(status, payload, headers=headers)

    def _handle_batch(self, data: Dict) -> None:
        if not isinstance(data, dict) or not isinstance(data.get("configs"), list):
            raise _BadRequest("body must be {'configs': [ {...}, ... ]}")
        configs = [_parse_config(item) for item in data["configs"]]
        tickets = []
        for config in configs:
            try:
                tickets.append(self.service.submit(config))
            except AdmissionError as exc:
                tickets.append(exc)
        items = []
        for entry in tickets:
            if isinstance(entry, AdmissionError):
                items.append(
                    {
                        "status": entry.http_status,
                        "error": {"kind": "rejected", "message": str(entry)},
                    }
                )
                continue
            if not entry.wait(self.service.settings.request_timeout_s):
                items.append({"status": 504, "error": "request timed out"})
                continue
            status, payload = _ticket_payload(entry)
            item = {"status": status}
            item.update(payload)
            items.append(item)
        self._send_json(200, {"results": items})


def _retry_headers(exc: Optional[AdmissionError]) -> Optional[Dict]:
    if exc is not None and exc.retry_after_s is not None:
        return {"Retry-After": f"{exc.retry_after_s:g}"}
    return None


class ExperimentServer(ThreadingHTTPServer):
    """Threaded HTTP server owning one :class:`ExperimentService`.

    Handler threads are non-daemonic and joined on close
    (``block_on_close``), so a drain cannot abandon a client mid
    response.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: ExperimentService,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__(address, ServeHandler)

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``--port 0``)."""
        return self.server_address[1]


def run_server(
    service: ExperimentService,
    host: str = "127.0.0.1",
    port: int = 8642,
    verbose: bool = False,
    drain_timeout_s: Optional[float] = None,
    ready: Optional[threading.Event] = None,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully; exit code.

    On the first signal the service stops admitting experiment requests
    (503), finishes everything already admitted, flushes and closes the
    journal, stops the listener, and returns 0.  A drain that exceeds
    ``drain_timeout_s`` returns 1 instead.  ``ready``, when given, is
    set once the listener is bound (used by tests).
    """
    httpd = ExperimentServer((host, port), service, verbose=verbose)
    service.start()
    stop = threading.Event()

    def _on_signal(signum, _frame) -> None:
        print(
            f"repro-mnet serve: received signal {signum}, draining ...",
            file=sys.stderr,
            flush=True,
        )
        stop.set()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _on_signal)
    listener = threading.Thread(
        target=httpd.serve_forever, name="serve-listener", daemon=False
    )
    listener.start()
    print(
        f"repro-mnet serve: listening on http://{host}:{httpd.port} "
        f"(queue limit {service.settings.queue_limit}, "
        f"{service.executor.describe()['kind']} x{service.executor.jobs})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        stop.wait()
        drained = service.drain(timeout=drain_timeout_s)
        httpd.shutdown()
        listener.join()
        httpd.server_close()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    stats = service.stats()
    print(
        "repro-mnet serve: drained "
        f"({stats['requests_total']:.0f} requests, "
        f"{stats['tiers']['simulated']:.0f} simulated, "
        f"{stats['dedup_coalesced']:.0f} coalesced); "
        f"{'clean exit' if drained else 'DRAIN TIMED OUT'}",
        flush=True,
    )
    return 0 if drained else 1
