"""Performance subsystem: microbenchmarks, reports, and regression gates.

The package has three layers:

* :mod:`repro.perf.harness` -- a ``timeit``-style best-of-N harness
  with warmup, fixed seeds, and built-in determinism checking (every
  repeat must reproduce the same work fingerprint);
* :mod:`repro.perf.scenarios` -- the named benchmark registry spanning
  the simulation engine, link state machine, network/router hop path,
  DRAM vault timing, workload generation, and the end-to-end fig5/fig9
  pipelines;
* :mod:`repro.perf.report` -- the schema-versioned ``BENCH_*.json``
  format plus baseline comparison for the CI regression gate.

Run it with ``repro-mnet bench`` (see docs/benchmarking.md).
"""

from repro.perf.harness import (
    BenchmarkError,
    BenchResult,
    BenchSpec,
    all_benchmarks,
    get_benchmark,
    register,
    run_benchmarks,
)
from repro.perf.report import (
    BENCH_SCHEMA,
    CALIBRATION_BENCH,
    Comparison,
    ReportError,
    compare_outcome,
    compare_reports,
    format_comparison,
    load_report,
    machine_info,
    make_report,
    write_report,
)

# Importing the scenarios module populates the registry.
import repro.perf.scenarios  # noqa: F401,E402  (import-for-side-effect)

__all__ = [
    "BenchmarkError",
    "BenchResult",
    "BenchSpec",
    "all_benchmarks",
    "get_benchmark",
    "register",
    "run_benchmarks",
    "BENCH_SCHEMA",
    "CALIBRATION_BENCH",
    "Comparison",
    "ReportError",
    "compare_outcome",
    "compare_reports",
    "format_comparison",
    "load_report",
    "machine_info",
    "make_report",
    "write_report",
]
