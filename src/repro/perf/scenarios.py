"""The named benchmark scenarios behind ``repro-mnet bench``.

Each scenario exercises one layer of the simulator (plus two end-to-end
pipeline benches) with fixed seeds and returns a deterministic
fingerprint of its results, so the harness can verify that repeated
runs -- and optimized implementations -- compute bit-identical answers.

Scenario inputs are deliberately synthetic-but-representative: the link
bench drives a realistic burst/idle arrival pattern through one
controller, the vault bench mixes reads and writes across banks, and
the end-to-end benches run the exact configurations the fig5/fig9
reproductions simulate.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterator, Tuple

from repro.perf.harness import register
from repro.perf.report import CALIBRATION_BENCH

__all__ = ["fingerprint"]


def fingerprint(*parts: object) -> str:
    """Stable short digest of a tuple of result values.

    Floats are digested via ``repr`` so any bit-level change in a
    computed quantity changes the fingerprint.
    """
    blob = "|".join(repr(p) for p in parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _lcg(seed: int) -> Iterator[int]:
    """Deterministic 63-bit linear congruential stream."""
    state = seed & 0x7FFFFFFFFFFFFFFF
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) & 0x7FFFFFFFFFFFFFFF
        yield state


# ----------------------------------------------------------------------
# calibration -- the machine-speed yardstick (never gated itself)
# ----------------------------------------------------------------------
@register(
    CALIBRATION_BENCH,
    "fixed pure-Python workload measuring host single-thread speed",
    repeats=5,
    quick_repeats=3,
)
def _calibration(quick: bool) -> Callable[[], Tuple[int, str]]:
    n = 400_000 if quick else 1_500_000

    def work() -> Tuple[int, str]:
        total = 0
        x = 0.5
        for i in range(n):
            total = (total + i * 2654435761) & 0xFFFFFFFF
            x = x * 0.9999997 + 1e-7
        return n, fingerprint(total, x)

    return work


# ----------------------------------------------------------------------
# engine -- raw event-dispatch throughput
# ----------------------------------------------------------------------
@register("engine_dispatch", "Simulator event-dispatch loop throughput")
def _engine_dispatch(quick: bool) -> Callable[[], Tuple[int, str]]:
    chains = 16
    per_chain = 2_000 if quick else 12_000

    def work() -> Tuple[int, str]:
        from repro.sim.engine import Simulator

        sim = Simulator()
        fired = [0] * chains

        def make(c: int, step: float) -> Callable[[], None]:
            def tick() -> None:
                fired[c] += 1
                if fired[c] < per_chain:
                    sim.schedule(step, tick)

            return tick

        for c in range(chains):
            sim.schedule(0.1 + 0.01 * c, make(c, 0.7 + 0.013 * c))
        sim.run()
        return sim.events_processed, fingerprint(sim.now, tuple(fired))

    return work


# ----------------------------------------------------------------------
# links -- one controller's queue/power state machine
# ----------------------------------------------------------------------
@register("link_state_machine", "LinkController enqueue/transmit/sleep/wake path")
def _link_state_machine(quick: bool) -> Callable[[], Tuple[int, str]]:
    packets = 3_000 if quick else 15_000

    def work() -> Tuple[int, str]:
        from repro.core.mechanisms import make_mechanism
        from repro.network.direction import LinkDir
        from repro.network.links import LinkController
        from repro.network.packets import Packet, PacketKind
        from repro.power.accounting import EnergyLedger
        from repro.sim.engine import Simulator

        sim = Simulator()
        mech = make_mechanism("VWL+ROO")
        link = LinkController(
            sim,
            name="bench",
            direction=LinkDir.REQUEST,
            src=-1,
            dst=0,
            mech=mech,
            endpoint_w=1.6,
            ledger_src=EnergyLedger(),
            ledger_dst=EnergyLedger(),
        )
        link.start(0.0)

        rng = _lcg(42)
        t = 5.0
        kinds = (PacketKind.READ_REQ, PacketKind.WRITE_REQ)
        for i in range(packets):
            r = next(rng)
            # Burst of 1-4 packets, then a gap; every 16th gap is long
            # enough (>2 us) to cross ROO idleness thresholds and force
            # a power-off / wakeup cycle.
            burst = 1 + (r & 3)
            for b in range(burst):
                pkt = Packet(
                    kind=kinds[(r >> (2 + b)) & 1],
                    address=(r >> 7) % (1 << 30),
                    dest=0,
                )
                sim.schedule_at(t + 0.01 * b, _enq(link, pkt, sim))
            t += 2500.0 if i % 16 == 15 else 20.0 + (r >> 33) % 180
        sim.run()
        link.accrue(sim.now)
        return sim.events_processed, fingerprint(
            link.flits_tx,
            link.packets_tx,
            link.wakeups,
            link.busy_time_ns,
            link.off_time_ns,
            link.ledger_src.idle_io_j,
            link.ledger_src.active_io_j,
        )

    return work


def _enq(link, pkt, sim) -> Callable[[], None]:
    return lambda: link.enqueue(pkt, sim.now)


@register(
    "faulted_link_retry",
    "LinkController transmit path under CRC retries and fault windows",
)
def _faulted_link_retry(quick: bool) -> Callable[[], Tuple[int, str]]:
    packets = 3_000 if quick else 15_000

    def work() -> Tuple[int, str]:
        from repro.core.mechanisms import make_mechanism
        from repro.network.direction import LinkDir
        from repro.network.links import LinkController, LinkFaultState
        from repro.network.packets import Packet, PacketKind
        from repro.power.accounting import EnergyLedger
        from repro.sim.engine import Simulator

        sim = Simulator()
        link = LinkController(
            sim,
            name="bench",
            direction=LinkDir.REQUEST,
            src=-1,
            dst=0,
            mech=make_mechanism("VWL+ROO"),
            endpoint_w=1.6,
            ledger_src=EnergyLedger(),
            ledger_dst=EnergyLedger(),
        )
        # Same arrival pattern as link_state_machine, but the link runs
        # through rolling CRC-error windows (plus one down and one
        # degraded window), exercising the retry/retransmission path.
        link.faults = LinkFaultState(
            seed=77,
            crc=[(float(s), float(s) + 60_000.0, 0.2)
                 for s in range(0, 1_000_000, 100_000)],
            down=[(40_000.0, 44_000.0)],
            degrade=[(200_000.0, 260_000.0, 2.0)],
            retry_ns=48.0,
        )
        link.start(0.0)

        rng = _lcg(42)
        t = 5.0
        kinds = (PacketKind.READ_REQ, PacketKind.WRITE_REQ)
        for i in range(packets):
            r = next(rng)
            burst = 1 + (r & 3)
            for b in range(burst):
                pkt = Packet(
                    kind=kinds[(r >> (2 + b)) & 1],
                    address=(r >> 7) % (1 << 30),
                    dest=0,
                )
                sim.schedule_at(t + 0.01 * b, _enq(link, pkt, sim))
            t += 2500.0 if i % 16 == 15 else 20.0 + (r >> 33) % 180
        sim.run()
        link.accrue(sim.now)
        return sim.events_processed, fingerprint(
            link.flits_tx,
            link.packets_tx,
            link.retries,
            link.retry_flits,
            link.retry_time_ns,
            link.faults.draws,
            link.faults.crc_errors,
            link.faults.down_blocks,
            link.faults.degraded_tx,
            link.ledger_src.active_io_j,
        )

    return work


# ----------------------------------------------------------------------
# network/router -- multi-hop packet forwarding
# ----------------------------------------------------------------------
class _RoundRobinMapping:
    """Minimal address->module mapping for a standalone network bench."""

    def __init__(self, num_modules: int) -> None:
        self.num_modules = num_modules
        self.interleaved = True
        self.granularity_bytes = 64

    def module_of(self, address: int) -> int:
        return (address // 64) % self.num_modules


@register("network_hop", "router/link forwarding across a daisy chain")
def _network_hop(quick: bool) -> Callable[[], Tuple[int, str]]:
    reads = 1_500 if quick else 8_000
    modules = 8

    def work() -> Tuple[int, str]:
        from repro.core.mechanisms import make_mechanism
        from repro.harness.builder import build_network
        from repro.network.topology import build_topology

        network = build_network(
            build_topology("daisychain", modules),
            make_mechanism("FP"),
            _RoundRobinMapping(modules),
        )
        sim = network.sim
        network.start()
        rng = _lcg(7)
        t = 1.0
        for _ in range(reads):
            r = next(rng)
            network.inject_read((r >> 5) % (1 << 28), t)
            if r & 7 == 0:
                network.inject_write((r >> 9) % (1 << 28), t)
            t += 2.0 + (r & 31)
        sim.run()
        return sim.events_processed, fingerprint(
            network.completed_reads,
            network.completed_writes,
            network.sum_read_latency_ns,
            network.max_read_latency_ns,
            network.sum_traversals,
        )

    return work


# ----------------------------------------------------------------------
# dram -- vault timing model
# ----------------------------------------------------------------------
@register("dram_vault", "VaultSet close-page access scheduling")
def _dram_vault(quick: bool) -> Callable[[], Tuple[int, str]]:
    accesses = 20_000 if quick else 120_000

    def work() -> Tuple[int, str]:
        from repro.dram.timing import DEFAULT_TIMING
        from repro.dram.vault import VaultSet

        vaults = VaultSet(DEFAULT_TIMING)
        rng = _lcg(1234)
        now = 0.0
        acc_ready = 0.0
        for i in range(accesses):
            r = next(rng)
            address = (r >> 4) % (1 << 32)
            access = vaults.access(now, address, is_read=(i & 3) != 3)
            acc_ready += access.data_ready
            now += 0.5 + (r & 15) * 0.25
        return accesses, fingerprint(
            vaults.reads, vaults.writes, acc_ready, vaults.busy_fraction(now)
        )

    return work


# ----------------------------------------------------------------------
# workloads -- closed-loop address-stream generation
# ----------------------------------------------------------------------
@register("workload_generation", "profile-driven address stream generation")
def _workload_generation(quick: bool) -> Callable[[], Tuple[int, str]]:
    per_stream = 2_000 if quick else 12_000

    def work() -> Tuple[int, str]:
        from repro.harness.builder import SimulationBuilder
        from repro.harness.experiment import ExperimentConfig

        simulation = SimulationBuilder(
            ExperimentConfig(workload="mixB", window_ns=1.0, seed=9)
        ).build()
        wl = simulation.workload
        profile = simulation.profile
        total = 0
        count = 0
        for s in range(min(4, profile.streams)):
            for _ in range(per_stream):
                total = (total + wl._next_address(s)) & 0xFFFFFFFFFFFF
                count += 1
        return count, fingerprint(total)

    return work


# ----------------------------------------------------------------------
# end-to-end -- the fig5 / fig9 pipeline configurations
# ----------------------------------------------------------------------
def _e2e(config_kwargs: dict) -> Tuple[int, str]:
    from repro.harness.experiment import ExperimentConfig, run_experiment
    from repro.harness.io import result_to_cache_dict

    result = run_experiment(ExperimentConfig(**config_kwargs))
    payload = result_to_cache_dict(result)
    payload.pop("wall_time_s", None)  # machine-dependent
    return result.events_processed, fingerprint(sorted(payload.items()))


@register(
    "e2e_fig5",
    "cold fig5 pipeline run (mixB / daisychain / small / FP)",
    repeats=3,
    quick_repeats=2,
)
def _e2e_fig5(quick: bool) -> Callable[[], Tuple[int, str]]:
    kwargs = dict(
        workload="mixB",
        topology="daisychain",
        scale="small",
        mechanism="FP",
        policy="none",
        window_ns=60_000.0 if quick else 400_000.0,
        epoch_ns=20_000.0,
        seed=1,
    )
    return lambda: _e2e(kwargs)


@register(
    "e2e_fig5_audit",
    "fig5-shaped managed run with strict invariant auditing on "
    "(mixB / daisychain / small / VWL+ROO / unaware / --audit)",
    repeats=3,
    quick_repeats=2,
)
def _e2e_fig5_audit(quick: bool) -> Callable[[], Tuple[int, str]]:
    # Mirrors e2e_fig5's shape but managed (so the per-epoch auditor
    # actually runs) and audited: tracks what --audit=strict costs
    # end-to-end.  The unaudited hot path is gated by e2e_fig5 itself
    # -- auditing must stay zero-overhead when off.
    kwargs = dict(
        workload="mixB",
        topology="daisychain",
        scale="small",
        mechanism="VWL+ROO",
        policy="unaware",
        alpha=0.05,
        window_ns=60_000.0 if quick else 400_000.0,
        epoch_ns=20_000.0,
        seed=1,
        audit="strict",
    )
    return lambda: _e2e(kwargs)


@register(
    "e2e_fig9",
    "cold fig9 pipeline run (sp.D / star / big / FP)",
    repeats=3,
    quick_repeats=2,
)
def _e2e_fig9(quick: bool) -> Callable[[], Tuple[int, str]]:
    kwargs = dict(
        workload="sp.D",
        topology="star",
        scale="big",
        mechanism="FP",
        policy="none",
        window_ns=40_000.0 if quick else 200_000.0,
        epoch_ns=20_000.0,
        seed=1,
    )
    return lambda: _e2e(kwargs)


@register(
    "e2e_hetero",
    "heterogeneous per-depth override pipeline run "
    "(mixB / daisychain / aware, depth-staged VWL+ROO)",
    repeats=3,
    quick_repeats=2,
)
def _e2e_hetero(quick: bool) -> Callable[[], Tuple[int, str]]:
    kwargs = dict(
        workload="mixB",
        topology="daisychain",
        scale="small",
        mechanism="FP",
        mechanism_overrides="depth>=2:VWL+ROO,link:m0-up:FP",
        policy="aware",
        alpha=0.05,
        window_ns=60_000.0 if quick else 400_000.0,
        epoch_ns=20_000.0,
        seed=1,
    )
    return lambda: _e2e(kwargs)

# ----------------------------------------------------------------------
# result store -- the warm-sweep bulk-lookup path
# ----------------------------------------------------------------------
@register(
    "store_bulk_lookup",
    "warm sweep probe over both store backends: per-key JSON reads "
    "plus one SqliteStore.get_many batch",
    repeats=3,
    quick_repeats=2,
)
def _store_bulk_lookup(quick: bool) -> Callable[[], Tuple[int, str]]:
    # Seeding both backends is factory work (untimed); work() measures
    # the lookup path a warm SweepRunner actually takes -- the sqlite
    # batch answers the same probes in one IN-query instead of n file
    # opens, which is the layer's headline win.
    import tempfile
    from dataclasses import replace
    from pathlib import Path

    from repro.harness.experiment import ExperimentConfig, ExperimentResult
    from repro.power.accounting import PowerBreakdown
    from repro.store import JsonDirStore, SqliteStore

    n = 80 if quick else 200
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
    root = Path(tmp.name)
    base = ExperimentConfig(
        workload="mixB", window_ns=30_000.0, epoch_ns=10_000.0
    )
    entries = []
    for i in range(n):
        config = base.replace(seed=5_000 + i)
        result = ExperimentResult(
            config=config,
            num_modules=16,
            breakdown=PowerBreakdown(watts={
                "idle_io": 2.0 + i * 1e-3,
                "active_io": 1.0,
                "logic_leak": 0.5,
                "logic_dyn": 0.5,
                "dram_leak": 0.5,
                "dram_dyn": 0.5,
            }),
            throughput_per_s=1e9 + i,
            avg_read_latency_ns=100.0 + i,
            max_read_latency_ns=500.0,
            channel_utilization=0.5,
            link_utilization=0.1,
            avg_modules_traversed=2.0,
            completed_reads=10_000 + i,
            completed_writes=500,
            events_processed=1_234 + i,
            wall_time_s=0.0,
        )
        entries.append((config, result))
    json_store = JsonDirStore(root / "json")
    sqlite_store = SqliteStore(root / "results.sqlite")
    json_store.put_many(entries)
    sqlite_store.put_many(entries)
    configs = [config for config, _ in entries]

    def work() -> Tuple[int, str]:
        _hold = tmp  # keep the seeded temp dir alive across the run
        per_key = {c.cache_key(): json_store.get(c) for c in configs}
        bulk = sqlite_store.get_many(configs)
        marks = tuple(
            (key, per_key[key].completed_reads, bulk[key].completed_reads)
            for key in sorted(bulk)
        )
        return 2 * n, fingerprint(len(per_key), len(bulk), marks)

    return work
