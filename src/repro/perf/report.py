"""``BENCH_*.json`` report format and baseline regression comparison.

Reports are schema-versioned so a future layout change cannot be
silently compared against an old baseline.  Cross-machine comparisons
are made meaningful by the ``calibration`` scenario: a fixed amount of
pure-Python work whose wall time measures the host's single-thread
speed.  When both reports carry it, every benchmark additionally gets a
normalized score ``best_s / calibration_best_s`` (dimensionless
"calibration units"), so a committed CI baseline recorded on one
machine can still gate a run on a faster or slower runner.

The gate is deliberately two-sided: a benchmark only *fails* when it is
more than the threshold slower in **both** raw wall time and
calibration-normalized terms.  A genuinely regressed code path shows up
in both metrics; a slower host inflates only the raw number, and a
noisy calibration measurement inflates only the normalized one, so
requiring agreement filters out the two dominant sources of false
alarms.  (The price is leniency when the baseline machine was much
slower than the current one -- acceptable for a CI smoke gate.)
Without calibration in both reports, raw wall time alone decides.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.perf.harness import BenchResult

__all__ = [
    "BENCH_SCHEMA",
    "CALIBRATION_BENCH",
    "machine_info",
    "make_report",
    "write_report",
    "load_report",
    "Comparison",
    "compare_reports",
    "compare_outcome",
    "format_comparison",
    "ReportError",
]

#: Schema identifier; bump on any backwards-incompatible layout change.
BENCH_SCHEMA: str = "repro-mnet-bench/v1"

#: Name of the machine-speed yardstick scenario (never gated itself).
CALIBRATION_BENCH: str = "calibration"


class ReportError(ValueError):
    """A BENCH report file is malformed or from another schema."""


def machine_info() -> Dict[str, object]:
    """Host details recorded alongside the numbers."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


def make_report(results: List[BenchResult], quick: bool) -> Dict:
    """Assemble the JSON-safe report payload."""
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "quick": quick,
        "machine": machine_info(),
        "benches": {r.name: r.to_dict() for r in results},
    }


def write_report(path: str, report: Dict) -> None:
    """Write a report as pretty-printed JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    """Read and schema-check a report written by :func:`write_report`."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("schema") != BENCH_SCHEMA:
        raise ReportError(
            f"{path}: not a {BENCH_SCHEMA} report "
            f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
        )
    if not isinstance(data.get("benches"), dict):
        raise ReportError(f"{path}: missing 'benches' mapping")
    return data


@dataclass(frozen=True)
class Comparison:
    """One benchmark's current-vs-baseline outcome."""

    name: str
    baseline_s: float
    current_s: float
    #: Percent change in raw wall time; positive means *slower*.
    raw_pct: float
    #: Percent change in calibration-normalized score, or ``None`` when
    #: either report lacks the calibration benchmark.
    norm_pct: Optional[float]
    regressed: bool

    @property
    def effective_pct(self) -> float:
        """The change the gate judged: min of raw and normalized."""
        if self.norm_pct is None:
            return self.raw_pct
        return min(self.raw_pct, self.norm_pct)


def _pct(cur: float, base: float) -> float:
    return (cur - base) / base * 100.0 if base > 0 else 0.0


def compare_reports(
    current: Dict, baseline: Dict, max_regress_pct: float
) -> List[Comparison]:
    """Compare two reports; only benchmarks present in both are gated.

    A benchmark regresses when it is more than ``max_regress_pct``
    percent slower in raw wall time *and* (when calibration data exists
    in both reports) in calibration-normalized score -- see the module
    docstring for why both must agree.  Improvements never fail the
    gate.  The calibration benchmark itself is never gated.
    """
    cur_benches = current["benches"]
    base_benches = baseline["benches"]
    cur_calib = float(cur_benches.get(CALIBRATION_BENCH, {}).get("best_s", 0.0))
    base_calib = float(base_benches.get(CALIBRATION_BENCH, {}).get("best_s", 0.0))
    normalized = cur_calib > 0 and base_calib > 0
    out: List[Comparison] = []
    for name in sorted(set(cur_benches) & set(base_benches)):
        if name == CALIBRATION_BENCH:
            continue
        base = float(base_benches[name]["best_s"])
        cur = float(cur_benches[name]["best_s"])
        raw_pct = _pct(cur, base)
        norm_pct = (
            _pct(cur / cur_calib, base / base_calib) if normalized else None
        )
        regressed = raw_pct > max_regress_pct and (
            norm_pct is None or norm_pct > max_regress_pct
        )
        out.append(
            Comparison(
                name=name,
                baseline_s=base,
                current_s=cur,
                raw_pct=raw_pct,
                norm_pct=norm_pct,
                regressed=regressed,
            )
        )
    return out


def format_comparison(
    comparisons: List[Comparison], max_regress_pct: float
) -> str:
    """Human-readable gate table (one line per benchmark)."""
    if not comparisons:
        return "no overlapping benchmarks to compare"
    lines = [
        f"regression gate: max +{max_regress_pct:g}% "
        "(must exceed in both raw and calibration-normalized terms)"
    ]
    width = max(len(c.name) for c in comparisons)
    for c in comparisons:
        mark = "REGRESSED" if c.regressed else "ok"
        norm = f"{c.norm_pct:+.1f}%" if c.norm_pct is not None else "n/a"
        lines.append(
            f"  {c.name:<{width}}  base {c.baseline_s * 1000:.2f} ms  "
            f"now {c.current_s * 1000:.2f} ms  raw {c.raw_pct:+.1f}%  "
            f"norm {norm}  {mark}"
        )
    return "\n".join(lines)


def compare_outcome(comparisons: List[Comparison]) -> bool:
    """Whether any benchmark regressed."""
    return any(c.regressed for c in comparisons)
