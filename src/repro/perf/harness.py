"""Best-of-N microbenchmark harness with warmup and determinism checks.

A benchmark is a *factory*: ``factory(quick) -> work`` where ``work()``
performs one cold run of the scenario and returns ``(events, fingerprint)``:

* ``events`` -- how many units of work the run performed (simulator
  events, DRAM accesses, generated addresses, ...); divided by the best
  wall time it yields the ``events/s`` throughput stat;
* ``fingerprint`` -- a short string digest of the run's *results*.
  Every repeat must return the identical ``(events, fingerprint)``
  pair; a mismatch means the scenario is nondeterministic and the
  harness fails loudly rather than report garbage.

The factory is invoked once per repeat so every timed run is cold: no
state (caches, warmed allocators aside) survives between repeats.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BenchmarkError",
    "BenchSpec",
    "BenchResult",
    "register",
    "all_benchmarks",
    "get_benchmark",
    "run_benchmarks",
]

#: ``work()`` return type: (events performed, result fingerprint).
WorkOutcome = Tuple[int, str]
WorkFn = Callable[[], WorkOutcome]
FactoryFn = Callable[[bool], WorkFn]


class BenchmarkError(RuntimeError):
    """A benchmark misbehaved (unknown name, nondeterministic repeats)."""


@dataclass(frozen=True)
class BenchSpec:
    """One named scenario in the registry."""

    name: str
    description: str
    factory: FactoryFn
    #: Default repeat count (full mode); quick mode uses ``quick_repeats``.
    repeats: int = 5
    quick_repeats: int = 2
    warmup: int = 1
    quick_warmup: int = 0


@dataclass
class BenchResult:
    """Measured statistics of one benchmark."""

    name: str
    description: str
    repeats: int
    warmup: int
    times_s: List[float]
    events: int
    fingerprint: str

    @property
    def best_s(self) -> float:
        """Fastest repeat -- the primary comparison statistic."""
        return min(self.times_s)

    @property
    def mean_s(self) -> float:
        """Arithmetic mean of the measured repeat times, in seconds."""
        return statistics.fmean(self.times_s)

    @property
    def median_s(self) -> float:
        """Median of the measured repeat times, in seconds."""
        return statistics.median(self.times_s)

    @property
    def stdev_s(self) -> float:
        """Sample standard deviation of repeat times (0.0 for one repeat)."""
        return statistics.stdev(self.times_s) if len(self.times_s) > 1 else 0.0

    @property
    def events_per_s(self) -> float:
        """Throughput at the best repeat (0 when the scenario is untimed)."""
        best = self.best_s
        return self.events / best if best > 0 else 0.0

    def to_dict(self) -> Dict:
        """JSON-safe stats block for the BENCH report."""
        return {
            "description": self.description,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "times_s": self.times_s,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "median_s": self.median_s,
            "stdev_s": self.stdev_s,
            "events": self.events,
            "events_per_s": self.events_per_s,
            "fingerprint": self.fingerprint,
        }


#: Global scenario registry, in registration order.
_REGISTRY: Dict[str, BenchSpec] = {}


def register(
    name: str,
    description: str,
    repeats: int = 5,
    quick_repeats: int = 2,
    warmup: int = 1,
    quick_warmup: int = 0,
) -> Callable[[FactoryFn], FactoryFn]:
    """Decorator adding a benchmark factory to the registry."""

    def deco(factory: FactoryFn) -> FactoryFn:
        if name in _REGISTRY:
            raise BenchmarkError(f"duplicate benchmark name {name!r}")
        _REGISTRY[name] = BenchSpec(
            name=name,
            description=description,
            factory=factory,
            repeats=repeats,
            quick_repeats=quick_repeats,
            warmup=warmup,
            quick_warmup=quick_warmup,
        )
        return factory

    return deco


def all_benchmarks() -> List[BenchSpec]:
    """Every registered scenario, in registration order."""
    return list(_REGISTRY.values())


def get_benchmark(name: str) -> BenchSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BenchmarkError(f"unknown benchmark {name!r}; known: {known}") from None


def _run_one(spec: BenchSpec, quick: bool, repeats: Optional[int]) -> BenchResult:
    n = repeats if repeats is not None else (
        spec.quick_repeats if quick else spec.repeats
    )
    warm = spec.quick_warmup if quick else spec.warmup
    if n < 1:
        raise BenchmarkError(f"{spec.name}: repeats must be >= 1, got {n}")

    for _ in range(warm):
        spec.factory(quick)()

    times: List[float] = []
    outcome: Optional[WorkOutcome] = None
    for _ in range(n):
        work = spec.factory(quick)
        t0 = time.perf_counter()
        got = work()
        elapsed = time.perf_counter() - t0
        times.append(elapsed)
        if outcome is None:
            outcome = got
        elif got != outcome:
            raise BenchmarkError(
                f"{spec.name}: nondeterministic repeats "
                f"(first {outcome!r}, then {got!r})"
            )
    assert outcome is not None
    events, fingerprint = outcome
    return BenchResult(
        name=spec.name,
        description=spec.description,
        repeats=n,
        warmup=warm,
        times_s=times,
        events=events,
        fingerprint=fingerprint,
    )


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run the named scenarios (default: all) and return their results.

    ``repeats`` overrides each spec's repeat count; ``progress`` is
    called with each scenario's name just before it runs.
    """
    specs = (
        [get_benchmark(n) for n in names] if names is not None else all_benchmarks()
    )
    out: List[BenchResult] = []
    for spec in specs:
        if progress is not None:
            progress(spec.name)
        out.append(_run_one(spec, quick, repeats))
    return out
