"""Unit conventions and conversion helpers.

All simulation time is expressed in **nanoseconds** (float), energies in
**joules**, powers in **watts**, capacities in **bytes**.  These helpers
keep the literal constants in configuration code self-describing.
"""

from __future__ import annotations

__all__ = [
    "NS",
    "US",
    "MS",
    "S",
    "KB",
    "MB",
    "GB",
    "ns_to_s",
    "s_to_ns",
    "gbps_lane_to_bytes_per_ns",
]

#: One nanosecond, the base time unit.
NS: float = 1.0
#: One microsecond in nanoseconds.
US: float = 1_000.0
#: One millisecond in nanoseconds.
MS: float = 1_000_000.0
#: One second in nanoseconds.
S: float = 1_000_000_000.0

#: Capacity units (bytes).
KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024


def ns_to_s(t_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return t_ns * 1e-9


def s_to_ns(t_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return t_s * 1e9


def gbps_lane_to_bytes_per_ns(gbps: float, lanes: int) -> float:
    """Aggregate link bandwidth in bytes/ns for ``lanes`` at ``gbps`` each.

    1 Gbps = 1 bit/ns, so ``lanes`` lanes at ``gbps`` move
    ``lanes * gbps / 8`` bytes per nanosecond.
    """
    return lanes * gbps / 8.0
