"""Memory-access traces: capture, persist, and replay.

The paper's methodology is trace-driven at heart: a full-system
simulation produces a memory access stream that the network/power model
consumes.  This module makes that interface explicit:

* :class:`TraceRecord` -- one access: time, address, read/write, stream;
* :func:`save_trace` / :func:`load_trace` -- a simple line-oriented
  on-disk format (optionally gzip-compressed by file extension);
* :class:`TraceRecorder` -- wraps a :class:`MemoryNetwork` and captures
  everything a workload injects, so any closed-loop run can be turned
  into a reusable trace;
* :class:`TraceReplayWorkload` -- open-loop replay of a trace against a
  network, with optional time scaling.

Replay is *open-loop*: accesses fire at their recorded times regardless
of latency, so it measures network/power behaviour under a fixed
arrival process (useful for apples-to-apples mechanism comparisons; use
the closed-loop generator when throughput feedback matters).
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

from repro.network.network import MemoryNetwork

__all__ = [
    "TraceRecord",
    "TraceError",
    "save_trace",
    "load_trace",
    "iter_trace",
    "TraceRecorder",
    "TraceReplayWorkload",
]

_HEADER = "# repro-mnet trace v1: time_ns address is_read stream"


class TraceError(ValueError):
    """Raised for malformed trace files."""


@dataclass(frozen=True)
class TraceRecord:
    """One memory access in a trace."""

    time_ns: float
    address: int
    is_read: bool
    stream: int = 0

    def to_line(self) -> str:
        """Serialize to the one-line trace format."""
        kind = "R" if self.is_read else "W"
        return f"{self.time_ns:.3f} {self.address:#x} {kind} {self.stream}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        """Parse one trace line."""
        parts = line.split()
        if len(parts) != 4:
            raise TraceError(f"malformed trace line: {line!r}")
        time_str, addr_str, kind, stream_str = parts
        if kind not in ("R", "W"):
            raise TraceError(f"bad access kind {kind!r} in line {line!r}")
        try:
            return cls(
                time_ns=float(time_str),
                address=int(addr_str, 0),
                is_read=kind == "R",
                stream=int(stream_str),
            )
        except ValueError as exc:
            raise TraceError(f"malformed trace line: {line!r}") from exc


def _open(path: str, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(path: str, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to ``path`` (gzip if it ends in .gz).

    Returns the number of records written.
    """
    count = 0
    with _open(path, "w") as fh:
        fh.write(_HEADER + "\n")
        for record in records:
            fh.write(record.to_line() + "\n")
            count += 1
    return count


def iter_trace(path: str) -> Iterator[TraceRecord]:
    """Stream records from a trace file without loading it whole."""
    with _open(path, "r") as fh:
        first = fh.readline().rstrip("\n")
        if not first.startswith("# repro-mnet trace"):
            raise TraceError(f"{path}: missing trace header")
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield TraceRecord.from_line(line)


def load_trace(path: str) -> List[TraceRecord]:
    """Load a whole trace into memory."""
    return list(iter_trace(path))


class TraceRecorder:
    """Captures every access a workload injects into a network.

    Install before starting the workload::

        recorder = TraceRecorder(network)
        workload.start(); sim.run(until=...)
        save_trace("run.trace", recorder.records)
    """

    def __init__(self, network: MemoryNetwork) -> None:
        self.records: List[TraceRecord] = []
        self._orig_read = network.inject_read
        self._orig_write = network.inject_write
        network.inject_read = self._wrap(self._orig_read, True)
        network.inject_write = self._wrap(self._orig_write, False)
        self.network = network

    def _wrap(self, fn: Callable, is_read: bool) -> Callable:
        records = self.records

        def inject(address: int, now: float, stream: int = 0):
            records.append(TraceRecord(now, address, is_read, stream))
            return fn(address, now, stream=stream)

        return inject

    def detach(self) -> None:
        """Stop recording and restore the network's inject methods."""
        self.network.inject_read = self._orig_read
        self.network.inject_write = self._orig_write


class TraceReplayWorkload:
    """Open-loop replay of a trace against a memory network."""

    def __init__(
        self,
        network: MemoryNetwork,
        trace: Union[str, Sequence[TraceRecord]],
        time_scale: float = 1.0,
        stop_ns: Optional[float] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.network = network
        self.sim = network.sim
        self.time_scale = time_scale
        self.stop_ns = stop_ns
        if isinstance(trace, str):
            self._records: Sequence[TraceRecord] = load_trace(trace)
        else:
            self._records = trace
        self.injected = 0

    def start(self) -> None:
        """Schedule every trace record at its (scaled) timestamp."""
        for record in self._records:
            when = record.time_ns * self.time_scale
            if self.stop_ns is not None and when >= self.stop_ns:
                continue
            self.sim.schedule_at(when, self._make_inject(record, when))

    def _make_inject(self, record: TraceRecord, when: float):
        def inject() -> None:
            if record.is_read:
                self.network.inject_read(record.address, when, stream=record.stream)
            else:
                self.network.inject_write(record.address, when, stream=record.stream)
            self.injected += 1

        return inject

    @property
    def completed_accesses(self) -> int:
        """Reads and writes finished so far."""
        return self.network.completed_reads + self.network.completed_writes

    def throughput_per_s(self, window_ns: float) -> float:
        """Completed accesses per second over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        return self.completed_accesses / (window_ns * 1e-9)
