"""Workload substrate: profiles, address mapping, closed-loop traffic."""

from repro.workloads.generator import ClosedLoopWorkload
from repro.workloads.mapping import (
    AddressMapping,
    BIG_SLICE_BYTES,
    PAGE_BYTES,
    SMALL_SLICE_BYTES,
    contiguous_mapping,
    modules_for_footprint,
    page_interleaved_mapping,
)
from repro.workloads.profiles import (
    HPC_WORKLOADS,
    MIX_COMPOSITION,
    MIX_WORKLOADS,
    WORKLOAD_NAMES,
    WORKLOADS,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.traces import (
    TraceError,
    TraceRecord,
    TraceRecorder,
    TraceReplayWorkload,
    load_trace,
    save_trace,
)

__all__ = [
    "ClosedLoopWorkload",
    "AddressMapping",
    "contiguous_mapping",
    "page_interleaved_mapping",
    "modules_for_footprint",
    "SMALL_SLICE_BYTES",
    "BIG_SLICE_BYTES",
    "PAGE_BYTES",
    "WorkloadProfile",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "HPC_WORKLOADS",
    "MIX_WORKLOADS",
    "MIX_COMPOSITION",
    "get_profile",
    "TraceRecord",
    "TraceError",
    "TraceRecorder",
    "TraceReplayWorkload",
    "save_trace",
    "load_trace",
]
