"""Physical-address to module mapping (Section III-C).

The paper maps the *i*-th contiguous 4 GB of physical pages to HMC *i*
for the small-network study and the *i*-th contiguous 1 GB to HMC *i*
for the big-network study.  Section VII-A's static baseline instead
interleaves pages across all modules; both mappings are provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.registry import Registry

__all__ = [
    "AddressMapping",
    "contiguous_mapping",
    "page_interleaved_mapping",
    "modules_for_footprint",
    "make_mapping",
    "MAPPINGS",
    "MAPPING_NAMES",
    "SMALL_SLICE_BYTES",
    "BIG_SLICE_BYTES",
    "PAGE_BYTES",
]

#: Contiguous slice per HMC in the small-network study (4 GB HMCs).
SMALL_SLICE_BYTES: int = 4 * 1024**3
#: Contiguous slice per HMC in the big-network study.
BIG_SLICE_BYTES: int = 1 * 1024**3
#: OS page size used by the interleaved mapping.
PAGE_BYTES: int = 4096


@dataclass(frozen=True)
class AddressMapping:
    """Maps physical byte addresses to module ids.

    ``granularity_bytes`` is the contiguous run mapped to one module
    before moving to the next; with ``interleaved=False`` the address
    space is striped in ``num_modules`` huge slices instead.
    """

    num_modules: int
    granularity_bytes: int
    interleaved: bool = False

    def __post_init__(self) -> None:
        if self.num_modules < 1:
            raise ValueError("need at least one module")
        if self.granularity_bytes < 1:
            raise ValueError("granularity must be positive")

    def module_of(self, address: int) -> int:
        """Module id holding ``address``."""
        if address < 0:
            raise ValueError(f"negative address {address:#x}")
        index = address // self.granularity_bytes
        if self.interleaved:
            return index % self.num_modules
        if index >= self.num_modules:
            raise ValueError(
                f"address {address:#x} beyond the last module "
                f"({self.num_modules} x {self.granularity_bytes} bytes)"
            )
        return index

    @property
    def capacity_bytes(self) -> int:
        """Total mappable bytes (interleaved mappings are unbounded)."""
        return self.num_modules * self.granularity_bytes


def modules_for_footprint(footprint_gb: float, scale: str) -> int:
    """Network size for a workload footprint: ceil(footprint / slice).

    ``scale`` is ``"small"`` (4 GB per HMC) or ``"big"`` (1 GB per HMC).
    """
    slice_bytes = _slice_bytes(scale)
    return max(1, math.ceil(footprint_gb * 1024**3 / slice_bytes))


#: Registry of mapping factories (``(footprint_gb, scale) -> AddressMapping``).
MAPPINGS: Registry = Registry("mapping")


@MAPPINGS.register("contiguous")
def contiguous_mapping(footprint_gb: float, scale: str) -> AddressMapping:
    """The paper's default mapping: contiguous slices, one per HMC."""
    return AddressMapping(
        num_modules=modules_for_footprint(footprint_gb, scale),
        granularity_bytes=_slice_bytes(scale),
        interleaved=False,
    )


@MAPPINGS.register("interleaved", aliases=("page_interleaved",))
def page_interleaved_mapping(footprint_gb: float, scale: str) -> AddressMapping:
    """Section VII-A's mapping: 4 KB pages striped across all modules."""
    return AddressMapping(
        num_modules=modules_for_footprint(footprint_gb, scale),
        granularity_bytes=PAGE_BYTES,
        interleaved=True,
    )


#: Recognized mapping names (canonical spellings).
MAPPING_NAMES = MAPPINGS.names()


def make_mapping(name: str, footprint_gb: float, scale: str) -> AddressMapping:
    """Build the address mapping ``name`` (ValueError when unknown)."""
    return MAPPINGS.get(name)(footprint_gb, scale)


def _slice_bytes(scale: str) -> int:
    if scale == "small":
        return SMALL_SLICE_BYTES
    if scale == "big":
        return BIG_SLICE_BYTES
    raise ValueError(f"scale must be 'small' or 'big', got {scale!r}")
