"""Closed-loop synthetic workload injection.

This replaces the paper's GEM5 full-system front end (see DESIGN.md).
Each workload profile drives ``streams`` request streams (one per core)
against the memory network in *batch-closed-loop* fashion:

* a stream issues a batch of ``mlp`` accesses back to back (its MSHRs'
  worth of overlapping misses), waits until every read in the batch has
  returned, thinks, and repeats.  Memory latency therefore feeds
  directly into throughput -- exactly the coupling that makes
  "performance degradation vs. full power" a measurable quantity;
* think times are calibrated so the *full-power* run approaches the
  profile's target channel utilization;
* ON/OFF bursting (``duty``) inserts long gaps that create the idle
  intervals rapid-on/off exploits;
* addresses come from the profile's Figure 4 CDF via inverse-transform
  sampling, with short sequential runs for spatial locality.

Each stream owns an independent deterministic RNG, so the *sequence* of
addresses and read/write choices is identical across policies -- only
the timing moves.  That makes completed-accesses-per-second directly
comparable between a policy run and its full-power baseline.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.network.network import MemoryNetwork
from repro.network.packets import LINE_BYTES, Packet
from repro.workloads.profiles import WorkloadProfile

__all__ = ["ClosedLoopWorkload", "estimate_full_power_latency_ns"]

#: Channel bandwidth per direction: 16 lanes x 12.5 Gbps = 25 bytes/ns.
_CHANNEL_BYTES_PER_NS: float = 25.0
#: Mean OFF-phase gap inserted between bursts, nanoseconds.
_BURST_SCALE_NS: float = 8000.0

_GB = 1024**3


def estimate_full_power_latency_ns(
    network: MemoryNetwork, profile: WorkloadProfile
) -> float:
    """Rough full-power round-trip latency for think-time calibration.

    30 ns DRAM plus per-hop request (SERDES + router + 1 flit) and
    response (SERDES + router + 5 flits) costs, weighted by how much of
    the profile's traffic each module receives, plus a mild queueing
    allowance that grows with the target channel utilization.
    """
    topo = network.topology
    mapping = network.mapping
    n = topo.num_modules
    if mapping.interleaved:
        probs = [1.0 / n] * n
    else:
        gran_gb = mapping.granularity_bytes / _GB
        probs = []
        for i in range(n):
            lo = profile.access_fraction_below(i * gran_gb)
            hi = profile.access_fraction_below((i + 1) * gran_gb)
            probs.append(max(0.0, hi - lo))
        total = sum(probs)
        probs = [p / total for p in probs] if total > 0 else [1.0 / n] * n
    exp_depth = sum(p * topo.depth(i) for i, p in enumerate(probs))
    per_hop_req = 3.2 + 2.56 + 0.64
    per_hop_resp = 3.2 + 2.56 + 5 * 0.64
    base = 30.0 + exp_depth * (per_hop_req + per_hop_resp)
    return base * (1.0 + profile.channel_util)


class ClosedLoopWorkload:
    """Drives a :class:`MemoryNetwork` with one profile's traffic."""

    def __init__(
        self,
        network: MemoryNetwork,
        profile: WorkloadProfile,
        stop_ns: float,
        seed: int = 1,
    ) -> None:
        self.network = network
        self.profile = profile
        self.stop_ns = stop_ns
        self.seed = seed
        self.sim = network.sim

        rf = profile.read_fraction
        bytes_per_access = rf * (16 + 80) + (1 - rf) * 80
        #: Target aggregate access rate (accesses per ns) hitting the
        #: profile's channel utilization at full power.
        self.target_rate = (
            profile.channel_util * 2 * _CHANNEL_BYTES_PER_NS / bytes_per_access
        )
        latency = estimate_full_power_latency_ns(network, profile)
        #: Mean gap between one stream's batches so that
        #: mlp / (gap + latency) * streams = target_rate.
        gap_target = max(
            0.0, profile.mlp * profile.streams / self.target_rate - latency
        )
        self.think_on_ns = profile.duty * gap_target
        self.off_mean_ns = (
            _BURST_SCALE_NS * (1 - profile.duty) / profile.duty
            if profile.duty < 1.0
            else 0.0
        )
        #: Probability a batch is followed by an OFF gap, sized so OFF
        #: time averages (1 - duty) of the total gap budget.
        if self.off_mean_ns > 0:
            self.off_prob = min(
                1.0, (1 - profile.duty) * gap_target / self.off_mean_ns
            )
        else:
            self.off_prob = 0.0

        footprint_lines = int(profile.footprint_gb * _GB) // LINE_BYTES
        self._footprint_bytes = footprint_lines * LINE_BYTES

        s = profile.streams
        self._rng: List[random.Random] = [
            random.Random(seed * 1_000_003 + i) for i in range(s)
        ]
        self._outstanding = [0] * s
        self._run_left = [0] * s
        self._cur_addr = [0] * s
        self.issued = 0

        network.on_read_complete = self._on_read_complete

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Stagger the streams' first batches across one gap window."""
        window = max(1.0, self.think_on_ns + 100.0)
        for s in range(self.profile.streams):
            delay = self._rng[s].uniform(0.0, window)
            self.sim.schedule(delay, self._make_batch(s))

    def _make_batch(self, s: int):
        return lambda: self._issue_batch(s)

    # ------------------------------------------------------------------
    def _next_address(self, s: int) -> int:
        rng = self._rng[s]
        if self._run_left[s] <= 0:
            gb = self.profile.sample_address_gb(rng.random())
            addr = int(gb * _GB) // LINE_BYTES * LINE_BYTES
            addr = min(addr, self._footprint_bytes - LINE_BYTES)
            self._cur_addr[s] = addr
            p = 1.0 / max(1.0, self.profile.run_length)
            if p >= 1.0:
                self._run_left[s] = 1
            else:
                u = max(rng.random(), 1e-12)
                self._run_left[s] = max(1, int(math.ceil(math.log(u) / math.log(1 - p))))
        else:
            addr = self._cur_addr[s] + LINE_BYTES
            if addr >= self._footprint_bytes:
                addr = 0
            self._cur_addr[s] = addr
        self._run_left[s] -= 1
        return self._cur_addr[s]

    def _issue_batch(self, s: int) -> None:
        now = self.sim.now
        if now >= self.stop_ns:
            return
        rng_random = self._rng[s].random
        read_fraction = self.profile.read_fraction
        next_address = self._next_address
        network = self.network
        reads = 0
        for _ in range(self.profile.mlp):
            address = next_address(s)
            if rng_random() < read_fraction:
                reads += 1
                network.inject_read(address, now, stream=s)
            else:
                network.inject_write(address, now, stream=s)
        self.issued += self.profile.mlp
        if reads:
            self._outstanding[s] = reads
        else:
            # All-write batch: nothing to wait on, think and go again.
            self._schedule_next_batch(s)

    def _schedule_next_batch(self, s: int) -> None:
        rng = self._rng[s]
        gap = (
            rng.expovariate(1.0 / self.think_on_ns)
            if self.think_on_ns > 0
            else 0.0
        )
        if self.off_prob > 0 and rng.random() < self.off_prob:
            gap += rng.expovariate(1.0 / self.off_mean_ns)
        self.sim.schedule(gap, self._make_batch(s))

    def _on_read_complete(self, pkt: Packet, now: float) -> None:
        s = pkt.stream
        self._outstanding[s] -= 1
        if self._outstanding[s] == 0 and now < self.stop_ns:
            self._schedule_next_batch(s)

    # ------------------------------------------------------------------
    @property
    def completed_accesses(self) -> int:
        """Reads and writes finished so far (the throughput numerator)."""
        return self.network.completed_reads + self.network.completed_writes

    def throughput_per_s(self, window_ns: float) -> float:
        """Completed memory accesses per second over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        return self.completed_accesses / (window_ns * 1e-9)
