"""The fourteen evaluated workloads as synthetic profiles.

The paper drives its study with seven 16-threaded NAS class D benchmarks
and seven mixed cloud workloads (Table III) under GEM5 full-system
simulation.  We cannot rerun GEM5, so each workload is captured as a
*profile* pinning the three observables the power study actually
consumes (see DESIGN.md):

* **footprint_gb** -- sets the network size (avg ceil(17/4) = 5 HMCs in
  the small study, matching the paper's 17 GB average footprint);
* **channel_util** -- target utilization of the processor channel at
  full power (Figure 9: mixB peaks near 75 %, sp.D sits lowest, and the
  average lands at ~43 %);
* **cdf** -- a piecewise-linear cumulative access distribution over the
  address space (Figure 4), whose flat segments are the cold ranges that
  let far modules power down.

The numbers are stylized digitizations of Figures 4 and 9, not ground
truth; EXPERIMENTS.md records the consequences.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.registry import Registry

__all__ = [
    "WorkloadProfile",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "HPC_WORKLOADS",
    "MIX_WORKLOADS",
    "MIX_COMPOSITION",
    "get_profile",
]

#: Table III: application composition of the mixed cloud workloads.
MIX_COMPOSITION: Dict[str, str] = {
    "mixA": "4 bwaves, 4 cactusADM, 4 wrf, 4T ocean_cp",
    "mixB": "4 mcf, 4 GemsFDTD, 4T barnes, 4T radiosity",
    "mixC": "4 omnetpp, 4 mcf, 4 wrf, 4T ocean_cp",
    "mixD": "4 sjeng, 4 cactusADM, 4T radiosity, 4T fft",
    "mixE": "4 cactusADM, 4 sjeng, 4 wrf, 4T fft",
    "mixF": "4 cactusADM, 4 bwaves, 4 sjeng, 4T fft",
    "mixG": "4 mcf, 4 omnetpp, 4 astar, 4T fft",
}


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic stand-in for one of the paper's fourteen workloads."""

    name: str
    footprint_gb: float
    channel_util: float
    read_fraction: float
    #: Piecewise-linear CDF of accesses over address space:
    #: (address in GB, cumulative access fraction), ascending, ending at
    #: (footprint_gb, 1.0).
    cdf: Tuple[Tuple[float, float], ...]
    #: Fraction of time each stream is in its ON (bursting) phase.
    duty: float = 0.7
    #: Mean sequential run length in cache lines.
    run_length: float = 4.0
    #: Parallel request streams (one per core, Table II's 16 cores).
    streams: int = 16
    #: Overlapping accesses per stream batch (MSHR-style parallelism).
    mlp: int = 4
    description: str = ""

    def __post_init__(self) -> None:
        if not 0 < self.channel_util < 1:
            raise ValueError(f"{self.name}: channel_util must be in (0,1)")
        if not 0 < self.read_fraction <= 1:
            raise ValueError(f"{self.name}: read_fraction must be in (0,1]")
        pts = self.cdf
        if pts[0] != (0.0, 0.0):
            raise ValueError(f"{self.name}: CDF must start at (0, 0)")
        if abs(pts[-1][0] - self.footprint_gb) > 1e-9 or pts[-1][1] != 1.0:
            raise ValueError(f"{self.name}: CDF must end at (footprint, 1.0)")
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            if x1 <= x0 or y1 < y0:
                raise ValueError(f"{self.name}: CDF must be non-decreasing")

    # ------------------------------------------------------------------
    def sample_address_gb(self, u: float) -> float:
        """Inverse-CDF sample: uniform ``u`` in [0,1) to an address (GB)."""
        ys = [p[1] for p in self.cdf]
        i = bisect.bisect_right(ys, u)
        if i >= len(self.cdf):
            return self.cdf[-1][0]
        x0, y0 = self.cdf[i - 1]
        x1, y1 = self.cdf[i]
        if y1 == y0:
            return x0
        return x0 + (x1 - x0) * (u - y0) / (y1 - y0)

    def access_fraction_below(self, gb: float) -> float:
        """CDF evaluated at ``gb`` (Figure 4's y-axis)."""
        pts = self.cdf
        if gb <= 0:
            return 0.0
        if gb >= pts[-1][0]:
            return 1.0
        xs = [p[0] for p in pts]
        i = bisect.bisect_right(xs, gb)
        x0, y0 = pts[i - 1]
        x1, y1 = pts[i]
        return y0 + (y1 - y0) * (gb - x0) / (x1 - x0)


def _p(
    name: str,
    footprint: float,
    util: float,
    rf: float,
    cdf: Sequence[Tuple[float, float]],
    duty: float = 0.7,
    description: str = "",
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        footprint_gb=footprint,
        channel_util=util,
        read_fraction=rf,
        cdf=tuple((float(x), float(y)) for x, y in cdf),
        duty=duty,
        description=description,
    )


#: All fourteen profiles, stylized from Figures 4 and 9, registered in
#: the paper's evaluation order.  ``KeyError`` preserves the historical
#: dict-lookup exception contract of :func:`get_profile`.
WORKLOADS: Registry = Registry("workload", error_cls=KeyError)

for _profile in (
        _p("ua.D", 12, 0.50, 0.70,
           [(0, 0), (3, 0.35), (9, 0.90), (12, 1.0)],
           description="NAS unstructured adaptive mesh, 16 threads"),
        _p("lu.D", 9, 0.45, 0.75,
           [(0, 0), (2, 0.50), (6, 0.92), (9, 1.0)],
           description="NAS LU factorization, 16 threads"),
        _p("bt.D", 11, 0.40, 0.70,
           [(0, 0), (4, 0.55), (8, 0.90), (11, 1.0)],
           description="NAS block tridiagonal solver, 16 threads"),
        _p("sp.D", 13, 0.08, 0.70,
           [(0, 0), (5, 0.60), (10, 0.95), (13, 1.0)],
           duty=0.5,
           description="NAS scalar pentadiagonal; lowest channel util"),
        _p("cg.D", 17, 0.35, 0.85,
           [(0, 0), (2, 0.70), (4, 0.85), (10, 0.95), (17, 1.0)],
           description="NAS conjugate gradient; hot head of address space"),
        _p("mg.D", 27, 0.55, 0.75,
           [(0, 0), (8, 0.50), (20, 0.85), (27, 1.0)],
           description="NAS multigrid; large footprint"),
        _p("is.D", 34, 0.30, 0.60,
           [(0, 0), (4, 0.45), (6, 0.50), (24, 0.60), (34, 1.0)],
           description="NAS integer sort; largest footprint, cold middle"),
        _p("mixA", 16, 0.55, 0.70,
           [(0, 0), (2, 0.30), (4, 0.35), (7, 0.70), (9, 0.75), (12, 0.90),
            (16, 1.0)],
           description=MIX_COMPOSITION["mixA"]),
        _p("mixB", 14, 0.75, 0.65,
           [(0, 0), (3, 0.50), (6, 0.80), (10, 0.92), (14, 1.0)],
           duty=0.85,
           description=MIX_COMPOSITION["mixB"] + "; highest channel util"),
        _p("mixC", 15, 0.60, 0.65,
           [(0, 0), (2, 0.35), (5, 0.55), (8, 0.80), (15, 1.0)],
           description=MIX_COMPOSITION["mixC"]),
        _p("mixD", 12, 0.30, 0.70,
           [(0, 0), (1, 0.40), (5, 0.55), (8, 0.90), (12, 1.0)],
           description=MIX_COMPOSITION["mixD"]),
        _p("mixE", 13, 0.35, 0.70,
           [(0, 0), (2, 0.45), (6, 0.60), (10, 0.90), (13, 1.0)],
           description=MIX_COMPOSITION["mixE"]),
        _p("mixF", 14, 0.40, 0.70,
           [(0, 0), (3, 0.40), (7, 0.65), (11, 0.90), (14, 1.0)],
           description=MIX_COMPOSITION["mixF"]),
        _p("mixG", 15, 0.50, 0.60,
           [(0, 0), (2, 0.40), (4, 0.60), (9, 0.80), (15, 1.0)],
           description=MIX_COMPOSITION["mixG"]),
):
    WORKLOADS.add(_profile.name, _profile)

#: Evaluation order used throughout the paper's figures (identical to
#: the registration order above).
WORKLOAD_NAMES: Tuple[str, ...] = WORKLOADS.names()

HPC_WORKLOADS: Tuple[str, ...] = WORKLOAD_NAMES[:7]
MIX_WORKLOADS: Tuple[str, ...] = WORKLOAD_NAMES[7:]


def get_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by name (KeyError when unknown)."""
    return WORKLOADS.get(name)
