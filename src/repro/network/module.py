"""Per-module runtime state: vaults, energy ledger, and link references."""

from __future__ import annotations

from typing import List, Optional

from repro.dram.timing import DramTiming
from repro.dram.vault import VaultSet
from repro.network.links import LinkController
from repro.network.topology import Radix
from repro.power.accounting import EnergyLedger

__all__ = ["ModuleRuntime"]


class ModuleRuntime:
    """One networked HMC: DRAM vaults, router bookkeeping, and links.

    ``req_in`` is the request link arriving from the parent (its
    controller sits at the parent/processor side); ``resp_out`` is the
    response link back toward the parent.  Together they form the
    module's *connectivity links* in the paper's terminology.
    """

    __slots__ = (
        "module_id",
        "radix",
        "vaults",
        "ledger",
        "req_in",
        "resp_out",
        "children",
        "ep_dram_reads",
        "dram_reads",
        "outstanding_subtree_reads",
        "flits_routed",
        "e_flit_j",
        "e_access_j",
    )

    def __init__(self, module_id: int, radix: Radix, timing: DramTiming) -> None:
        self.module_id = module_id
        self.radix = radix
        self.vaults = VaultSet(timing)
        self.ledger = EnergyLedger()
        self.req_in: Optional[LinkController] = None
        self.resp_out: Optional[LinkController] = None
        self.children: List[int] = []
        #: DRAM reads serviced this epoch (the AEL/FEL DRAM term).
        self.ep_dram_reads: int = 0
        self.dram_reads: int = 0
        #: Reads in flight whose destination lies in this module's
        #: subtree; the network-aware response-link sleep gate.
        self.outstanding_subtree_reads: int = 0
        self.flits_routed: int = 0
        #: Per-access energy constants for this module's radix, filled
        #: in by the owning network (kept here to spare the router and
        #: DRAM hot paths a radix-keyed dict lookup per packet).
        self.e_flit_j: float = 0.0
        self.e_access_j: float = 0.0

    def connectivity_links(self) -> List[LinkController]:
        """The module's request/response links toward the processor."""
        return [l for l in (self.req_in, self.resp_out) if l is not None]

    def reset_epoch(self) -> None:
        """Zero the per-epoch DRAM read counter."""
        self.ep_dram_reads = 0
